"""Mobility substrate: campus map, waypoint mobility and trajectories.

In the paper users are "initially randomly generated in the University of
Waterloo campus and then move along different trajectories"; their movement
changes the distance to the serving base station and therefore the channel
condition the UDTs record.  This subpackage provides:

* :mod:`repro.mobility.campus` -- a networkx waypoint graph laid out like a
  campus (buildings connected by paths).
* :mod:`repro.mobility.waypoint` -- free-space random-waypoint mobility.
* :mod:`repro.mobility.trajectory` -- graph-constrained trajectories
  (shortest-path walks between buildings) and position traces.
"""

from repro.mobility.campus import CampusConfig, CampusMap
from repro.mobility.waypoint import RandomWaypointMobility, WaypointConfig
from repro.mobility.trajectory import (
    GraphTrajectoryMobility,
    MobilityModel,
    PositionTrace,
    StaticMobility,
)

__all__ = [
    "CampusConfig",
    "CampusMap",
    "GraphTrajectoryMobility",
    "MobilityModel",
    "PositionTrace",
    "RandomWaypointMobility",
    "StaticMobility",
    "WaypointConfig",
]
