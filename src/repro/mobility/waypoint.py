"""Free-space random-waypoint mobility.

The classic random-waypoint model: pick a uniformly random destination in
the simulation rectangle, move towards it in a straight line at a random
speed, pause, repeat.  It serves as the unconstrained baseline to the
campus-graph trajectories and is handy for tests because it needs no graph.
Legs are shared with the graph walker via
:class:`~repro.mobility.trajectory.LegMobility`, so batched position
queries are vectorized here too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.mobility.trajectory import LegMobility, _Leg


@dataclass
class WaypointConfig:
    """Configuration of :class:`RandomWaypointMobility`."""

    width_m: float = 1000.0
    height_m: float = 800.0
    min_speed_mps: float = 0.8
    max_speed_mps: float = 2.0
    pause_time_s: float = 10.0

    def __post_init__(self) -> None:
        if self.width_m <= 0 or self.height_m <= 0:
            raise ValueError("area dimensions must be positive")
        if self.min_speed_mps <= 0 or self.max_speed_mps < self.min_speed_mps:
            raise ValueError("invalid speed range")
        if self.pause_time_s < 0:
            raise ValueError("pause_time_s must be non-negative")


class RandomWaypointMobility(LegMobility):
    """Random-waypoint movement inside a rectangle."""

    def __init__(
        self,
        config: Optional[WaypointConfig] = None,
        seed: int = 0,
        start_position: Optional[np.ndarray] = None,
    ) -> None:
        super().__init__()
        self.config = config if config is not None else WaypointConfig()
        # Imported lazily: repro.sim pulls in the mobility package at load time.
        from repro.sim.rng import legacy_stream

        self._rng = legacy_stream(seed)
        if start_position is None:
            start_position = np.array(
                [
                    self._rng.uniform(0.0, self.config.width_m),
                    self._rng.uniform(0.0, self.config.height_m),
                ]
            )
        self._last_position = np.asarray(start_position, dtype=np.float64)
        if self._last_position.shape != (2,):
            raise ValueError("start_position must be a 2-D coordinate")

    def _extend_until(self, time_s: float) -> None:
        config = self.config
        while self._generated_until_s <= time_s:
            destination = np.array(
                [
                    self._rng.uniform(0.0, config.width_m),
                    self._rng.uniform(0.0, config.height_m),
                ]
            )
            speed = float(self._rng.uniform(config.min_speed_mps, config.max_speed_mps))
            length = float(np.linalg.norm(destination - self._last_position))
            duration = length / speed if speed > 0 else 0.0
            self._push_leg(
                _Leg(
                    start_time_s=self._generated_until_s,
                    end_time_s=self._generated_until_s + duration,
                    start=self._last_position.copy(),
                    end=destination,
                )
            )
            if config.pause_time_s > 0:
                self._push_leg(
                    _Leg(
                        start_time_s=self._generated_until_s,
                        end_time_s=self._generated_until_s + config.pause_time_s,
                        start=destination.copy(),
                        end=destination.copy(),
                    )
                )
