"""Campus waypoint graph.

The campus is modelled as a planar graph: nodes are buildings / points of
interest with 2-D coordinates, edges are walkable paths weighted by their
Euclidean length.  Trajectory mobility walks shortest paths on this graph,
producing the spatially-correlated movement (and hence channel dynamics)
that free-space random waypoint lacks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np


@dataclass
class CampusConfig:
    """Configuration of the synthetic campus generator."""

    width_m: float = 1000.0
    height_m: float = 800.0
    num_buildings: int = 20
    extra_edge_probability: float = 0.15
    seed: int = 0

    def __post_init__(self) -> None:
        if self.width_m <= 0 or self.height_m <= 0:
            raise ValueError("campus dimensions must be positive")
        if self.num_buildings < 2:
            raise ValueError("need at least two buildings")
        if not 0.0 <= self.extra_edge_probability <= 1.0:
            raise ValueError("extra_edge_probability must be in [0, 1]")


class CampusMap:
    """A connected waypoint graph with 2-D node positions."""

    def __init__(self, graph: nx.Graph) -> None:
        if graph.number_of_nodes() < 2:
            raise ValueError("campus graph needs at least two nodes")
        if not nx.is_connected(graph):
            raise ValueError("campus graph must be connected")
        for node, data in graph.nodes(data=True):
            if "pos" not in data:
                raise ValueError(f"node {node!r} is missing a 'pos' attribute")
        self.graph = graph

    # ------------------------------------------------------------ accessors
    @property
    def nodes(self) -> List:
        return list(self.graph.nodes)

    def position(self, node) -> np.ndarray:
        """2-D coordinates of ``node`` in metres."""
        return np.asarray(self.graph.nodes[node]["pos"], dtype=np.float64)

    def positions(self) -> Dict:
        return {node: self.position(node) for node in self.graph.nodes}

    def bounding_box(self) -> Tuple[float, float, float, float]:
        """``(min_x, min_y, max_x, max_y)`` over all node positions."""
        coords = np.array([self.position(node) for node in self.graph.nodes])
        mins = coords.min(axis=0)
        maxs = coords.max(axis=0)
        return float(mins[0]), float(mins[1]), float(maxs[0]), float(maxs[1])

    def random_node(self, rng: np.random.Generator):
        return self.nodes[int(rng.integers(len(self.nodes)))]

    def shortest_path(self, source, target) -> List:
        """Shortest path (by edge length) between two nodes."""
        return nx.shortest_path(self.graph, source, target, weight="length")

    def path_positions(self, path: Sequence) -> np.ndarray:
        """Stack of node positions along ``path`` (shape ``(len(path), 2)``)."""
        return np.array([self.position(node) for node in path])

    def path_length(self, path: Sequence) -> float:
        positions = self.path_positions(path)
        if len(positions) < 2:
            return 0.0
        return float(np.linalg.norm(np.diff(positions, axis=0), axis=1).sum())

    # ------------------------------------------------------------ generation
    @classmethod
    def generate(cls, config: Optional[CampusConfig] = None) -> "CampusMap":
        """Generate a random connected campus graph.

        Buildings are scattered uniformly over the campus rectangle; the
        graph starts as a Euclidean minimum spanning tree (so it is always
        connected) and a few extra short edges are added to create loops,
        like real campus footpaths.
        """
        config = config if config is not None else CampusConfig()
        # Imported lazily: repro.sim.shard imports this module at load time.
        from repro.sim.rng import legacy_stream

        rng = legacy_stream(config.seed)
        positions = np.column_stack(
            [
                rng.uniform(0.0, config.width_m, size=config.num_buildings),
                rng.uniform(0.0, config.height_m, size=config.num_buildings),
            ]
        )
        complete = nx.Graph()
        for i in range(config.num_buildings):
            complete.add_node(i, pos=positions[i])
        for i in range(config.num_buildings):
            for j in range(i + 1, config.num_buildings):
                length = float(np.linalg.norm(positions[i] - positions[j]))
                complete.add_edge(i, j, length=length)
        mst = nx.minimum_spanning_tree(complete, weight="length")
        graph = nx.Graph()
        graph.add_nodes_from(complete.nodes(data=True))
        graph.add_edges_from(mst.edges(data=True))
        # Sprinkle extra edges, preferring short ones, to create alternative routes.
        non_tree_edges = [
            (u, v, data)
            for u, v, data in complete.edges(data=True)
            if not graph.has_edge(u, v)
        ]
        non_tree_edges.sort(key=lambda edge: edge[2]["length"])
        for u, v, data in non_tree_edges:
            if rng.random() < config.extra_edge_probability:
                graph.add_edge(u, v, **data)
        return cls(graph)
