"""Mobility models and position traces.

All mobility models share a small interface: :meth:`MobilityModel.position`
returns a user's 2-D coordinates at a given simulation time.  Two concrete
models are provided -- a static user and a graph-constrained trajectory
walker that repeatedly picks a destination building on the campus graph and
walks the shortest path to it at a (per-leg) random pedestrian speed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.mobility.campus import CampusMap


class MobilityModel:
    """Interface: deterministic position as a function of time."""

    def position(self, time_s: float) -> np.ndarray:
        """2-D position (metres) at ``time_s``."""
        raise NotImplementedError

    def trace(self, times_s: Sequence[float]) -> "PositionTrace":
        """Sample the model at several times and return a trace."""
        times = np.asarray(times_s, dtype=np.float64)
        positions = np.array([self.position(float(t)) for t in times])
        return PositionTrace(times=times, positions=positions)


@dataclass
class PositionTrace:
    """A sampled trajectory: ``positions[i]`` is the location at ``times[i]``."""

    times: np.ndarray
    positions: np.ndarray

    def __post_init__(self) -> None:
        self.times = np.asarray(self.times, dtype=np.float64)
        self.positions = np.atleast_2d(np.asarray(self.positions, dtype=np.float64))
        if self.positions.shape[0] != self.times.shape[0]:
            raise ValueError("times and positions must have the same length")
        if self.positions.shape[1] != 2:
            raise ValueError("positions must be 2-D coordinates")

    def __len__(self) -> int:
        return len(self.times)

    def distance_travelled(self) -> float:
        if len(self) < 2:
            return 0.0
        return float(np.linalg.norm(np.diff(self.positions, axis=0), axis=1).sum())

    def distances_to(self, point: Sequence[float]) -> np.ndarray:
        """Euclidean distance from every trace sample to ``point``."""
        point = np.asarray(point, dtype=np.float64)
        return np.linalg.norm(self.positions - point[None, :], axis=1)


class StaticMobility(MobilityModel):
    """A user that never moves (useful baseline and for unit tests)."""

    def __init__(self, position: Sequence[float]) -> None:
        self._position = np.asarray(position, dtype=np.float64)
        if self._position.shape != (2,):
            raise ValueError("position must be a 2-D coordinate")

    def position(self, time_s: float) -> np.ndarray:
        return self._position.copy()


@dataclass
class _Leg:
    """One straight-line leg of a piecewise-linear trajectory."""

    start_time_s: float
    end_time_s: float
    start: np.ndarray
    end: np.ndarray

    def position(self, time_s: float) -> np.ndarray:
        if self.end_time_s <= self.start_time_s:
            return self.end.copy()
        fraction = (time_s - self.start_time_s) / (self.end_time_s - self.start_time_s)
        fraction = min(max(fraction, 0.0), 1.0)
        return self.start + fraction * (self.end - self.start)


class GraphTrajectoryMobility(MobilityModel):
    """Shortest-path walks between random buildings on a campus graph.

    The user starts at a random node, repeatedly picks a random destination
    node, walks the shortest path to it at a per-trip speed sampled from
    ``[min_speed_mps, max_speed_mps]``, pauses, and repeats.  Legs are
    pre-generated lazily up to the queried time, so positions are
    deterministic for a given seed regardless of query order.
    """

    def __init__(
        self,
        campus: CampusMap,
        seed: int = 0,
        min_speed_mps: float = 0.8,
        max_speed_mps: float = 2.0,
        pause_time_s: float = 30.0,
        start_node=None,
    ) -> None:
        if min_speed_mps <= 0 or max_speed_mps < min_speed_mps:
            raise ValueError("invalid speed range")
        if pause_time_s < 0:
            raise ValueError("pause_time_s must be non-negative")
        self.campus = campus
        self.min_speed_mps = min_speed_mps
        self.max_speed_mps = max_speed_mps
        self.pause_time_s = pause_time_s
        self._rng = np.random.default_rng(seed)
        self._current_node = start_node if start_node is not None else campus.random_node(self._rng)
        self._legs: List[_Leg] = []
        self._generated_until_s = 0.0
        self._last_position = campus.position(self._current_node)

    # ------------------------------------------------------------ extension
    def _extend_until(self, time_s: float) -> None:
        while self._generated_until_s <= time_s:
            destination = self.campus.random_node(self._rng)
            if destination == self._current_node:
                # A pause in place still advances time.
                self._append_pause()
                continue
            path = self.campus.shortest_path(self._current_node, destination)
            speed = float(self._rng.uniform(self.min_speed_mps, self.max_speed_mps))
            positions = self.campus.path_positions(path)
            for start, end in zip(positions[:-1], positions[1:]):
                length = float(np.linalg.norm(end - start))
                duration = length / speed if speed > 0 else 0.0
                leg = _Leg(
                    start_time_s=self._generated_until_s,
                    end_time_s=self._generated_until_s + duration,
                    start=np.asarray(start, dtype=np.float64),
                    end=np.asarray(end, dtype=np.float64),
                )
                self._legs.append(leg)
                self._generated_until_s = leg.end_time_s
                self._last_position = leg.end
            self._current_node = destination
            self._append_pause()

    def _append_pause(self) -> None:
        if self.pause_time_s <= 0:
            # Avoid an infinite loop when the destination equals the source.
            self._generated_until_s += 1.0
            return
        leg = _Leg(
            start_time_s=self._generated_until_s,
            end_time_s=self._generated_until_s + self.pause_time_s,
            start=self._last_position.copy(),
            end=self._last_position.copy(),
        )
        self._legs.append(leg)
        self._generated_until_s = leg.end_time_s

    # -------------------------------------------------------------- queries
    def position(self, time_s: float) -> np.ndarray:
        if time_s < 0:
            raise ValueError("time_s must be non-negative")
        self._extend_until(time_s)
        for leg in self._legs:
            if leg.start_time_s <= time_s <= leg.end_time_s:
                return leg.position(time_s)
        # time_s falls just beyond the last generated leg boundary.
        return self._last_position.copy()
