"""Mobility models and position traces.

All mobility models share a small interface: :meth:`MobilityModel.position`
returns a user's 2-D coordinates at a given simulation time and
:meth:`MobilityModel.positions` evaluates a whole batch of query times at
once (the simulation hot path).  Two concrete models are provided -- a
static user and a graph-constrained trajectory walker that repeatedly picks
a destination building on the campus graph and walks the shortest path to it
at a (per-leg) random pedestrian speed.

Leg-based models (the graph walker here and the random-waypoint model in
:mod:`repro.mobility.waypoint`) share :class:`LegMobility`, which keeps the
piecewise-linear legs mirrored into contiguous NumPy arrays so a batch of
``n`` query times costs one ``np.searchsorted`` over the leg boundaries plus
one vectorized interpolation -- O(n log legs) instead of the O(n × legs)
per-query linear scan of a naive implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.mobility.campus import CampusMap


class MobilityModel:
    """Interface: deterministic position as a function of time."""

    def position(self, time_s: float) -> np.ndarray:
        """2-D position (metres) at ``time_s``."""
        raise NotImplementedError

    def positions(self, times_s: Sequence[float]) -> np.ndarray:
        """2-D positions at several times, shape ``(len(times_s), 2)``.

        The default implementation loops over :meth:`position`; leg-based
        models override it with a vectorized evaluation.
        """
        times = np.asarray(times_s, dtype=np.float64)
        return np.array([self.position(float(t)) for t in times]).reshape(-1, 2)

    def trace(self, times_s: Sequence[float]) -> "PositionTrace":
        """Sample the model at several times and return a trace."""
        times = np.asarray(times_s, dtype=np.float64)
        return PositionTrace(times=times, positions=self.positions(times))


@dataclass
class PositionTrace:
    """A sampled trajectory: ``positions[i]`` is the location at ``times[i]``."""

    times: np.ndarray
    positions: np.ndarray

    def __post_init__(self) -> None:
        self.times = np.asarray(self.times, dtype=np.float64)
        self.positions = np.atleast_2d(np.asarray(self.positions, dtype=np.float64))
        if self.positions.shape[0] != self.times.shape[0]:
            raise ValueError("times and positions must have the same length")
        if self.positions.shape[1] != 2:
            raise ValueError("positions must be 2-D coordinates")

    def __len__(self) -> int:
        return len(self.times)

    def distance_travelled(self) -> float:
        if len(self) < 2:
            return 0.0
        return float(np.linalg.norm(np.diff(self.positions, axis=0), axis=1).sum())

    def distances_to(self, point: Sequence[float]) -> np.ndarray:
        """Euclidean distance from every trace sample to ``point``."""
        point = np.asarray(point, dtype=np.float64)
        return np.linalg.norm(self.positions - point[None, :], axis=1)


class StaticMobility(MobilityModel):
    """A user that never moves (useful baseline and for unit tests)."""

    def __init__(self, position: Sequence[float]) -> None:
        self._position = np.asarray(position, dtype=np.float64)
        if self._position.shape != (2,):
            raise ValueError("position must be a 2-D coordinate")

    def position(self, time_s: float) -> np.ndarray:
        return self._position.copy()

    def positions(self, times_s: Sequence[float]) -> np.ndarray:
        times = np.asarray(times_s, dtype=np.float64)
        return np.tile(self._position, (times.shape[0], 1))


@dataclass
class _Leg:
    """One straight-line leg of a piecewise-linear trajectory."""

    start_time_s: float
    end_time_s: float
    start: np.ndarray
    end: np.ndarray

    def position(self, time_s: float) -> np.ndarray:
        if self.end_time_s <= self.start_time_s:
            return self.end.copy()
        fraction = (time_s - self.start_time_s) / (self.end_time_s - self.start_time_s)
        fraction = min(max(fraction, 0.0), 1.0)
        return self.start + fraction * (self.end - self.start)


class LegMobility(MobilityModel):
    """Base class for models made of consecutive piecewise-linear legs.

    Subclasses lazily generate legs via :meth:`_extend_until` (appending with
    :meth:`_push_leg`) and inherit scalar and vectorized position queries.
    The leg list is mirrored into contiguous arrays (start times, start and
    end points, inverse durations) that are rebuilt lazily after extension,
    so batched queries are a binary search plus arithmetic on the arrays.
    """

    def __init__(self) -> None:
        self._legs: List[_Leg] = []
        self._generated_until_s = 0.0
        self._last_position = np.zeros(2)
        # Mirrored leg arrays, rebuilt lazily when legs were appended.
        self._leg_arrays_size = 0
        self._leg_start_times = np.empty(0)
        self._leg_starts = np.empty((0, 2))
        self._leg_deltas = np.empty((0, 2))
        self._leg_durations = np.empty(0)

    # ------------------------------------------------------------ extension
    def _extend_until(self, time_s: float) -> None:
        raise NotImplementedError

    def _push_leg(self, leg: _Leg) -> None:
        self._legs.append(leg)
        self._generated_until_s = leg.end_time_s
        self._last_position = leg.end

    def _refresh_leg_arrays(self) -> None:
        count = len(self._legs)
        if count == self._leg_arrays_size:
            return
        self._leg_start_times = np.array([leg.start_time_s for leg in self._legs])
        end_times = np.array([leg.end_time_s for leg in self._legs])
        self._leg_starts = np.array([leg.start for leg in self._legs]).reshape(count, 2)
        ends = np.array([leg.end for leg in self._legs]).reshape(count, 2)
        self._leg_deltas = ends - self._leg_starts
        self._leg_durations = end_times - self._leg_start_times
        self._leg_arrays_size = count

    # -------------------------------------------------------------- queries
    def position(self, time_s: float) -> np.ndarray:
        return self.positions([time_s])[0]

    def positions(self, times_s: Sequence[float]) -> np.ndarray:
        times = np.asarray(times_s, dtype=np.float64).reshape(-1)
        if times.size and float(times.min()) < 0:
            raise ValueError("time_s must be non-negative")
        if times.size == 0:
            return np.zeros((0, 2))
        self._extend_until(float(times.max()))
        self._refresh_leg_arrays()
        if not self._legs:
            return np.tile(self._last_position, (times.shape[0], 1))
        indices = self._leg_start_times.searchsorted(times, side="right") - 1
        np.maximum(indices, 0, out=indices)
        durations = self._leg_durations[indices]
        # Same `(t - start) / duration` arithmetic as _Leg.position so scalar
        # and batched queries agree bitwise; degenerate (zero-duration) legs
        # snap to fraction 1, reproducing _Leg.position's "return end" rule.
        positive = durations > 0
        fractions = (times - self._leg_start_times[indices]) / np.where(
            positive, durations, 1.0
        )
        fractions = np.where(positive, fractions, 1.0)
        np.minimum(fractions, 1.0, out=fractions)
        np.maximum(fractions, 0.0, out=fractions)
        return self._leg_starts[indices] + fractions[:, None] * self._leg_deltas[indices]


class GraphTrajectoryMobility(LegMobility):
    """Shortest-path walks between random buildings on a campus graph.

    The user starts at a random node, repeatedly picks a random destination
    node, walks the shortest path to it at a per-trip speed sampled from
    ``[min_speed_mps, max_speed_mps]``, pauses, and repeats.  Legs are
    pre-generated lazily up to the queried time, so positions are
    deterministic for a given seed regardless of query order.

    ``seed`` is anything :func:`numpy.random.default_rng` accepts -- in
    particular a :class:`numpy.random.SeedSequence`, which is how the
    simulator derives collision-free per-user trajectory streams
    (``SeedSequence((seed, user_id))`` via :mod:`repro.sim.rng`) instead of
    ad-hoc integer arithmetic like ``seed * 1000 + user_id`` (which makes
    user 1000 under seed ``s`` replay user 0's walk under seed ``s + 1``).
    """

    def __init__(
        self,
        campus: CampusMap,
        seed: "int | np.random.SeedSequence | np.random.Generator" = 0,
        min_speed_mps: float = 0.8,
        max_speed_mps: float = 2.0,
        pause_time_s: float = 30.0,
        start_node=None,
    ) -> None:
        if min_speed_mps <= 0 or max_speed_mps < min_speed_mps:
            raise ValueError("invalid speed range")
        if pause_time_s < 0:
            raise ValueError("pause_time_s must be non-negative")
        super().__init__()
        self.campus = campus
        self.min_speed_mps = min_speed_mps
        self.max_speed_mps = max_speed_mps
        self.pause_time_s = pause_time_s
        # Imported lazily: repro.sim.shard imports this module at load time.
        from repro.sim.rng import legacy_stream

        self._rng = legacy_stream(seed)
        self._current_node = start_node if start_node is not None else campus.random_node(self._rng)
        self._last_position = campus.position(self._current_node)

    # ------------------------------------------------------------ extension
    def _extend_until(self, time_s: float) -> None:
        while self._generated_until_s <= time_s:
            destination = self.campus.random_node(self._rng)
            if destination == self._current_node:
                # A pause in place still advances time.
                self._append_pause()
                continue
            path = self.campus.shortest_path(self._current_node, destination)
            speed = float(self._rng.uniform(self.min_speed_mps, self.max_speed_mps))
            positions = self.campus.path_positions(path)
            for start, end in zip(positions[:-1], positions[1:]):
                length = float(np.linalg.norm(end - start))
                duration = length / speed if speed > 0 else 0.0
                self._push_leg(
                    _Leg(
                        start_time_s=self._generated_until_s,
                        end_time_s=self._generated_until_s + duration,
                        start=np.asarray(start, dtype=np.float64),
                        end=np.asarray(end, dtype=np.float64),
                    )
                )
            self._current_node = destination
            self._append_pause()

    def _append_pause(self) -> None:
        if self.pause_time_s <= 0:
            # Avoid an infinite loop when the destination equals the source.
            self._generated_until_s += 1.0
            return
        self._push_leg(
            _Leg(
                start_time_s=self._generated_until_s,
                end_time_s=self._generated_until_s + self.pause_time_s,
                start=self._last_position.copy(),
                end=self._last_position.copy(),
            )
        )
