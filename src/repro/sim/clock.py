"""Simulation clock.

A thin wrapper around "current simulation time" with interval bookkeeping:
the reservation interval is the paper's 5-minute resource-reservation
period, and most of the pipeline reasons in whole intervals.
"""

from __future__ import annotations


class SimulationClock:
    """Monotonic simulation time divided into fixed reservation intervals."""

    def __init__(self, interval_s: float = 300.0, start_s: float = 0.0) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if start_s < 0:
            raise ValueError("start_s must be non-negative")
        self.interval_s = interval_s
        self._now_s = float(start_s)

    @property
    def now_s(self) -> float:
        return self._now_s

    @property
    def current_interval(self) -> int:
        """Index of the interval containing the current time."""
        return int(self._now_s // self.interval_s)

    def interval_bounds(self, interval_index: int) -> tuple:
        """``(start_s, end_s)`` of a given interval index."""
        if interval_index < 0:
            raise ValueError("interval_index must be non-negative")
        start = interval_index * self.interval_s
        return start, start + self.interval_s

    def advance(self, duration_s: float) -> float:
        """Advance time by ``duration_s`` and return the new time."""
        if duration_s < 0:
            raise ValueError("cannot advance by a negative duration")
        self._now_s += duration_s
        return self._now_s

    def advance_to(self, time_s: float) -> float:
        """Jump forward to an absolute time (must not go backwards)."""
        if time_s < self._now_s:
            raise ValueError("cannot move the clock backwards")
        self._now_s = float(time_s)
        return self._now_s

    def advance_interval(self) -> int:
        """Advance to the start of the next interval and return its index."""
        next_index = self.current_interval + 1
        self._now_s = next_index * self.interval_s
        return next_index
