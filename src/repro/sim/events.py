"""Discrete-event queue.

A small priority-queue event scheduler.  The streaming simulator itself is
interval-driven, but the event queue is used for finer-grained mechanisms
(status-collection ticks, cache refresh, user arrivals/departures in the
churn example) and is exposed as part of the public simulation substrate.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple


@dataclass(order=True)
class Event:
    """A scheduled event; ordering is by time, then insertion order."""

    time_s: float
    sequence: int = field(compare=True)
    name: str = field(default="", compare=False)
    callback: Optional[Callable[[], Any]] = field(default=None, compare=False)
    payload: Any = field(default=None, compare=False)
    cancelled: bool = field(default=False, compare=False)

    def fire(self) -> Any:
        """Run the callback (no-op for cancelled or callback-less events)."""
        if self.cancelled or self.callback is None:
            return None
        return self.callback()


class EventQueue:
    """Priority queue of events ordered by time."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._counter = itertools.count()
        self._now_s = 0.0

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    @property
    def now_s(self) -> float:
        return self._now_s

    @property
    def is_empty(self) -> bool:
        return len(self) == 0

    def schedule(
        self,
        time_s: float,
        name: str = "",
        callback: Optional[Callable[[], Any]] = None,
        payload: Any = None,
    ) -> Event:
        """Schedule an event; times in the past raise."""
        if time_s < self._now_s:
            raise ValueError(f"cannot schedule event at {time_s} before current time {self._now_s}")
        event = Event(
            time_s=float(time_s),
            sequence=next(self._counter),
            name=name,
            callback=callback,
            payload=payload,
        )
        heapq.heappush(self._heap, event)
        return event

    def schedule_in(self, delay_s: float, **kwargs) -> Event:
        """Schedule relative to the current time."""
        if delay_s < 0:
            raise ValueError("delay_s must be non-negative")
        return self.schedule(self._now_s + delay_s, **kwargs)

    def cancel(self, event: Event) -> None:
        event.cancelled = True

    def peek(self) -> Optional[Event]:
        """Next pending event without removing it (skips cancelled events)."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0] if self._heap else None

    def pop(self) -> Optional[Event]:
        """Remove and return the next event, advancing the queue's clock."""
        event = self.peek()
        if event is None:
            return None
        heapq.heappop(self._heap)
        self._now_s = event.time_s
        return event

    def run_until(self, time_s: float) -> List[Tuple[Event, Any]]:
        """Fire every event scheduled up to and including ``time_s``.

        Returns the list of ``(event, callback_result)`` pairs in firing
        order; the queue's clock ends at ``time_s``.
        """
        if time_s < self._now_s:
            raise ValueError("cannot run backwards")
        fired: List[Tuple[Event, Any]] = []
        while True:
            event = self.peek()
            if event is None or event.time_s > time_s:
                break
            heapq.heappop(self._heap)
            self._now_s = event.time_s
            fired.append((event, event.fire()))
        self._now_s = time_s
        return fired
