"""Simulation configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.twin.collector import CollectionPolicy
from repro.video.categories import DEFAULT_CATEGORIES


@dataclass
class SimulationConfig:
    """End-to-end configuration of the multicast streaming simulation.

    The defaults follow the paper's setup where it is specified: a
    5-minute resource-reservation interval, users scattered over a
    campus-sized area and moving along trajectories, and preferences updated
    from engagement time.  Everything else (user count, catalog size, BS
    parameters) is sized so a full experiment runs in seconds on a laptop.
    """

    # Population and content.
    num_users: int = 30
    num_videos: int = 120
    categories: Sequence[str] = DEFAULT_CATEGORIES
    zipf_exponent: float = 1.0
    preference_concentration: float = 0.7
    favourite_category: Optional[str] = "News"
    favourite_user_fraction: float = 0.6
    favourite_boost: float = 3.0
    preference_learning_rate: float = 0.2

    # Time structure.
    num_intervals: int = 8
    interval_s: float = 300.0

    # Area, mobility and radio.
    area_width_m: float = 1000.0
    area_height_m: float = 800.0
    num_buildings: int = 18
    num_base_stations: int = 2
    tx_power_dbm: float = 43.0
    rb_bandwidth_hz: float = 180e3
    num_resource_blocks: int = 100
    stream_bandwidth_hz: float = 1.8e6  # bandwidth assumed per multicast stream
    implementation_loss: float = 0.9
    channel_sample_period_s: float = 5.0
    #: How shadowing/fading randomness is drawn, which also selects the
    #: per-interval engine.  ``"compat"`` draws per sample in the exact
    #: order of the pre-vectorization scalar path from one shared
    #: generator, so any seed reproduces the scalar-era streams
    #: bit-for-bit -- the mode every identical-seed regression (goldens,
    #: engine-equivalence benchmarks) relies on.  ``"fast"`` activates the
    #: batched interval engine: one SNR tensor per (base station, interval)
    #: instead of per group member, and whole-array watch-duration draws
    #: per video -- same channel/behaviour statistics, different shared-
    #: generator walk.  ``"grouped"`` replaces the shared generator on the
    #: playback path with per-``(seed, interval, scoped group)`` streams
    #: derived via :mod:`repro.sim.rng` (plus per-user setup/collection
    #: streams), making results order-independent across groups and
    #: identical for any ``playback_workers`` count; its totals differ from
    #: both other modes for a given seed.  The default ``None`` resolves to
    #: ``"grouped"`` when ``playback_workers > 1``, else ``"fast"`` in
    #: ``controller_mode="handover"`` (nothing there depends on scalar-era
    #: streams) and ``"compat"`` in ``"boundary"`` mode.
    channel_draw_mode: Optional[str] = None
    #: Number of processes interval playback is sharded over (``"grouped"``
    #: draw mode only -- the other modes walk one shared generator and are
    #: inherently sequential).  ``1`` plays the same per-group streams
    #: serially; any value yields identical results for identical seeds.
    playback_workers: int = 1
    #: Which interval stages shard across the worker pool.  ``"playback"``
    #: is the legacy scheme: only stage-2 playback runs in workers, with
    #: per-task pickled arrays; stage 1 (channel draws) and twin collection
    #: stay in the parent.  ``"full"`` moves the whole interval onto a
    #: persistent per-worker runtime (see :mod:`repro.sim.shard`): tasks
    #: shrink to ``(plan handle, group index)`` messages, workers rebuild
    #: mobility/collection state from registry keys, and stage 1 + stage 3
    #: shard too.  Results are bit-identical between the two (and to
    #: serial).  ``None`` resolves to ``"full"`` in ``"grouped"`` draw mode
    #: and ``"playback"`` otherwise; ``"full"`` requires ``"grouped"``.
    shard_stages: Optional[str] = None
    #: Back the per-interval plan (member layout, preference weights,
    #: sampling CDFs, mean-SNR output) with ``multiprocessing.shared_memory``
    #: segments ring-reused across intervals.  ``False`` falls back to
    #: pickling the same arrays inside the plan handle — identical results,
    #: useful where /dev/shm is unavailable.  Only the ``"full"`` shard
    #: path reads it.
    shared_memory_buffers: bool = True

    # Multi-cell RAN controller (see repro.net.controller).
    #: ``"boundary"`` keeps the pre-controller behaviour (strongest-cell
    #: argmax at every interval boundary, bit-for-bit identical results);
    #: ``"handover"`` delegates association to the event-driven RAN
    #: controller: hysteresis + time-to-trigger handover on mid-interval
    #: samples, per-cell multicast group scoping and cross-cell
    #: resource-block budget rebalancing.
    controller_mode: str = "boundary"
    #: Controller-app stack for ``controller_mode="handover"``: a sequence
    #: of app names, ``(name, params)`` pairs or ``{"name", "params"}``
    #: mappings (see :mod:`repro.net.apps`), normalised to ``(name,
    #: params)`` tuples.  ``None`` (default) builds the default stack
    #: (``a3_handover``, ``cell_scoping``, ``prorata_rebalance``), which
    #: reproduces the pre-framework monolithic controller bit-for-bit.
    controller_apps: Optional[Sequence] = None
    handover_hysteresis_db: float = 3.0
    handover_time_to_trigger_s: float = 10.0
    handover_sample_period_s: float = 5.0
    #: Load-aware handover: cells the controller saw overloaded in the last
    #: load report are discounted by this many dB in the A3 rule, steering
    #: users away from them.  ``0.0`` (default) keeps handover pure-SNR.
    handover_load_bias_db: float = 0.0
    cell_overload_threshold: float = 0.9
    cell_underload_threshold: float = 0.5
    cell_rebalance_fraction: float = 0.25

    # Edge fleet (see repro.edge.server / repro.placement).  The per-server
    # EdgeServerConfig fields are lifted here so cache size and CPU capacity
    # are configurable (and spec-overridable) without code edits; defaults
    # equal the EdgeServerConfig defaults, so a default config compiles to
    # the historical single hard-wired server bit-for-bit.
    edge_servers: int = 1
    cache_capacity_gbytes: float = 8.0
    cpu_capacity_cycles_per_s: float = 3.0e9 * 16  # 16 cores at 3 GHz
    cycles_per_pixel: float = 12.0
    remote_fetch_penalty_s: float = 0.2

    # Predictive placement (repro.placement).  ``None`` disables placement:
    # every group runs on server 0 exactly like the pre-fleet simulator.
    # ``"drr"`` packs by dominant remaining resource, ``"first_fit"`` is the
    # naive A/B baseline.  A multi-server fleet needs a strategy — without
    # one the extra servers would sit idle.
    placement_strategy: Optional[str] = None
    placement_horizon: int = 3
    placement_mispredict_threshold: float = 0.5
    placement_reprovision: bool = True

    # Viewing behaviour.
    swipe_gap_s: float = 0.5
    recommendation_popularity_weight: float = 0.5
    popularity_update_rate: float = 0.1

    # Digital twins.
    collection_policy: CollectionPolicy = field(default_factory=CollectionPolicy)
    feature_steps: int = 32

    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_users <= 0 or self.num_videos <= 0:
            raise ValueError("num_users and num_videos must be positive")
        if self.num_intervals <= 0 or self.interval_s <= 0:
            raise ValueError("num_intervals and interval_s must be positive")
        if self.num_base_stations <= 0:
            raise ValueError("num_base_stations must be positive")
        if self.area_width_m <= 0 or self.area_height_m <= 0:
            raise ValueError("area dimensions must be positive")
        if not 0.0 <= self.favourite_user_fraction <= 1.0:
            raise ValueError("favourite_user_fraction must be in [0, 1]")
        if self.favourite_category is not None and self.favourite_category not in self.categories:
            raise ValueError("favourite_category must be one of categories")
        if self.favourite_boost <= 0:
            raise ValueError("favourite_boost must be positive")
        if self.stream_bandwidth_hz <= 0 or self.rb_bandwidth_hz <= 0:
            raise ValueError("bandwidths must be positive")
        if self.channel_sample_period_s <= 0:
            raise ValueError("channel_sample_period_s must be positive")
        if self.controller_mode not in ("boundary", "handover"):
            raise ValueError("controller_mode must be 'boundary' or 'handover'")
        if self.playback_workers < 1:
            raise ValueError("playback_workers must be at least 1")
        if self.channel_draw_mode is None:
            if self.playback_workers > 1:
                self.channel_draw_mode = "grouped"
            else:
                self.channel_draw_mode = (
                    "fast" if self.controller_mode == "handover" else "compat"
                )
        if self.channel_draw_mode not in ("compat", "fast", "grouped"):
            raise ValueError(
                "channel_draw_mode must be 'compat', 'fast' or 'grouped' (or "
                f"None for the mode default), got {self.channel_draw_mode!r}"
            )
        if self.playback_workers > 1 and self.channel_draw_mode != "grouped":
            raise ValueError(
                "playback_workers > 1 requires channel_draw_mode='grouped': the "
                "compat/fast modes consume one shared generator and cannot be "
                "sharded without changing results"
            )
        if self.shard_stages is None:
            self.shard_stages = (
                "full" if self.channel_draw_mode == "grouped" else "playback"
            )
        if self.shard_stages not in ("playback", "full"):
            raise ValueError(
                "shard_stages must be 'playback' or 'full' (or None for the "
                f"mode default), got {self.shard_stages!r}"
            )
        if self.shard_stages == "full" and self.channel_draw_mode != "grouped":
            raise ValueError(
                "shard_stages='full' requires channel_draw_mode='grouped': "
                "only the keyed registry streams let workers recompute stage "
                "1 and collection independently"
            )
        if self.controller_apps is not None:
            if self.controller_mode != "handover":
                raise ValueError("controller_apps requires controller_mode='handover'")
            # Imported lazily: repro.net.apps pulls in repro.net.controller,
            # which must stay importable without repro.sim at module level.
            from repro.net.apps import app_names, normalize_app_entry

            known = set(app_names())
            normalized = []
            for entry in self.controller_apps:
                name, params = normalize_app_entry(entry)
                if name not in known:
                    raise ValueError(
                        f"unknown controller app {name!r} (registered: "
                        f"{', '.join(sorted(known))})"
                    )
                normalized.append((name, params))
            self.controller_apps = tuple(normalized)
        if self.handover_hysteresis_db < 0 or self.handover_time_to_trigger_s < 0:
            raise ValueError("handover hysteresis and time-to-trigger must be non-negative")
        if self.handover_load_bias_db < 0:
            raise ValueError("handover_load_bias_db must be non-negative")
        if self.handover_sample_period_s <= 0:
            raise ValueError("handover_sample_period_s must be positive")
        if not 0.0 < self.cell_underload_threshold < self.cell_overload_threshold:
            raise ValueError(
                "thresholds must satisfy 0 < cell_underload_threshold < cell_overload_threshold"
            )
        if not 0.0 <= self.cell_rebalance_fraction <= 1.0:
            raise ValueError("cell_rebalance_fraction must be in [0, 1]")
        if self.edge_servers < 1:
            raise ValueError("edge_servers must be at least 1")
        if self.cache_capacity_gbytes <= 0 or self.cpu_capacity_cycles_per_s <= 0:
            raise ValueError("edge cache and CPU capacities must be positive")
        if self.remote_fetch_penalty_s < 0:
            raise ValueError("remote_fetch_penalty_s must be non-negative")
        if self.placement_strategy is not None:
            # Imported lazily: repro.placement imports repro.sim.events.
            from repro.placement.planner import PLACEMENT_STRATEGIES

            if self.placement_strategy not in PLACEMENT_STRATEGIES:
                raise ValueError(
                    f"placement_strategy must be one of "
                    f"{', '.join(PLACEMENT_STRATEGIES)} (or None to disable), "
                    f"got {self.placement_strategy!r}"
                )
        elif self.edge_servers > 1:
            raise ValueError(
                "edge_servers > 1 requires a placement_strategy: without one "
                "every group runs on server 0 and the extra servers sit idle"
            )
        if self.placement_horizon < 1:
            raise ValueError("placement_horizon must be at least 1")
        if self.placement_mispredict_threshold <= 0:
            raise ValueError("placement_mispredict_threshold must be positive")
        if not 0.0 <= self.popularity_update_rate <= 1.0:
            raise ValueError("popularity_update_rate must be in [0, 1]")
        if self.feature_steps <= 0:
            raise ValueError("feature_steps must be positive")
