"""Metric recording.

A small utility for accumulating named time series during a simulation run
(per-interval resource usage, accuracies, cache hit ratios, ...) and
summarising them.  Benchmarks and examples print their tables from these
recorders.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class SeriesSummary:
    """Summary statistics of one metric series."""

    name: str
    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    total: float

    def as_row(self) -> str:
        """One formatted table row (used by the benchmark harnesses)."""
        return (
            f"{self.name:<36s} n={self.count:<5d} mean={self.mean:>12.3f} "
            f"std={self.std:>10.3f} min={self.minimum:>12.3f} max={self.maximum:>12.3f}"
        )


class MetricRecorder:
    """Accumulates named scalar series."""

    def __init__(self) -> None:
        self._series: Dict[str, List[float]] = {}

    def record(self, name: str, value: float) -> None:
        """Append one value to the series ``name`` (created on first use)."""
        if not name:
            raise ValueError("metric name must be non-empty")
        value = float(value)
        if not np.isfinite(value):
            raise ValueError(f"metric {name!r} received a non-finite value")
        self._series.setdefault(name, []).append(value)

    def record_many(self, values: Dict[str, float]) -> None:
        for name, value in values.items():
            self.record(name, value)

    def names(self) -> List[str]:
        return sorted(self._series.keys())

    def series(self, name: str) -> np.ndarray:
        if name not in self._series:
            raise KeyError(f"no metric named {name!r}")
        return np.array(self._series[name])

    def has(self, name: str) -> bool:
        return name in self._series

    def last(self, name: str) -> float:
        series = self.series(name)
        return float(series[-1])

    def summary(self, name: str) -> SeriesSummary:
        series = self.series(name)
        return SeriesSummary(
            name=name,
            count=int(series.size),
            mean=float(series.mean()),
            std=float(series.std()),
            minimum=float(series.min()),
            maximum=float(series.max()),
            total=float(series.sum()),
        )

    def summaries(self) -> List[SeriesSummary]:
        return [self.summary(name) for name in self.names()]

    def as_table(self, names: Optional[Sequence[str]] = None) -> str:
        """Formatted multi-line summary table."""
        selected = list(names) if names is not None else self.names()
        return "\n".join(self.summary(name).as_row() for name in selected)
