"""SeedSequence-derived random stream registry.

The simulator historically drew *everything* — population setup, churn,
channel fading, watch durations, twin collection — from one shared
``np.random.Generator``.  That coupling has two costs:

* **order dependence** — a group's draws depend on how many draws every
  group before it consumed, so playback cannot be reordered (let alone
  sharded across processes) without changing results, and
* **hidden collisions** — ad-hoc integer seed arithmetic such as
  ``seed * 1000 + user_id`` collides across (seed, user) pairs: user 1000
  under seed ``s`` replays user 0's trajectory under seed ``s + 1``.

This module replaces both with explicit :class:`numpy.random.SeedSequence`
derivation: every consumer gets its own child stream from a structured
integer key, so draws are reproducible for a given key regardless of
execution order, worker count, or what any other consumer did.  It is the
same trick the demand predictor already uses per ``(seed, group, window)``
rollout (:meth:`repro.core.demand.GroupDemandPredictor._rollout_rng`), now
shared as the one canonical derivation.

Key layout
----------

``(seed, user_id)``
    per-user mobility stream — the documented fix for the
    ``seed * 1000 + user_id`` collision (two entropy words, no tag).
``(seed, user_id, tag)``
    per-user setup streams (preference draws), churn-independent: adding
    or removing one user never perturbs another user's stream.
``(seed, interval_index, scoped_group_id, tag)``
    per-(interval, group) playback streams: one for channel fading, one
    for watch durations.  These make group playback order-independent and
    give process-sharded playback draw-exact shard boundaries.
``(seed, interval_index, user_id, tag)``
    per-(interval, user) twin-collection streams.

All words are masked to 64 bits (negative seeds allowed); distinct purpose
tags keep equal-length keys from ever colliding across stream kinds.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

_MASK = 0xFFFFFFFFFFFFFFFF

#: Purpose tags appended to registry keys.  Values are arbitrary but must
#: stay distinct (and stable: changing one re-seeds every derived stream).
PREFERENCE_STREAM = 1
CHANNEL_STREAM = 2
WATCH_STREAM = 3
COLLECTION_STREAM = 4


def derive_seed_sequence(key: Sequence[int]) -> np.random.SeedSequence:
    """The canonical key → :class:`~numpy.random.SeedSequence` derivation.

    Each key word is masked to 64 bits so negative values (e.g. a negative
    configured seed) stay valid entropy.
    """
    return np.random.SeedSequence([int(word) & _MASK for word in key])


def derive_stream(key: Sequence[int]) -> np.random.Generator:
    """A fresh generator for ``key`` (see :func:`derive_seed_sequence`)."""
    return np.random.default_rng(derive_seed_sequence(key))


def legacy_stream(
    seed: "int | np.random.SeedSequence | np.random.Generator | None" = None,
) -> np.random.Generator:
    """Registry-sanctioned shim for historical ``np.random.default_rng(seed)``.

    The pre-registry modules seeded their generators with plain literals
    (``default_rng(config.seed)``, ``default_rng(0)``) and their golden
    digests pin those exact bit streams, so the sites cannot move to
    :func:`derive_stream`'s masked-key derivation without re-baselining
    every golden.  Centralising the construction here keeps ``repro lint``'s
    RNG001 invariant — *no generator is built outside this module* — while
    staying bit-identical: this is ``np.random.default_rng`` applied to the
    very same seed the call site used historically.

    Every call site of this shim is legacy by definition.  New code must
    derive its stream from a structured key (:func:`derive_stream` /
    :class:`RngRegistry`); an existing site graduates whenever its goldens
    are deliberately re-baselined.
    """
    return np.random.default_rng(seed)


def window_token(window_start_s: "float | None") -> int:
    """64-bit key word for an optional time-window start (ms resolution).

    ``None`` maps to the reserved all-ones word, matching the demand
    predictor's historical keying so its rollout streams are unchanged.
    """
    if window_start_s is None:
        return _MASK
    return int(round(float(window_start_s) * 1000.0)) & _MASK


def grouped_channel_stream(
    seed: int, interval_index: int, scoped_group_id: int
) -> np.random.Generator:
    """Channel-fading stream of one scoped group for one interval."""
    return derive_stream((seed, interval_index, scoped_group_id, CHANNEL_STREAM))


def grouped_watch_stream(
    seed: int, interval_index: int, scoped_group_id: int
) -> np.random.Generator:
    """Watch-duration / video-choice stream of one scoped group for one interval.

    This is the stream a playback worker re-derives locally, which is what
    makes process-shard boundaries draw-exact: the worker needs no
    generator state from the parent, only the key.
    """
    return derive_stream((seed, interval_index, scoped_group_id, WATCH_STREAM))


class RngRegistry:
    """Per-simulation registry of derived random streams.

    Thin, stateless facade over :func:`derive_stream` that fixes the root
    seed and documents the key layout in one place.  Generators are *not*
    cached: every call returns a fresh stream positioned at the start of
    its key's sequence, which is exactly what order-independence requires.
    """

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)

    def mobility_seed(self, user_id: int) -> np.random.SeedSequence:
        """Seed sequence of one user's mobility model: ``(seed, user_id)``."""
        return derive_seed_sequence((self.seed, user_id))

    def preference_stream(self, user_id: int) -> np.random.Generator:
        """Setup stream for one user's preference draw (churn-independent)."""
        return derive_stream((self.seed, user_id, PREFERENCE_STREAM))

    def channel_stream(
        self, interval_index: int, scoped_group_id: int
    ) -> np.random.Generator:
        return grouped_channel_stream(self.seed, interval_index, scoped_group_id)

    def watch_stream(
        self, interval_index: int, scoped_group_id: int
    ) -> np.random.Generator:
        return grouped_watch_stream(self.seed, interval_index, scoped_group_id)

    def collection_stream(
        self, interval_index: int, user_id: int
    ) -> np.random.Generator:
        """Twin-collection stream of one user for one interval."""
        return derive_stream(
            (self.seed, interval_index, user_id, COLLECTION_STREAM)
        )
