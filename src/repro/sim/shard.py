"""Full-interval sharded engine: shared-memory fabric + worker runtime.

The grouped interval engine (``channel_draw_mode="grouped"``) derives every
random draw from a structured key (:mod:`repro.sim.rng`), so any stage of an
interval can be recomputed anywhere — a worker process needs *keys*, not
generator state.  This module supplies the two pieces that turn that
property into a fully sharded interval:

* :class:`SharedIntervalPlan` — the parent-owned shared-memory fabric.  Per
  interval the :class:`~repro.sim.simulator.StreamingSimulator` publishes one
  *plan*: the member-slot layout (group offsets, user ids, serving cells),
  the per-member preference-weight matrix, the per-group video-sampling CDFs
  and an output slot for per-member mean SNR.  Segments are ring-reused
  across intervals (reallocated only when the population outgrows them) and
  unlinked by ``close()``.  Tasks shrink to ``(plan handle, group index)`` —
  no arrays are pickled per task.

* :class:`ShardWorkerRuntime` — the persistent per-worker population state.
  Each worker lazily reconstructs per-user mobility models from their
  ``SeedSequence((seed, user_id))`` keys (bit-identical to the parent's,
  since a trajectory is a pure function of campus + seed) and caches them
  across intervals.  The population *epoch* — bumped by the parent on every
  ``add_user``/``remove_user`` — gates resynchronisation: only when the
  epoch advances does a worker prune departed users from its cache, and new
  users materialise lazily on first touch, so churn resyncs exactly the
  delta and ships no state at all.

A shard task runs all three stages of one group's interval in the worker:
stage 1 (channel draws from the group's ``(seed, interval, group)`` stream,
mean SNR written into the plan's shared output), stage 2 (multicast playback
via :func:`~repro.sim.simulator.play_group_task`, reading its CDF row and
weight slice zero-copy from the plan) and stage 3 (twin status collection
from the per-``(interval, user)`` streams, returned as an op log the parent
replays onto the real twins).  Serial and sharded runs are bit-identical for
every worker count.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.mobility.campus import CampusMap
from repro.mobility.trajectory import GraphTrajectoryMobility
from repro.net.basestation import BaseStation
from repro.net.multicast import group_spectral_efficiency
from repro.sim.rng import RngRegistry, grouped_channel_stream
from repro.timegrid import time_grid
from repro.twin.attributes import AttributeSpec
from repro.twin.collector import CollectionPolicy, StatusCollector

#: Prefix of every shared-memory segment this module creates; the /dev/shm
#: leak regression test keys on it.
SEGMENT_PREFIX = "repro-shard"

_PLAN_KEYS = ("idx", "wts", "cdf", "snr")


# --------------------------------------------------------------------------
# Plan handle + shared-memory fabric (parent side)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class PlanHandle:
    """Picklable descriptor of one interval's published plan.

    Carries only names, shapes and scalars (a few hundred bytes); the
    arrays themselves live in the shared segments — or, when shared memory
    is disabled, ride along in ``inline`` (the pickled-array fallback).
    """

    token: str
    version: int
    epoch: int
    interval_index: int
    start_s: float
    end_s: float
    num_users: int
    num_groups: int
    num_categories: int
    num_videos: int
    #: ``{key: segment name}`` for the shm fabric, ``None`` in inline mode.
    names: Optional[Mapping[str, str]] = None
    #: ``(offsets, group_ids, user_ids, serving, weights, cdf)`` when shared
    #: memory is disabled; ``None`` otherwise.
    inline: Optional[tuple] = None


class SharedIntervalPlan:
    """Parent-owned, ring-reused shared-memory backing of interval plans.

    One instance per simulator.  ``publish`` writes the interval's arrays
    into the segments (growing them — under a new version — only when the
    population outgrows the current capacity) and returns the
    :class:`PlanHandle` workers attach by name.  ``close`` unlinks every
    segment and is idempotent; the owning simulator calls it from its own
    ``close()``/``__exit__``.
    """

    def __init__(self, token: str, use_shared_memory: bool = True) -> None:
        self.token = token
        self.use_shared_memory = use_shared_memory
        self.version = 0
        self._segments: Dict[str, shared_memory.SharedMemory] = {}
        self._capacity: Dict[str, int] = {}

    # ------------------------------------------------------------- publish
    def publish(
        self,
        *,
        epoch: int,
        interval_index: int,
        start_s: float,
        end_s: float,
        offsets: np.ndarray,
        group_ids: np.ndarray,
        user_ids: np.ndarray,
        serving: np.ndarray,
        weights: np.ndarray,
        cdf: np.ndarray,
    ) -> PlanHandle:
        num_users, num_categories = weights.shape
        num_groups, num_videos = cdf.shape
        base = dict(
            token=self.token,
            version=self.version,
            epoch=epoch,
            interval_index=interval_index,
            start_s=float(start_s),
            end_s=float(end_s),
            num_users=int(num_users),
            num_groups=int(num_groups),
            num_categories=int(num_categories),
            num_videos=int(num_videos),
        )
        if not self.use_shared_memory:
            return PlanHandle(
                **base,
                inline=(
                    offsets.astype(np.int64),
                    group_ids.astype(np.int64),
                    user_ids.astype(np.int64),
                    serving.astype(np.int64),
                    weights,
                    cdf,
                ),
            )
        index = np.concatenate([offsets, group_ids, user_ids, serving]).astype(np.int64)
        sizes = {
            "idx": index.nbytes,
            "wts": weights.nbytes,
            "cdf": cdf.nbytes,
            "snr": int(num_users) * 8,
        }
        if not self._segments or any(
            sizes[key] > self._capacity.get(key, -1) for key in _PLAN_KEYS
        ):
            self._reallocate(sizes)
        base["version"] = self.version
        self._write("idx", index)
        self._write("wts", np.ascontiguousarray(weights, dtype=np.float64))
        self._write("cdf", np.ascontiguousarray(cdf, dtype=np.float64))
        self._write("snr", np.zeros(num_users, dtype=np.float64))
        return PlanHandle(
            **base, names={key: seg.name for key, seg in self._segments.items()}
        )

    def mean_snr(self, handle: PlanHandle) -> np.ndarray:
        """Copy of the per-member mean-SNR output slots (post shard run)."""
        segment = self._segments["snr"]
        view = np.ndarray(
            (handle.num_users,), dtype=np.float64, buffer=segment.buf
        )
        out = np.array(view)
        del view
        return out

    # ------------------------------------------------------------ internals
    def _write(self, key: str, array: np.ndarray) -> None:
        segment = self._segments[key]
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
        view[:] = array
        del view

    def _reallocate(self, sizes: Dict[str, int]) -> None:
        self._release(unlink=True)
        self.version += 1
        for key in _PLAN_KEYS:
            # Grow with headroom so steady churn doesn't reallocate every
            # interval; segments are page-granular anyway.
            capacity = max(int(sizes[key]), 2 * self._capacity.get(key, 0), 8)
            name = f"{SEGMENT_PREFIX}-{self.token}-v{self.version}-{key}"
            self._segments[key] = shared_memory.SharedMemory(
                name=name, create=True, size=capacity
            )
            self._capacity[key] = capacity

    def _release(self, unlink: bool) -> None:
        for segment in self._segments.values():
            try:
                segment.close()
            except BufferError:  # pragma: no cover - exported views linger
                pass
            if unlink:
                try:
                    segment.unlink()
                except FileNotFoundError:  # pragma: no cover - already gone
                    pass
        self._segments = {}
        self._capacity = {}

    def close(self) -> None:
        """Unlink and forget every segment (idempotent)."""
        self._release(unlink=True)


# --------------------------------------------------------------------------
# Static worker state + runtime (worker side)
# --------------------------------------------------------------------------


@dataclass
class ShardStatic:
    """Content/config state shipped to each worker once, at pool start."""

    seed: int
    catalog: object
    watching_model: object
    video_ids: np.ndarray
    category_indices: np.ndarray
    #: Column permutation mapping the catalog's sampling-category order onto
    #: the config-category order the plan's weight matrix uses.
    sampling_perm: np.ndarray
    swipe_gap_s: float
    rb_bandwidth_hz: float
    interval_s: float
    stream_bandwidth_hz: float
    implementation_loss: float
    channel_sample_period_s: float
    campus: CampusMap
    base_stations: Sequence[BaseStation]
    attributes: Dict[str, AttributeSpec]
    collection_policy: CollectionPolicy
    report_cells: bool


class _ArrayPreference:
    """Duck-typed preference exposing exactly ``as_array()`` over a row.

    The collector only reads the weight vector; rebuilding a
    :class:`~repro.behavior.preference.PreferenceVector` would renormalise
    and could flip low-order bits, so the plan's row is served verbatim.
    """

    __slots__ = ("_array",)

    def __init__(self, array: np.ndarray) -> None:
        self._array = array

    def as_array(self, categories=None) -> np.ndarray:
        return self._array


class _RecordingTwin:
    """Twin stand-in that records collector appends instead of storing them.

    Lets the worker run the *actual* :class:`StatusCollector` code — so the
    per-user stream walk is byte-for-byte the serial one — while the real
    twin state stays in the parent, which replays the recorded op log.
    """

    __slots__ = ("attributes", "batches", "watches")

    def __init__(self, attributes: Dict[str, AttributeSpec]) -> None:
        self.attributes = attributes
        self.batches: List[tuple] = []
        self.watches: List[object] = []

    def record_batch(self, attribute: str, timestamps_s, values) -> int:
        self.batches.append(
            (attribute, np.asarray(timestamps_s), np.asarray(values))
        )
        return len(self.batches)

    def record_watches(self, records) -> None:
        self.watches.extend(records)


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    # Attaching registers the segment with the (fork-shared) resource
    # tracker, which would race the parent's own register/unlink pair and
    # try to clean the segment up again at worker exit.  The parent owns
    # the lifecycle, so suppress the worker-side registration entirely
    # (Python < 3.13 has no ``track=False``).
    original_register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original_register


class ShardWorkerRuntime:
    """Persistent per-worker state: population caches + plan attachments."""

    def __init__(self, static: ShardStatic) -> None:
        self.static = static
        self.registry = RngRegistry(static.seed)
        self.epoch = -1
        #: Lazily reconstructed per-user mobility models.  Pure functions of
        #: (campus, per-user seed), so entries are bit-identical to the
        #: parent's models no matter when they are built.
        self.mobility: Dict[int, GraphTrajectoryMobility] = {}
        self.bs_by_id = {bs.bs_id: bs for bs in static.base_stations}
        self.ladder = static.catalog.reference_ladder()
        self.collector = StatusCollector(
            policy=static.collection_policy,
            seed=0,  # never drawn from: grouped mode routes keep draws too
            interleaved_snr_draws=False,
        )
        self._attached: Optional[dict] = None

    # ------------------------------------------------------------ population
    def mobility_for(self, user_id: int) -> GraphTrajectoryMobility:
        model = self.mobility.get(user_id)
        if model is None:
            model = GraphTrajectoryMobility(
                self.static.campus, seed=self.registry.mobility_seed(user_id)
            )
            self.mobility[user_id] = model
        return model

    def _resync_population(self, epoch: int, user_ids: np.ndarray) -> None:
        """Epoch-gated delta resync: prune departed users, keep the rest."""
        if epoch == self.epoch:
            return
        live = {int(uid) for uid in user_ids}
        for uid in [uid for uid in self.mobility if uid not in live]:
            del self.mobility[uid]
        self.epoch = epoch

    # ----------------------------------------------------------------- plans
    def plan_arrays(self, handle: PlanHandle) -> dict:
        """Attach (cached by version) and slice the plan's arrays."""
        num_users = handle.num_users
        num_groups = handle.num_groups
        if handle.names is None:
            offsets, group_ids, user_ids, serving, weights, cdf = handle.inline
            snr_out = None
        else:
            attached = self._attached
            if (
                attached is None
                or attached["token"] != handle.token
                or attached["version"] != handle.version
            ):
                self._close_attachments()
                attached = {
                    "token": handle.token,
                    "version": handle.version,
                    "segments": {
                        key: _attach_segment(name)
                        for key, name in handle.names.items()
                    },
                }
                self._attached = attached
            segments = attached["segments"]
            index = np.ndarray(
                (num_groups + 1 + num_groups + 2 * num_users,),
                dtype=np.int64,
                buffer=segments["idx"].buf,
            )
            offsets = index[: num_groups + 1]
            group_ids = index[num_groups + 1 : 2 * num_groups + 1]
            user_ids = index[2 * num_groups + 1 : 2 * num_groups + 1 + num_users]
            serving = index[2 * num_groups + 1 + num_users :]
            weights = np.ndarray(
                (num_users, handle.num_categories),
                dtype=np.float64,
                buffer=segments["wts"].buf,
            )
            cdf = np.ndarray(
                (num_groups, handle.num_videos),
                dtype=np.float64,
                buffer=segments["cdf"].buf,
            )
            snr_out = np.ndarray(
                (num_users,), dtype=np.float64, buffer=segments["snr"].buf
            )
        self._resync_population(handle.epoch, user_ids)
        return {
            "offsets": offsets,
            "group_ids": group_ids,
            "user_ids": user_ids,
            "serving": serving,
            "weights": weights,
            "cdf": cdf,
            "snr_out": snr_out,
        }

    def _close_attachments(self) -> None:
        if self._attached is None:
            return
        segments = self._attached["segments"]
        self._attached = None
        for segment in segments.values():
            try:
                segment.close()
            except BufferError:  # pragma: no cover - view still exported
                pass


class _WorkerRuntimeSlot:
    """Holder for the per-process runtime, set once by the pool initializer.

    A class-attribute slot rather than a module global: the only mutation is
    the initializer's one assignment in a freshly-forked worker, and keeping
    it off the module namespace makes that invariant checkable (SHARD003
    forbids mutable module-level bindings in worker-reachable code).
    """

    runtime: Optional[ShardWorkerRuntime] = None


def _init_shard_worker(static: ShardStatic) -> None:
    _WorkerRuntimeSlot.runtime = ShardWorkerRuntime(static)


def _probe_shard_worker(_: int) -> tuple:
    """Test/debug hook: this worker's (pid, epoch, cached mobility ids)."""
    runtime = _WorkerRuntimeSlot.runtime
    assert runtime is not None, "shard worker not initialized"
    return os.getpid(), runtime.epoch, tuple(sorted(runtime.mobility))


def _run_shard_task(task: tuple) -> tuple:
    """Run all three stages of one group's interval inside the worker.

    Returns ``(group_id, usage, events_by_member, requests, representation,
    mean_snrs_or_None, collection_ops, stage_times)``.  ``mean_snrs`` is
    ``None`` when the plan is shm-backed (the worker wrote them into the
    plan's output slots instead).
    """
    handle, group_index = task
    runtime = _WorkerRuntimeSlot.runtime
    assert runtime is not None, "shard worker not initialized"
    static = runtime.static
    # Imported lazily: repro.sim.simulator imports this module at load time.
    from repro.sim.simulator import GroupPlaybackTask, play_group_task

    arrays = runtime.plan_arrays(handle)
    offsets = arrays["offsets"]
    lo = int(offsets[group_index])
    hi = int(offsets[group_index + 1])
    group_id = int(arrays["group_ids"][group_index])
    member_ids = [int(uid) for uid in arrays["user_ids"][lo:hi]]
    serving = arrays["serving"][lo:hi]

    # Stage 1: per-group channel stream, mobility from the persistent cache.
    started = time.perf_counter()
    times = time_grid(handle.start_s, handle.end_s, static.channel_sample_period_s)
    positions = {
        uid: runtime.mobility_for(uid).positions(times) for uid in member_ids
    }
    rng = grouped_channel_stream(static.seed, handle.interval_index, group_id)
    by_station: Dict[int, List[int]] = {}
    for uid, bs_id in zip(member_ids, serving):
        by_station.setdefault(int(bs_id), []).append(uid)
    mean_by_user: Dict[int, float] = {}
    for bs_id in sorted(by_station):
        served = by_station[bs_id]
        traces = runtime.bs_by_id[bs_id].sample_snr_traces(
            np.stack([positions[uid] for uid in served], axis=0), rng=rng
        )
        for row, uid in enumerate(served):
            mean_by_user[uid] = float(traces[row].mean())
    mean_snrs = [mean_by_user[uid] for uid in member_ids]
    efficiency = group_spectral_efficiency(
        mean_snrs, implementation_loss=static.implementation_loss
    )
    representation = runtime.ladder.best_fitting(
        efficiency * static.stream_bandwidth_hz
    )
    if arrays["snr_out"] is not None:
        arrays["snr_out"][lo:hi] = mean_snrs
        mean_out: Optional[List[float]] = None
    else:
        mean_out = mean_snrs
    stage1_done = time.perf_counter()

    # Stage 2: playback.  The CDF row is read zero-copy from the plan; the
    # weight slice is gathered into the catalog's sampling-category order.
    weight_rows = arrays["weights"][lo:hi]
    playback_task = GroupPlaybackTask(
        group_id=group_id,
        member_ids=tuple(member_ids),
        representation=representation,
        efficiency=efficiency,
        start_s=handle.start_s,
        end_s=handle.end_s,
        cdf=arrays["cdf"][group_index],
        weights=weight_rows[:, static.sampling_perm],
        seed=static.seed,
        interval_index=handle.interval_index,
    )
    usage, events, requests = play_group_task(
        playback_task,
        static.catalog,
        static.watching_model,
        static.video_ids,
        static.category_indices,
        static.swipe_gap_s,
        static.rb_bandwidth_hz,
        static.interval_s,
    )
    playback_done = time.perf_counter()

    # Stage 3: twin collection from the per-(interval, user) streams.  The
    # real collector runs against a recording twin, so the stream walk is
    # identical to the serial path; the parent replays the op log.
    collection: Dict[int, List[tuple]] = {}
    for row, uid in enumerate(member_ids):
        stream = runtime.registry.collection_stream(handle.interval_index, uid)
        recorder = _RecordingTwin(static.attributes)
        runtime.collector.collect_interval(
            recorder,
            runtime.mobility_for(uid),
            runtime.bs_by_id[int(serving[row])],
            _ArrayPreference(np.array(weight_rows[row])),
            events[uid],
            handle.start_s,
            handle.end_s,
            rng=stream,
            keep_rng=stream,
            serving_cell=int(serving[row]) if static.report_cells else None,
        )
        ops: List[tuple] = [("batch", *batch) for batch in recorder.batches]
        if events[uid]:
            # Kept watch records are a subsequence of this user's events;
            # return indices so the records are not pickled twice.
            kept: List[int] = []
            cursor = 0
            for record in recorder.watches:
                while events[uid][cursor].record is not record:
                    cursor += 1
                kept.append(cursor)
                cursor += 1
            ops.append(("watches", tuple(kept)))
        collection[uid] = ops
    collect_done = time.perf_counter()

    return (
        group_id,
        usage,
        events,
        requests,
        representation,
        mean_out,
        collection,
        (
            stage1_done - started,
            playback_done - stage1_done,
            collect_done - playback_done,
        ),
    )
