"""Simulation substrate: clock, events, the streaming simulator and metrics.

The simulator is the ground truth the prediction scheme is evaluated
against.  Per reservation interval it:

1. moves users along their campus trajectories and samples their downlink
   SNR from the serving base station,
2. plays out multicast streaming for a given grouping (shared video stream
   per group, per-member watch durations, worst-member modulation),
3. performs the edge transcoding those streams require, and
4. pushes user status into the digital twins through the status collector.

The per-group radio (resource blocks) and computing (CPU cycles) usage it
records is what the DT-assisted scheme must predict *before* the interval
starts.
"""

from repro.sim.clock import SimulationClock
from repro.sim.events import Event, EventQueue
from repro.sim.metrics import MetricRecorder, SeriesSummary
from repro.sim.config import SimulationConfig
from repro.sim.rng import RngRegistry, derive_seed_sequence, derive_stream
from repro.sim.simulator import (
    GroupIntervalUsage,
    IntervalResult,
    StreamingSimulator,
    UserState,
    singleton_grouping,
)

__all__ = [
    "Event",
    "EventQueue",
    "GroupIntervalUsage",
    "IntervalResult",
    "MetricRecorder",
    "RngRegistry",
    "SeriesSummary",
    "SimulationClock",
    "SimulationConfig",
    "StreamingSimulator",
    "UserState",
    "derive_seed_sequence",
    "derive_stream",
    "singleton_grouping",
]
