"""The multicast short-video streaming simulator.

The simulator is interval-driven: callers decide the multicast grouping for
the next reservation interval (that is exactly what the DT-assisted scheme
does) and then ask the simulator to play the interval out.  Per interval and
per group it:

1. samples every member's downlink SNR along their trajectory and applies
   the worst-member rule to get the group's spectral efficiency and the
   representation the group can sustain,
2. plays a *shared* multicast video stream: videos are drawn from a mixture
   of global popularity and the group's mean preference, every member draws
   an individual watch duration, and the stream carries each video for as
   long as the longest-watching member stays (multicast cannot stop earlier),
3. charges the transmitted bits against the radio model (resource blocks)
   and the transcoding work against the edge server (CPU cycles), and
4. pushes each member's status (channel condition, location, watch records,
   preference) into their digital twin through the status collector.

The recorded :class:`GroupIntervalUsage` values are the ground truth the
prediction scheme is evaluated against.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.behavior.preference import PreferenceModel, PreferenceVector, random_preference
from repro.behavior.session import ViewingEvent
from repro.behavior.watching import WatchingDurationModel, WatchRecord
from repro.edge.server import EdgeServer, EdgeServerConfig
from repro.placement.fleet import EdgeFleet
from repro.placement.manager import PlacementConfig, PlacementManager, ReprovisionEvent
from repro.placement.planner import ServerCapacity, fragmentation_index
from repro.mobility.campus import CampusConfig, CampusMap
from repro.mobility.trajectory import GraphTrajectoryMobility, MobilityModel
from repro.net.basestation import BaseStation, BaseStationConfig, place_base_stations
from repro.net.apps import AppEvent
from repro.net.controller import (
    CellLoadEvent,
    ControllerConfig,
    GroupScopeEvent,
    HandoverEvent,
    RanController,
)
from repro.net.handover import HandoverConfig
from repro.net.multicast import group_spectral_efficiency, resource_blocks_for_traffic
from repro.sim.clock import SimulationClock
from repro.sim.config import SimulationConfig
from repro.sim.metrics import MetricRecorder
from repro.sim.rng import RngRegistry, grouped_watch_stream, legacy_stream
from repro.sim.shard import (
    SharedIntervalPlan,
    ShardStatic,
    _init_shard_worker,
    _run_shard_task,
)
from repro.timegrid import time_grid
from repro.twin.collector import StatusCollector
from repro.twin.manager import DigitalTwinManager
from repro.twin.attributes import SERVING_CELL, serving_cell_attribute, standard_attributes
from repro.video.catalog import CatalogConfig, VideoCatalog
from repro.video.popularity import sample_index, sampling_cdf
from repro.video.representations import Representation


@dataclass
class UserState:
    """Live state of one simulated user."""

    user_id: int
    mobility: MobilityModel
    preference_model: PreferenceModel
    serving_bs_id: int = 0

    @property
    def preference(self) -> PreferenceVector:
        return self.preference_model.preference


@dataclass
class GroupIntervalUsage:
    """Ground-truth resource usage of one multicast group in one interval."""

    group_id: int
    member_ids: List[int]
    traffic_bits: float
    efficiency_bps_hz: float
    representation_name: str
    resource_blocks: float
    computing_cycles: float
    videos_played: int
    engagement_seconds: float


@dataclass
class IntervalResult:
    """Everything the simulator recorded for one reservation interval."""

    interval_index: int
    start_s: float
    end_s: float
    usage_by_group: Dict[int, GroupIntervalUsage] = field(default_factory=dict)
    events_by_user: Dict[int, List[ViewingEvent]] = field(default_factory=dict)
    mean_snr_by_user: Dict[int, float] = field(default_factory=dict)
    #: RAN-controller outputs; empty in ``controller_mode="boundary"``.
    cell_of_group: Dict[int, int] = field(default_factory=dict)
    handover_events: List[HandoverEvent] = field(default_factory=list)
    group_scope_events: List[GroupScopeEvent] = field(default_factory=list)
    cell_load_events: List[CellLoadEvent] = field(default_factory=list)
    app_events: List[AppEvent] = field(default_factory=list)
    rb_utilization_by_cell: Dict[int, float] = field(default_factory=dict)
    rb_budget_by_cell: Dict[int, float] = field(default_factory=dict)
    #: Edge-fleet outputs (``placement_*`` fields stay empty unless a
    #: placement strategy is configured; ``edge_*`` fields are always set).
    server_of_group: Dict[int, int] = field(default_factory=dict)
    edge_utilization_by_server: Dict[int, float] = field(default_factory=dict)
    edge_cache_misses: int = 0
    #: Fleet fragmentation snapshot (``None`` for a single-server fleet).
    edge_fragmentation: Optional[float] = None
    placement_events: List[ReprovisionEvent] = field(default_factory=list)
    #: Per-stage wall-time breakdown of this interval (``stage1_s`` channel
    #: draws, ``playback_s`` multicast playback, ``collection_s`` twin
    #: collection).  In the full-shard engine the stage entries are summed
    #: worker-side per-task seconds (attributable CPU time per stage) plus
    #: the parent's plan/merge/replay overhead.
    timing: Dict[str, float] = field(default_factory=dict)

    @property
    def num_handovers(self) -> int:
        return len(self.handover_events)

    @property
    def rb_demand_by_cell(self) -> Dict[int, float]:
        """Finite resource-block demand per serving cell (handover mode)."""
        demand: Dict[int, float] = {}
        for group_id, usage in self.usage_by_group.items():
            cell_id = self.cell_of_group.get(group_id)
            if cell_id is not None and np.isfinite(usage.resource_blocks):
                demand[cell_id] = demand.get(cell_id, 0.0) + usage.resource_blocks
        return demand

    @property
    def outage_groups_by_cell(self) -> Dict[int, List[int]]:
        """Outage groups keyed by their serving cell (handover mode)."""
        outages: Dict[int, List[int]] = {}
        for group_id in self.outage_groups:
            cell_id = self.cell_of_group.get(group_id)
            if cell_id is not None:
                outages.setdefault(cell_id, []).append(group_id)
        return outages

    @property
    def outage_groups(self) -> List[int]:
        """Groups whose resource-block demand is infinite (zero efficiency).

        These groups had traffic to deliver but no decodable modulation and
        coding scheme; no finite resource allocation can serve them, so they
        are surfaced here instead of being folded into the finite totals.
        """
        return sorted(
            group_id
            for group_id, usage in self.usage_by_group.items()
            if not np.isfinite(usage.resource_blocks)
        )

    @property
    def total_resource_blocks(self) -> float:
        """Sum of resource blocks over groups with *finite* demand.

        Convention: outage groups (``resource_blocks == inf``) are excluded
        from this total so it stays a meaningful, schedulable quantity; they
        are reported separately via :attr:`outage_groups` rather than
        silently dropped.
        """
        finite = [
            usage.resource_blocks
            for usage in self.usage_by_group.values()
            if np.isfinite(usage.resource_blocks)
        ]
        return float(sum(finite))

    @property
    def total_computing_cycles(self) -> float:
        return float(sum(usage.computing_cycles for usage in self.usage_by_group.values()))

    @property
    def total_traffic_bits(self) -> float:
        return float(sum(usage.traffic_bits for usage in self.usage_by_group.values()))


def singleton_grouping(user_ids: Sequence[int]) -> Dict[int, List[int]]:
    """The unicast baseline: every user is their own multicast group."""
    return {index: [user_id] for index, user_id in enumerate(user_ids)}


# --------------------------------------------------------------------------
# Grouped playback: one self-contained, picklable task per (interval, group).
#
# In ``channel_draw_mode="grouped"`` every random draw a group's playback
# consumes comes from its own ``(seed, interval, scoped group)`` stream
# (:mod:`repro.sim.rng`), re-derived from the key inside the play function.
# A task therefore carries *data only* — no generator state — which is what
# makes process-shard boundaries draw-exact: a worker produces bit-identical
# results to the serial path, for any worker count and any group order.
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class GroupPlaybackTask:
    """Everything one group's interval playback needs, picklable."""

    group_id: int
    member_ids: Tuple[int, ...]
    representation: Representation
    efficiency: float
    start_s: float
    end_s: float
    #: Cumulative video-sampling distribution of this group (popularity x
    #: group preference), computed against the parent's live popularity.
    cdf: np.ndarray
    #: ``(members, categories)`` preference-weight matrix, rows in
    #: ``member_ids`` order, columns in the catalog's category order.
    weights: np.ndarray
    seed: int
    interval_index: int


def play_group_task(
    task: GroupPlaybackTask,
    catalog: "VideoCatalog",
    watching_model: WatchingDurationModel,
    video_ids: np.ndarray,
    category_indices: np.ndarray,
    swipe_gap_s: float,
    rb_bandwidth_hz: float,
    interval_s: float,
) -> tuple:
    """Play one group's shared multicast stream from its own streams.

    Pure function of the task plus static content state: the video-choice
    and watch-duration draws come from the task's ``(seed, interval,
    group)`` watch stream, so the result is independent of every other
    group and of which process runs it.  Returns ``(usage,
    events_by_member, requests)`` where ``requests`` holds picklable
    ``(video_id, transmitted_s)`` pairs (the parent re-resolves videos for
    edge transcoding).
    """
    rng = grouped_watch_stream(task.seed, task.interval_index, task.group_id)
    member_ids = list(task.member_ids)
    events: Dict[int, List[ViewingEvent]] = {uid: [] for uid in member_ids}
    now = task.start_s
    end_s = task.end_s
    traffic_bits = 0.0
    videos_played = 0
    engagement_seconds = 0.0
    requests: List[tuple] = []
    while now < end_s:
        row = sample_index(task.cdf, rng)
        video = catalog.get(int(video_ids[row]))
        durations = watching_model.sample_watch_durations(
            video, task.weights[:, category_indices[row]], rng
        )
        member_durations: Dict[int, float] = dict(zip(member_ids, durations.tolist()))
        transmitted = max(member_durations.values())
        transmitted = min(transmitted, end_s - now)
        for uid, duration in member_durations.items():
            # Same boundary rule as the shared-generator engines: `swiped`
            # reflects the intended (uncapped) duration, engagement and
            # traffic use the interval-capped time.
            swiped = duration < video.duration_s - 1e-9
            duration = min(duration, end_s - now)
            record = WatchRecord(
                user_id=uid,
                video_id=video.video_id,
                category=video.category,
                watch_duration_s=duration,
                video_duration_s=video.duration_s,
                swiped=swiped,
                timestamp_s=now,
            )
            events[uid].append(ViewingEvent(record=record, start_time_s=now))
            engagement_seconds += duration
        traffic_bits += video.bits_watched(task.representation, transmitted)
        requests.append((video.video_id, transmitted))
        videos_played += 1
        now += transmitted + swipe_gap_s

    blocks = resource_blocks_for_traffic(
        traffic_bits,
        task.efficiency,
        rb_bandwidth_hz=rb_bandwidth_hz,
        interval_s=interval_s,
    )
    usage = GroupIntervalUsage(
        group_id=task.group_id,
        member_ids=member_ids,
        traffic_bits=traffic_bits,
        efficiency_bps_hz=task.efficiency,
        representation_name=task.representation.name,
        resource_blocks=blocks,
        computing_cycles=0.0,  # filled in after edge processing
        videos_played=videos_played,
        engagement_seconds=engagement_seconds,
    )
    return usage, events, requests


class _PlaybackWorkerSlot:
    """Holder for static per-worker playback state, set once by the pool
    initializer.  A class-attribute slot rather than a module global keeps
    the worker-reachable module namespace free of mutable bindings
    (SHARD003); the single assignment happens in a freshly-forked worker.
    """

    state: Optional[tuple] = None


#: Monotonic suffix keeping concurrent simulators' plan segments distinct.
_PLAN_SEQ = itertools.count()


def _init_playback_worker(
    catalog: "VideoCatalog",
    watching_model: WatchingDurationModel,
    video_ids: np.ndarray,
    category_indices: np.ndarray,
    swipe_gap_s: float,
    rb_bandwidth_hz: float,
    interval_s: float,
) -> None:
    _PlaybackWorkerSlot.state = (
        catalog,
        watching_model,
        video_ids,
        category_indices,
        swipe_gap_s,
        rb_bandwidth_hz,
        interval_s,
    )


def _play_group_task_in_worker(task: GroupPlaybackTask) -> tuple:
    state = _PlaybackWorkerSlot.state
    assert state is not None, "playback worker not initialized"
    return play_group_task(task, *state)


class StreamingSimulator:
    """Ground-truth simulator of DT-assisted multicast short-video streaming."""

    def __init__(self, config: Optional[SimulationConfig] = None) -> None:
        self.config = config if config is not None else SimulationConfig()
        config = self.config
        self._rng = legacy_stream(config.seed)
        #: SeedSequence-derived stream registry (see repro.sim.rng).  The
        #: grouped engine draws *everything* from keyed child streams; the
        #: compat/fast engines keep walking the shared generator above so
        #: their identical-seed goldens stay bit-for-bit.
        self._registry = RngRegistry(config.seed)
        self._pool: Optional[ProcessPoolExecutor] = None
        #: Shared-memory interval plan (full-shard engine only, lazy).
        self._plan: Optional[SharedIntervalPlan] = None
        #: Bumped on every add_user/remove_user; shipped in each plan handle
        #: so workers resync their population caches exactly on churn.
        self._population_epoch = 0
        #: Collection op logs returned by shard workers for the current
        #: interval, consumed (replayed onto the twins) by _collect_status.
        self._pending_collection: Optional[Dict[int, list]] = None

        # Content.
        self.catalog = VideoCatalog.generate(
            CatalogConfig(
                num_videos=config.num_videos,
                categories=config.categories,
                zipf_exponent=config.zipf_exponent,
                seed=config.seed,
            )
        )
        self.catalog.popularity.engagement_learning_rate = config.popularity_update_rate

        # Area, mobility and radio.
        self.campus = CampusMap.generate(
            CampusConfig(
                width_m=config.area_width_m,
                height_m=config.area_height_m,
                num_buildings=config.num_buildings,
                seed=config.seed,
            )
        )
        self.base_stations = place_base_stations(
            config.num_base_stations,
            config.area_width_m,
            config.area_height_m,
            BaseStationConfig(
                tx_power_dbm=config.tx_power_dbm,
                resource_block_bandwidth_hz=config.rb_bandwidth_hz,
                num_resource_blocks=config.num_resource_blocks,
            ),
        )
        self._bs_by_id = {bs.bs_id: bs for bs in self.base_stations}

        # Users.
        self.users: Dict[int, UserState] = {}
        num_favoured = int(round(config.favourite_user_fraction * config.num_users))
        for user_id in range(config.num_users):
            favourite = (
                config.favourite_category
                if config.favourite_category is not None and user_id < num_favoured
                else None
            )
            preference = random_preference(
                self._user_setup_rng(user_id),
                categories=config.categories,
                concentration=config.preference_concentration,
                favourite=favourite,
                favourite_boost=config.favourite_boost,
            )
            mobility = GraphTrajectoryMobility(
                self.campus, seed=self._mobility_seed(user_id)
            )
            self.users[user_id] = UserState(
                user_id=user_id,
                mobility=mobility,
                preference_model=PreferenceModel(
                    preference, learning_rate=config.preference_learning_rate
                ),
            )
        self._associate_users(time_s=0.0)

        # Event-driven multi-cell RAN controller (handover mode only; the
        # default boundary mode keeps the pre-controller behaviour exactly).
        self.controller: Optional[RanController] = None
        if config.controller_mode == "handover":
            self.controller = RanController(
                self.base_stations,
                ControllerConfig(
                    handover=HandoverConfig(
                        hysteresis_db=config.handover_hysteresis_db,
                        time_to_trigger_s=config.handover_time_to_trigger_s,
                        sample_period_s=config.handover_sample_period_s,
                        load_bias_db=config.handover_load_bias_db,
                    ),
                    overload_threshold=config.cell_overload_threshold,
                    underload_threshold=config.cell_underload_threshold,
                    rebalance_fraction=config.cell_rebalance_fraction,
                ),
                apps=config.controller_apps,
            )
            for user_id, user in self.users.items():
                self.controller.attach_user(user_id, user.serving_bs_id)

        # Edge fleet.  One server with no placement strategy (the default)
        # behaves bit-for-bit like the historical hard-wired EdgeServer:
        # every group routes to server 0 in grouping order, so the cache
        # walk and cycle accounting are unchanged.
        edge_config = EdgeServerConfig(
            cache_capacity_gbytes=config.cache_capacity_gbytes,
            cpu_capacity_cycles_per_s=config.cpu_capacity_cycles_per_s,
            cycles_per_pixel=config.cycles_per_pixel,
            remote_fetch_penalty_s=config.remote_fetch_penalty_s,
        )
        self.edge_fleet = EdgeFleet(
            self.catalog, [edge_config] * config.edge_servers
        )
        self.edge_fleet.warm_caches()
        self.placement: Optional[PlacementManager] = None
        if config.placement_strategy is not None:
            capacity = ServerCapacity(
                cpu_cycles_per_interval=(
                    config.cpu_capacity_cycles_per_s * config.interval_s
                ),
                cache_bytes=config.cache_capacity_gbytes * 1e9,
            )
            self.placement = PlacementManager(
                [capacity] * config.edge_servers,
                PlacementConfig(
                    strategy=config.placement_strategy,
                    horizon_intervals=config.placement_horizon,
                    mispredict_threshold=config.placement_mispredict_threshold,
                    reprovision=config.placement_reprovision,
                ),
            )

        # Digital twins.  The serving-cell attribute is only collected when
        # the RAN controller is active, so boundary-mode twins keep their
        # pre-controller contents (and RNG draws) bit-for-bit.
        attributes = standard_attributes(num_categories=len(config.categories))
        if self.controller is not None:
            attributes[SERVING_CELL] = serving_cell_attribute()
        self.twins = DigitalTwinManager(attributes=attributes)
        self.twins.register_users(self.users.keys())
        self.collector = StatusCollector(
            policy=config.collection_policy,
            seed=config.seed + 7,
            interleaved_snr_draws=config.channel_draw_mode == "compat",
        )

        # Behaviour and bookkeeping.
        self.watching_model = WatchingDurationModel()
        self.clock = SimulationClock(interval_s=config.interval_s)
        self.metrics = MetricRecorder()
        self.history: List[IntervalResult] = []

    # ------------------------------------------------------------------ edge
    @property
    def edge(self) -> EdgeServer:
        """The first edge server — the whole fleet when ``edge_servers=1``.

        Kept for the single-server consumers (benchmarks, examples) that
        predate the fleet; multi-server runs should read
        :attr:`edge_fleet` instead.
        """
        return self.edge_fleet.servers[0]

    # ----------------------------------------------------------- rng streams
    @property
    def _grouped(self) -> bool:
        return self.config.channel_draw_mode == "grouped"

    def _user_setup_rng(self, user_id: int) -> np.random.Generator:
        """Stream for one user's setup draws (preference vector).

        Grouped mode keys it per user so population churn never perturbs
        another user's draws; the compat/fast modes keep consuming the
        shared generator in registration order (their goldens pin it).
        """
        if self._grouped:
            return self._registry.preference_stream(user_id)
        return self._rng

    def _mobility_seed(self, user_id: int):
        """Seed of one user's trajectory stream.

        Grouped mode derives ``SeedSequence((seed, user_id))`` via the
        registry, which is collision-free across (seed, user) pairs.  The
        legacy ``seed * 1000 + user_id`` arithmetic — under which user 1000
        at seed ``s`` replays user 0's walk at seed ``s + 1`` — is kept
        *only* as the compat/fast shim, because the identical-seed goldens
        of those modes pin the old trajectories.
        """
        if self._grouped:
            return self._registry.mobility_seed(user_id)
        return self.config.seed * 1000 + user_id

    # ------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Release the worker pool and shared-memory plan segments.

        Idempotent: safe to call any number of times, including when the
        pool was never started, and again after an exception already tore
        part of the state down.
        """
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        if self._plan is not None:
            self._plan.close()
            self._plan = None

    def __enter__(self) -> "StreamingSimulator":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass

    def _playback_pool(self) -> ProcessPoolExecutor:
        """The lazily-started process pool the interval is sharded over.

        ``shard_stages="playback"`` workers are initialised once with the
        static content state (catalog, watching model, per-video sampling
        arrays); everything that changes between intervals travels inside
        each :class:`GroupPlaybackTask`.  ``shard_stages="full"`` workers
        instead boot a persistent :class:`repro.sim.shard.ShardWorkerRuntime`
        — the population state (mobility, collector, registry streams) lives
        in the worker and tasks shrink to ``(plan handle, group index)``.
        The pool survives across intervals and is torn down by :meth:`close`.
        """
        if self._pool is None:
            methods = multiprocessing.get_all_start_methods()
            context = multiprocessing.get_context(
                "fork" if "fork" in methods else None
            )
            if self.config.shard_stages == "full":
                self._pool = ProcessPoolExecutor(
                    max_workers=self.config.playback_workers,
                    mp_context=context,
                    initializer=_init_shard_worker,
                    initargs=(self._build_shard_static(),),
                )
            else:
                video_ids, _, category_indices, _ = self.catalog.sampling_arrays()
                self._pool = ProcessPoolExecutor(
                    max_workers=self.config.playback_workers,
                    mp_context=context,
                    initializer=_init_playback_worker,
                    initargs=(
                        self.catalog,
                        self.watching_model,
                        video_ids,
                        category_indices,
                        self.config.swipe_gap_s,
                        self.config.rb_bandwidth_hz,
                        self.config.interval_s,
                    ),
                )
        return self._pool

    def _build_shard_static(self) -> ShardStatic:
        """Static per-worker state for the full-shard runtime (pool start)."""
        config = self.config
        video_ids, _, category_indices, sampling_categories = (
            self.catalog.sampling_arrays()
        )
        config_index = {c: i for i, c in enumerate(config.categories)}
        sampling_perm = np.array(
            [config_index[c] for c in sampling_categories], dtype=np.intp
        )
        return ShardStatic(
            seed=config.seed,
            catalog=self.catalog,
            watching_model=self.watching_model,
            video_ids=video_ids,
            category_indices=category_indices,
            sampling_perm=sampling_perm,
            swipe_gap_s=config.swipe_gap_s,
            rb_bandwidth_hz=config.rb_bandwidth_hz,
            interval_s=config.interval_s,
            stream_bandwidth_hz=config.stream_bandwidth_hz,
            implementation_loss=config.implementation_loss,
            channel_sample_period_s=config.channel_sample_period_s,
            campus=self.campus,
            base_stations=self.base_stations,
            attributes=dict(self.twins.attributes),
            collection_policy=self.collector.policy,
            report_cells=self.controller is not None,
        )

    def _interval_plan(self) -> SharedIntervalPlan:
        if self._plan is None:
            self._plan = SharedIntervalPlan(
                token=f"{os.getpid()}-{next(_PLAN_SEQ)}",
                use_shared_memory=self.config.shared_memory_buffers,
            )
        return self._plan

    # ------------------------------------------------------------ population
    def user_ids(self) -> List[int]:
        return sorted(self.users.keys())

    def add_user(
        self,
        favourite: Optional[str] = None,
        user_id: Optional[int] = None,
    ) -> int:
        """Add a user mid-simulation (churn) and register their digital twin.

        Returns the new user's id.  The user starts at a random campus node
        and is associated with a base station at the current simulation time.
        """
        config = self.config
        if user_id is None:
            user_id = max(self.users.keys(), default=-1) + 1
        if user_id in self.users:
            raise ValueError(f"user {user_id} already exists")
        if favourite is not None and favourite not in config.categories:
            raise ValueError(f"favourite {favourite!r} not in configured categories")
        preference = random_preference(
            self._user_setup_rng(user_id),
            categories=config.categories,
            concentration=config.preference_concentration,
            favourite=favourite,
            favourite_boost=config.favourite_boost,
        )
        mobility = GraphTrajectoryMobility(self.campus, seed=self._mobility_seed(user_id))
        self.users[user_id] = UserState(
            user_id=user_id,
            mobility=mobility,
            preference_model=PreferenceModel(
                preference, learning_rate=config.preference_learning_rate
            ),
        )
        self.twins.register_user(user_id)
        self._population_epoch += 1
        position = mobility.position(self.clock.now_s)
        best = max(self.base_stations, key=lambda bs: bs.mean_snr_db(position))
        self.users[user_id].serving_bs_id = best.bs_id
        if self.controller is not None:
            self.controller.attach_user(user_id, best.bs_id)
        return user_id

    def remove_user(self, user_id: int, keep_twin: bool = True) -> None:
        """Remove a user (departure).  The twin is kept by default for audit."""
        if user_id not in self.users:
            raise KeyError(f"unknown user {user_id}")
        del self.users[user_id]
        self._population_epoch += 1
        if self.controller is not None:
            self.controller.detach_user(user_id)
        if not keep_twin:
            self.twins.remove_user(user_id)

    def _associate_users(self, time_s: float) -> None:
        """Re-associate every user with their strongest base station.

        One mean-SNR evaluation per base station over the whole population
        (vectorized), instead of one Python call per (user, base station).
        """
        users = list(self.users.values())
        if not users:
            return
        positions = np.array([user.mobility.position(time_s) for user in users])
        # (users, base stations); argmax keeps the first-best station,
        # matching max() over the base-station list.
        snr = np.stack(
            [bs.mean_snr_db_batch(positions) for bs in self.base_stations], axis=1
        )
        for user, bs_index in zip(users, np.argmax(snr, axis=1)):
            user.serving_bs_id = self.base_stations[int(bs_index)].bs_id

    def _base_station(self, bs_id: int) -> BaseStation:
        # Dict lookup (built once at construction): this runs once per user
        # per interval, so a linear scan over base stations adds up.
        try:
            return self._bs_by_id[bs_id]
        except KeyError:
            raise KeyError(f"unknown base station {bs_id}") from None

    # ------------------------------------------------------------ radio side
    def sample_member_snrs(
        self, member_ids: Sequence[int], start_s: float, end_s: float
    ) -> Dict[int, np.ndarray]:
        """Sample each member's SNR trace over ``[start_s, end_s)``.

        Vectorized: one batched position query and one batched SNR sampling
        call per member (instead of one Python call per channel sample).
        The batched sampler consumes the shared generator in the exact
        per-sample order of the scalar path, so results are identical for
        identical seeds.
        """
        times = time_grid(start_s, end_s, self.config.channel_sample_period_s)
        interleaved = self.config.channel_draw_mode == "compat"
        snrs: Dict[int, np.ndarray] = {}
        for user_id in member_ids:
            user = self.users[user_id]
            bs = self._base_station(user.serving_bs_id)
            positions = user.mobility.positions(times)
            snrs[user_id] = bs.sample_snr_db_batch(
                positions, rng=self._rng, interleaved=interleaved
            )
        return snrs

    def group_link_state(
        self, member_ids: Sequence[int], start_s: float, end_s: float
    ) -> tuple:
        """``(efficiency, representation, mean_snr_by_user)`` for a group."""
        snr_traces = self.sample_member_snrs(member_ids, start_s, end_s)
        mean_snrs = {uid: float(trace.mean()) for uid, trace in snr_traces.items()}
        efficiency = group_spectral_efficiency(
            list(mean_snrs.values()), implementation_loss=self.config.implementation_loss
        )
        ladder = self.catalog.reference_ladder()
        representation = ladder.best_fitting(efficiency * self.config.stream_bandwidth_hz)
        return efficiency, representation, mean_snrs

    def _interval_link_states(
        self, grouping: Mapping[int, Sequence[int]], start_s: float, end_s: float
    ) -> Dict[int, tuple]:
        """Stage 1 of the batched interval engine: every group's link state at once.

        One batched :meth:`~repro.mobility.trajectory.MobilityModel.positions`
        query per user and one ``sample_snr_db_batch`` tensor per base
        station covering *all* the users it serves this interval (flattened
        over ``(user, time)``), sliced back per user and reduced per group —
        instead of one generator call per group member.  Only used in
        ``channel_draw_mode="fast"``: the per-station whole-array draws walk
        the shared generator differently from the compat (scalar-order)
        stream, with identical channel statistics.

        Returns ``{group_id: (efficiency, representation, mean_snr_by_user)}``
        exactly as :meth:`group_link_state` would per group.
        """
        times = time_grid(start_s, end_s, self.config.channel_sample_period_s)
        member_order = [uid for member_ids in grouping.values() for uid in member_ids]
        positions = {
            uid: self.users[uid].mobility.positions(times) for uid in member_order
        }
        by_station: Dict[int, List[int]] = {}
        for uid in member_order:
            by_station.setdefault(self.users[uid].serving_bs_id, []).append(uid)
        mean_snr: Dict[int, float] = {}
        for bs in self.base_stations:
            served = by_station.get(bs.bs_id)
            if not served:
                continue
            traces = bs.sample_snr_traces(
                np.stack([positions[uid] for uid in served], axis=0), rng=self._rng
            )
            for row, uid in enumerate(served):
                mean_snr[uid] = float(traces[row].mean())
        ladder = self.catalog.reference_ladder()
        link_states: Dict[int, tuple] = {}
        for group_id, member_ids in grouping.items():
            mean_snrs = {uid: mean_snr[uid] for uid in member_ids}
            efficiency = group_spectral_efficiency(
                list(mean_snrs.values()),
                implementation_loss=self.config.implementation_loss,
            )
            representation = ladder.best_fitting(
                efficiency * self.config.stream_bandwidth_hz
            )
            link_states[group_id] = (efficiency, representation, mean_snrs)
        return link_states

    def _grouped_link_states(
        self,
        grouping: Mapping[int, Sequence[int]],
        start_s: float,
        end_s: float,
        interval_index: int,
    ) -> Dict[int, tuple]:
        """Stage 1 of the grouped engine: per-group channel streams.

        Like :meth:`_interval_link_states` this batches position queries per
        user and SNR draws per (group, station) block, but every group's
        fading comes from its own ``(seed, interval, scoped group)`` channel
        stream instead of the shared generator.  Groups are walked in sorted
        scoped-id order for a deterministic result layout, yet because no
        stream is shared the values themselves are independent of that
        order — the property the sharded playback (and any future stage-1
        parallelism) rests on.
        """
        times = time_grid(start_s, end_s, self.config.channel_sample_period_s)
        member_order = [uid for member_ids in grouping.values() for uid in member_ids]
        positions = {
            uid: self.users[uid].mobility.positions(times) for uid in member_order
        }
        ladder = self.catalog.reference_ladder()
        link_states: Dict[int, tuple] = {}
        for group_id in sorted(grouping):
            member_ids = list(grouping[group_id])
            rng = self._registry.channel_stream(interval_index, group_id)
            by_station: Dict[int, List[int]] = {}
            for uid in member_ids:
                by_station.setdefault(self.users[uid].serving_bs_id, []).append(uid)
            mean_by_user: Dict[int, float] = {}
            # Station order is sorted so the group's stream walk is a pure
            # function of (members, associations), never of dict history.
            for bs_id in sorted(by_station):
                served = by_station[bs_id]
                traces = self._base_station(bs_id).sample_snr_traces(
                    np.stack([positions[uid] for uid in served], axis=0), rng=rng
                )
                for row, uid in enumerate(served):
                    mean_by_user[uid] = float(traces[row].mean())
            mean_snrs = {uid: mean_by_user[uid] for uid in member_ids}
            efficiency = group_spectral_efficiency(
                list(mean_snrs.values()),
                implementation_loss=self.config.implementation_loss,
            )
            representation = ladder.best_fitting(
                efficiency * self.config.stream_bandwidth_hz
            )
            link_states[group_id] = (efficiency, representation, mean_snrs)
        return link_states

    # -------------------------------------------------------------- content
    def _group_preference(self, member_ids: Sequence[int]) -> PreferenceVector:
        """Mean preference of the group's members (ground-truth preferences)."""
        categories = tuple(self.config.categories)
        stacks = np.vstack(
            [self.users[uid].preference.as_array(categories) for uid in member_ids]
        )
        mean = stacks.mean(axis=0)
        return PreferenceVector(dict(zip(categories, mean)), categories=categories)

    def _video_sampling_probabilities(self, group_preference: PreferenceVector) -> np.ndarray:
        _, pop, category_indices, categories = self.catalog.sampling_arrays()
        # One weight lookup per *category*, gathered out to per-video scores.
        weights = np.array([group_preference.weight(category) for category in categories])
        pref = weights[category_indices]
        if pref.sum() > 0:
            pref = pref / pref.sum()
        w = self.config.recommendation_popularity_weight
        mixture = w * pop + (1.0 - w) * pref
        return mixture / mixture.sum()

    # ------------------------------------------------------------- intervals
    def preview_scoped_grouping(
        self, grouping: Mapping[int, Sequence[int]]
    ) -> tuple:
        """``(scoped_grouping, cell_of_group)`` the next interval will play.

        In handover mode this applies the controller's *current* associations
        to ``grouping`` without mutating controller state (no scope events,
        no footprint updates), so the prediction layer can target exactly the
        per-cell multicast channels :meth:`run_interval` is about to create.
        Boundary mode returns the grouping unchanged with an empty cell map.
        """
        if self.controller is None:
            return {gid: list(members) for gid, members in grouping.items()}, {}
        start_s, _ = self.clock.interval_bounds(self.clock.current_interval)
        return self.controller.preview_scope(
            grouping, time_s=start_s, mean_snr_db=self._controller_mean_snr(start_s)
        )

    def run_interval(self, grouping: Mapping[int, Sequence[int]]) -> IntervalResult:
        """Play out the next reservation interval under ``grouping``.

        ``grouping`` maps group id to the member user ids; every simulated
        user must belong to exactly one group.
        """
        self._validate_grouping(grouping)
        interval_index = self.clock.current_interval
        start_s, end_s = self.clock.interval_bounds(interval_index)

        result = IntervalResult(interval_index=interval_index, start_s=start_s, end_s=end_s)
        if self.controller is None:
            # Boundary mode: strongest-cell argmax at every interval start,
            # groups played exactly as given (the pre-controller behaviour).
            self._associate_users(start_s)
            played_grouping: Mapping[int, Sequence[int]] = grouping
        else:
            # Handover mode: association evolves only through handover
            # events (applied at the end of the previous interval); each
            # logical group is scoped per serving cell, because a multicast
            # channel -- and the worst-member rule -- spans one cell only.
            scoped, cell_of_group, scope_events = self.controller.scope_grouping(
                grouping,
                time_s=start_s,
                mean_snr_db=self._controller_mean_snr(start_s),
            )
            played_grouping = scoped
            result.cell_of_group = cell_of_group
            result.group_scope_events = scope_events

        events_by_user: Dict[int, List[ViewingEvent]] = {uid: [] for uid in self.users}
        transcode_requests: Dict[int, List[tuple]] = {}

        # Predictive placement packs the interval's groups onto the fleet
        # *before* playback (reservation semantics: the assignment is made
        # from forecast demand, not observed demand).  Placement never
        # touches the simulator's random streams, so playback draws are
        # identical with or without it.
        assignment: Optional[Dict[int, int]] = None
        if self.placement is not None:
            assignment = self.placement.begin_interval(
                interval_index, list(played_grouping.keys()), time_s=start_s
            )

        # Grouped draw mode runs the per-group-stream engine (serial or
        # process-sharded, identical results either way).  Fast mode runs
        # the staged shared-generator engine: one SNR tensor per base
        # station for the whole interval instead of per-member sampling
        # inside the group loop.  Compat mode keeps the sequential per-group
        # path so the scalar-era generator stream is preserved bit-for-bit.
        if self._grouped:
            self._run_grouped_playback(
                played_grouping,
                start_s,
                end_s,
                interval_index,
                result,
                events_by_user,
                transcode_requests,
            )
        else:
            playback_started = time.perf_counter()
            stage1_s = 0.0
            if self.config.channel_draw_mode == "fast":
                link_states = self._interval_link_states(
                    played_grouping, start_s, end_s
                )
                stage1_s = time.perf_counter() - playback_started
            else:
                link_states = None

            for group_id, member_ids in played_grouping.items():
                member_ids = list(member_ids)
                if link_states is not None:
                    efficiency, representation, mean_snrs = link_states[group_id]
                else:
                    stage_started = time.perf_counter()
                    efficiency, representation, mean_snrs = self.group_link_state(
                        member_ids, start_s, end_s
                    )
                    stage1_s += time.perf_counter() - stage_started
                result.mean_snr_by_user.update(mean_snrs)
                usage = self._play_group_stream(
                    group_id,
                    member_ids,
                    representation,
                    efficiency,
                    start_s,
                    end_s,
                    events_by_user,
                    transcode_requests,
                )
                result.usage_by_group[group_id] = usage
            result.timing["stage1_s"] = stage1_s
            result.timing["playback_s"] = (
                time.perf_counter() - playback_started - stage1_s
            )

        # Edge transcoding for all groups of this interval, routed over the
        # fleet (all groups on server 0 when placement is disabled — the
        # historical single-server behaviour).
        compute_usage = self.edge_fleet.process_interval(
            interval_index, transcode_requests, assignment=assignment, time_s=start_s
        )
        for group_id, cycles in compute_usage.cycles_by_group.items():
            result.usage_by_group[group_id].computing_cycles = float(cycles)
        result.server_of_group = dict(compute_usage.server_of_group)
        result.edge_cache_misses = compute_usage.cache_misses
        cycles_by_server = compute_usage.cycles_by_server()
        result.edge_utilization_by_server = {
            server: cycles
            / (self.config.cpu_capacity_cycles_per_s * self.config.interval_s)
            for server, cycles in cycles_by_server.items()
        }
        if self.placement is not None:
            result.placement_events = self.placement.observe_interval(
                interval_index,
                compute_usage.cycles_by_group,
                compute_usage.cache_bytes_by_group,
                time_s=end_s,
            )

        # Digital-twin collection and behavioural updates.  In the
        # full-shard engine collection already ran in the workers;
        # _collect_status then just replays their op logs, and the
        # worker-side seconds were accumulated at merge time.
        collect_started = time.perf_counter()
        self._collect_status(events_by_user, start_s, end_s)
        result.timing["collection_s"] = result.timing.get("collection_s", 0.0) + (
            time.perf_counter() - collect_started
        )
        self._update_preferences(events_by_user)
        self._update_popularity(events_by_user)

        result.events_by_user = events_by_user

        # RAN-controller end-of-interval phase: handover evaluation on
        # mid-interval samples (events applied for the *next* interval),
        # per-cell load reports and budget rebalancing.
        if self.controller is not None:
            self._run_controller_phase(result, start_s, end_s)

        self.history.append(result)
        self.metrics.record("radio.total_resource_blocks", result.total_resource_blocks)
        self.metrics.record("radio.outage_groups", float(len(result.outage_groups)))
        self.metrics.record("compute.total_cycles", result.total_computing_cycles)
        self.metrics.record("traffic.total_bits", result.total_traffic_bits)
        # Edge/compute accounting: the per-group cycles were always computed
        # but never surfaced as edge metrics before the fleet existed.
        self.metrics.record("edge.total_cycles", compute_usage.total_cycles)
        self.metrics.record(
            "edge.utilization",
            compute_usage.total_cycles
            / (
                self.edge_fleet.total_capacity_cycles_per_s()
                * self.config.interval_s
            ),
        )
        self.metrics.record("edge.cache_misses", float(compute_usage.cache_misses))
        if self.edge_fleet.num_servers > 1:
            cpu_utils = [
                result.edge_utilization_by_server.get(server, 0.0)
                for server in range(self.edge_fleet.num_servers)
            ]
            cache_utils = [
                self.edge_fleet.cache_utilization_by_server()[server]
                for server in range(self.edge_fleet.num_servers)
            ]
            result.edge_fragmentation = fragmentation_index(cpu_utils, cache_utils)
            self.metrics.record("edge.fragmentation", result.edge_fragmentation)
        if self.placement is not None:
            self.metrics.record(
                "placement.reprovision_events", float(len(result.placement_events))
            )
        self.clock.advance_interval()
        return result

    def _run_grouped_playback(
        self,
        grouping: Mapping[int, Sequence[int]],
        start_s: float,
        end_s: float,
        interval_index: int,
        result: IntervalResult,
        events_by_user: Dict[int, List[ViewingEvent]],
        transcode_requests: Dict[int, List[tuple]],
    ) -> None:
        """Play one interval with per-group streams, optionally sharded.

        Stage 1 (:meth:`_grouped_link_states`) runs once in the parent —
        mobility models are stateful and stay here.  Stage 2 builds one
        picklable :class:`GroupPlaybackTask` per scoped group and maps
        :func:`play_group_task` over them, either in-process
        (``playback_workers == 1``) or over the process pool.  Outcomes are
        merged in sorted scoped-group order, so collector appends, usage
        totals and transcode requests are assembled identically for every
        worker count.

        With ``shard_stages="full"`` and more than one worker the whole
        interval — stage 1 included — is delegated to the shard runtime
        instead (see :meth:`_run_full_shard_interval`); results are
        bit-identical between the two paths.
        """
        if (
            self.config.shard_stages == "full"
            and self.config.playback_workers > 1
            and len(grouping) > 1
        ):
            self._run_full_shard_interval(
                grouping,
                start_s,
                end_s,
                interval_index,
                result,
                events_by_user,
                transcode_requests,
            )
            return
        stage_started = time.perf_counter()
        link_states = self._grouped_link_states(
            grouping, start_s, end_s, interval_index
        )
        playback_started = time.perf_counter()
        result.timing["stage1_s"] = playback_started - stage_started
        video_ids, _, category_indices, categories = self.catalog.sampling_arrays()
        tasks: List[GroupPlaybackTask] = []
        for group_id in sorted(grouping):
            member_ids = tuple(grouping[group_id])
            efficiency, representation, _ = link_states[group_id]
            group_preference = self._group_preference(member_ids)
            cdf = sampling_cdf(self._video_sampling_probabilities(group_preference))
            weights = np.vstack(
                [self.users[uid].preference.as_array(categories) for uid in member_ids]
            )
            tasks.append(
                GroupPlaybackTask(
                    group_id=group_id,
                    member_ids=member_ids,
                    representation=representation,
                    efficiency=efficiency,
                    start_s=start_s,
                    end_s=end_s,
                    cdf=cdf,
                    weights=weights,
                    seed=self.config.seed,
                    interval_index=interval_index,
                )
            )

        if self.config.playback_workers > 1 and len(tasks) > 1:
            chunksize = max(1, len(tasks) // (self.config.playback_workers * 4))
            outcomes = list(
                self._playback_pool().map(
                    _play_group_task_in_worker, tasks, chunksize=chunksize
                )
            )
        else:
            outcomes = [
                play_group_task(
                    task,
                    self.catalog,
                    self.watching_model,
                    video_ids,
                    category_indices,
                    self.config.swipe_gap_s,
                    self.config.rb_bandwidth_hz,
                    self.config.interval_s,
                )
                for task in tasks
            ]

        for task, (usage, events, requests) in zip(tasks, outcomes):
            result.mean_snr_by_user.update(link_states[task.group_id][2])
            result.usage_by_group[task.group_id] = usage
            for uid, user_events in events.items():
                events_by_user[uid].extend(user_events)
            transcode_requests[task.group_id] = [
                (self.catalog.get(video_id), task.representation, transmitted)
                for video_id, transmitted in requests
            ]
        result.timing["playback_s"] = time.perf_counter() - playback_started

    def _run_full_shard_interval(
        self,
        grouping: Mapping[int, Sequence[int]],
        start_s: float,
        end_s: float,
        interval_index: int,
        result: IntervalResult,
        events_by_user: Dict[int, List[ViewingEvent]],
        transcode_requests: Dict[int, List[tuple]],
    ) -> None:
        """Run every stage of one interval on the shard worker pool.

        The parent's only jobs are publishing the interval plan (member
        layout, per-member preference weights against the live preferences,
        per-group sampling CDFs against the live popularity), mapping
        ``(plan handle, group index)`` tasks over the pool, and merging the
        outcomes in sorted scoped-group order — the same order the serial
        path uses, so the assembled result is bit-identical.  Twin state
        stays parent-side: workers return collection op logs that
        :meth:`_collect_status` replays.
        """
        pool = self._playback_pool()
        plan_started = time.perf_counter()
        categories = tuple(self.config.categories)
        sorted_group_ids = sorted(grouping)
        members = [list(grouping[gid]) for gid in sorted_group_ids]
        offsets = np.zeros(len(members) + 1, dtype=np.int64)
        np.cumsum([len(m) for m in members], out=offsets[1:])
        user_ids = np.array(
            [uid for member_ids in members for uid in member_ids], dtype=np.int64
        )
        serving = np.array(
            [
                self.users[uid].serving_bs_id
                for member_ids in members
                for uid in member_ids
            ],
            dtype=np.int64,
        )
        weights = np.vstack(
            [
                self.users[uid].preference.as_array(categories)
                for member_ids in members
                for uid in member_ids
            ]
        )
        sampling_video_ids, _, _, _ = self.catalog.sampling_arrays()
        cdf = np.empty((len(members), sampling_video_ids.shape[0]))
        for row, member_ids in enumerate(members):
            cdf[row] = sampling_cdf(
                self._video_sampling_probabilities(
                    self._group_preference(member_ids)
                )
            )
        handle = self._interval_plan().publish(
            epoch=self._population_epoch,
            interval_index=interval_index,
            start_s=start_s,
            end_s=end_s,
            offsets=offsets,
            group_ids=np.array(sorted_group_ids, dtype=np.int64),
            user_ids=user_ids,
            serving=serving,
            weights=weights,
            cdf=cdf,
        )
        plan_s = time.perf_counter() - plan_started

        chunksize = max(
            1, len(sorted_group_ids) // (self.config.playback_workers * 4)
        )
        outcomes = list(
            pool.map(
                _run_shard_task,
                [(handle, index) for index in range(len(sorted_group_ids))],
                chunksize=chunksize,
            )
        )

        merge_started = time.perf_counter()
        stage1_s = playback_s = collection_s = 0.0
        pending: Dict[int, list] = {}
        for member_ids, outcome in zip(members, outcomes):
            (
                group_id,
                usage,
                events,
                requests,
                representation,
                mean_snrs,
                collection,
                stage_times,
            ) = outcome
            result.usage_by_group[group_id] = usage
            for uid, user_events in events.items():
                events_by_user[uid].extend(user_events)
            transcode_requests[group_id] = [
                (self.catalog.get(video_id), representation, transmitted)
                for video_id, transmitted in requests
            ]
            if mean_snrs is not None:  # inline plan: SNR rode the outcome
                result.mean_snr_by_user.update(zip(member_ids, mean_snrs))
            pending.update(collection)
            stage1_s += stage_times[0]
            playback_s += stage_times[1]
            collection_s += stage_times[2]
        if handle.names is not None:
            snr = self._interval_plan().mean_snr(handle)
            result.mean_snr_by_user.update(
                (int(uid), float(value)) for uid, value in zip(user_ids, snr)
            )
        self._pending_collection = pending
        result.timing["stage1_s"] = stage1_s
        result.timing["playback_s"] = (
            plan_s + playback_s + (time.perf_counter() - merge_started)
        )
        result.timing["collection_s"] = collection_s

    def _controller_mean_snr(self, time_s: float):
        """Lazy per-user serving-cell mean-SNR lookup for controller apps.

        Returns ``user_ids -> {user_id: mean SNR dB towards the serving
        cell at time_s}``.  Deterministic (mean SNR draws no randomness),
        so the preview and playback scoping paths agree exactly.
        """
        def lookup(user_ids) -> Dict[int, float]:
            controller = self.controller
            by_id = {bs.bs_id: bs for bs in self.base_stations}
            return {
                uid: float(
                    by_id[controller.serving_cell[uid]].mean_snr_db(
                        self.users[uid].mobility.position(time_s)
                    )
                )
                for uid in user_ids
            }

        return lookup

    def _run_controller_phase(
        self, result: IntervalResult, start_s: float, end_s: float
    ) -> None:
        """Handover + load-balancing bookkeeping for one finished interval."""
        assert self.controller is not None
        controller = self.controller

        # Handover: one batched position query per user over the interval's
        # measurement grid, one mean-SNR tensor, no randomness consumed.
        user_ids = self.user_ids()
        times = controller.measurement_times(start_s, end_s)
        if user_ids and times.size:
            positions = np.stack(
                [self.users[uid].mobility.positions(times) for uid in user_ids], axis=1
            )
        else:
            positions = np.zeros((times.size, len(user_ids), 2))
        result.handover_events = controller.observe_interval(
            times, positions, user_ids, end_s
        )
        for user_id in user_ids:
            self.users[user_id].serving_bs_id = controller.serving_cell[user_id]

        # Per-cell load accounting and budget rebalancing.
        outage_by_cell = {
            cell_id: len(groups) for cell_id, groups in result.outage_groups_by_cell.items()
        }
        load_events, utilization = controller.finish_interval(
            result.rb_demand_by_cell, outage_by_cell, time_s=end_s
        )
        result.cell_load_events = load_events
        result.rb_utilization_by_cell = utilization
        # Pre-rebalance snapshot, so utilization == demand / budget holds on
        # this result; the rebalanced budgets (in force next interval) are
        # available via controller.rb_budget_by_cell().
        result.rb_budget_by_cell = {e.cell_id: e.budget_blocks for e in load_events}

        # Scope events fired after the interval-start scoping (mid-interval
        # re-scopes on handover) and the interval's app events.
        result.group_scope_events.extend(controller.drain_scope_events())
        result.app_events = controller.drain_app_events()

        splits = sum(1 for e in result.group_scope_events if e.kind == "split")
        merges = sum(1 for e in result.group_scope_events if e.kind == "merge")
        moves = sum(1 for e in result.group_scope_events if e.kind == "move")
        self.metrics.record("ran.handovers", float(result.num_handovers))
        self.metrics.record("ran.group_splits", float(splits))
        self.metrics.record("ran.group_merges", float(merges))
        self.metrics.record("ran.group_moves", float(moves))
        self.metrics.record(
            "ran.cells_overloaded", float(sum(1 for e in load_events if e.overloaded))
        )
        self.metrics.record("ran.app_events", float(len(result.app_events)))
        for event in load_events:
            if np.isfinite(event.utilization):
                self.metrics.record(
                    f"ran.cell{event.cell_id}.rb_utilization", event.utilization
                )
            self.metrics.record(
                f"ran.cell{event.cell_id}.outage_groups", float(event.outage_groups)
            )

    def run(
        self,
        grouping_fn: Callable[[int, "StreamingSimulator"], Mapping[int, Sequence[int]]],
        num_intervals: Optional[int] = None,
    ) -> List[IntervalResult]:
        """Run several intervals, asking ``grouping_fn`` for each interval's grouping."""
        count = num_intervals if num_intervals is not None else self.config.num_intervals
        if count <= 0:
            raise ValueError("num_intervals must be positive")
        results = []
        for _ in range(count):
            grouping = grouping_fn(self.clock.current_interval, self)
            results.append(self.run_interval(grouping))
        return results

    # ------------------------------------------------------------ internals
    def _validate_grouping(self, grouping: Mapping[int, Sequence[int]]) -> None:
        if not grouping:
            raise ValueError("grouping must contain at least one group")
        seen: set = set()
        for group_id, member_ids in grouping.items():
            if not len(member_ids):
                raise ValueError(f"group {group_id} has no members")
            for uid in member_ids:
                if uid not in self.users:
                    raise ValueError(f"grouping references unknown user {uid}")
                if uid in seen:
                    raise ValueError(f"user {uid} appears in more than one group")
                seen.add(uid)
        missing = set(self.users) - seen
        if missing:
            raise ValueError(f"grouping does not cover users {sorted(missing)}")

    def _play_group_stream(
        self,
        group_id: int,
        member_ids: List[int],
        representation: Representation,
        efficiency: float,
        start_s: float,
        end_s: float,
        events_by_user: Dict[int, List[ViewingEvent]],
        transcode_requests: Dict[int, List[tuple]],
    ) -> GroupIntervalUsage:
        """Play the shared multicast stream of one group for one interval.

        In ``channel_draw_mode="fast"`` the per-member watch-duration
        sampling is batched: one preference-weight matrix per group per
        interval and one whole-array ``random``/``beta`` draw per video
        (:meth:`~repro.behavior.watching.WatchingDurationModel.sample_watch_durations`)
        instead of two scalar generator calls per member.  Compat mode keeps
        the interleaved scalar draws so identical seeds reproduce the
        sequential engine bit-for-bit.
        """
        group_preference = self._group_preference(member_ids)
        probabilities = self._video_sampling_probabilities(group_preference)
        video_ids, _, category_indices, categories = self.catalog.sampling_arrays()
        # One cumulative distribution per group instead of re-validating the
        # probability vector per draw; each draw consumes exactly one
        # uniform, like Generator.choice(p=...) does.
        cdf = sampling_cdf(probabilities)
        batched = self.config.channel_draw_mode == "fast"
        if batched:
            # Preferences only change between intervals, so the per-member
            # weight of every category can be gathered once per group.
            weight_matrix = np.vstack(
                [self.users[uid].preference.as_array(categories) for uid in member_ids]
            )

        now = start_s
        traffic_bits = 0.0
        videos_played = 0
        engagement_seconds = 0.0
        requests: List[tuple] = []
        while now < end_s:
            row = sample_index(cdf, self._rng)
            video = self.catalog.get(int(video_ids[row]))
            if batched:
                durations = self.watching_model.sample_watch_durations(
                    video, weight_matrix[:, category_indices[row]], self._rng
                )
                member_durations: Dict[int, float] = dict(
                    zip(member_ids, durations.tolist())
                )
            else:
                member_durations = {}
                for uid in member_ids:
                    member_durations[uid] = self.watching_model.sample_watch_duration(
                        video, self.users[uid].preference, self._rng
                    )
            transmitted = max(member_durations.values())
            transmitted = min(transmitted, end_s - now)
            for uid, duration in member_durations.items():
                # `swiped` reflects the user's *intended* (uncapped) duration:
                # a watch cut short only by the interval boundary is not a
                # swipe.  Engagement and traffic still use the capped time.
                swiped = duration < video.duration_s - 1e-9
                duration = min(duration, end_s - now)
                record = WatchRecord(
                    user_id=uid,
                    video_id=video.video_id,
                    category=video.category,
                    watch_duration_s=duration,
                    video_duration_s=video.duration_s,
                    swiped=swiped,
                    timestamp_s=now,
                )
                events_by_user[uid].append(ViewingEvent(record=record, start_time_s=now))
                engagement_seconds += duration
            traffic_bits += video.bits_watched(representation, transmitted)
            requests.append((video, representation, transmitted))
            videos_played += 1
            now += transmitted + self.config.swipe_gap_s

        transcode_requests[group_id] = requests
        blocks = resource_blocks_for_traffic(
            traffic_bits,
            efficiency,
            rb_bandwidth_hz=self.config.rb_bandwidth_hz,
            interval_s=self.config.interval_s,
        )
        return GroupIntervalUsage(
            group_id=group_id,
            member_ids=member_ids,
            traffic_bits=traffic_bits,
            efficiency_bps_hz=efficiency,
            representation_name=representation.name,
            resource_blocks=blocks,
            computing_cycles=0.0,  # filled in after edge processing
            videos_played=videos_played,
            engagement_seconds=engagement_seconds,
        )

    def _collect_status(
        self,
        events_by_user: Dict[int, List[ViewingEvent]],
        start_s: float,
        end_s: float,
    ) -> None:
        if self._pending_collection is not None:
            # Full-shard engine: the workers already ran the collector from
            # each user's (interval, user) stream; replay their op logs onto
            # the real twins, in population order, exactly as the serial
            # walk would have appended.
            pending = self._pending_collection
            self._pending_collection = None
            for uid in self.users:
                twin = self.twins.twin(uid)
                for op in pending.get(uid, ()):
                    if op[0] == "batch":
                        twin.record_batch(op[1], op[2], op[3])
                    else:  # ("watches", kept indices into the user's events)
                        events = events_by_user.get(uid, [])
                        twin.record_watches(
                            [events[index].record for index in op[1]]
                        )
            return
        report_cells = self.controller is not None
        grouped = self._grouped
        interval_index = self.clock.current_interval
        for uid, user in self.users.items():
            # Grouped mode hands the collector a per-(interval, user) stream
            # so one user's channel-report draws never depend on how many
            # samples any other user (or any group) consumed; the shared
            # generator remains the compat/fast behaviour.  The same stream
            # also takes the drop decisions (keep_rng), making a lossy
            # policy's draw walk worker-replayable.
            rng = (
                self._registry.collection_stream(interval_index, uid)
                if grouped
                else self._rng
            )
            self.collector.collect_interval(
                self.twins.twin(uid),
                user.mobility,
                self._base_station(user.serving_bs_id),
                user.preference,
                events_by_user.get(uid, []),
                start_s,
                end_s,
                rng=rng,
                keep_rng=rng if grouped else None,
                serving_cell=user.serving_bs_id if report_cells else None,
            )

    def _update_preferences(self, events_by_user: Dict[int, List[ViewingEvent]]) -> None:
        for uid, events in events_by_user.items():
            engagement: Dict[str, float] = {}
            for event in events:
                engagement[event.record.category] = (
                    engagement.get(event.record.category, 0.0) + event.record.watch_duration_s
                )
            if engagement:
                self.users[uid].preference_model.update_from_engagement(engagement)

    def _update_popularity(self, events_by_user: Dict[int, List[ViewingEvent]]) -> None:
        engagement: Dict[int, float] = {}
        for events in events_by_user.values():
            for event in events:
                engagement[event.record.video_id] = (
                    engagement.get(event.record.video_id, 0.0) + event.record.watch_duration_s
                )
        if engagement:
            self.catalog.popularity.update_from_engagement(engagement)
