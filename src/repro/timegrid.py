"""Integer-step time grids.

Measurement, channel-sampling and collection schedules used to be built
with float-step ``np.arange(start_s, end_s, period_s)``.  ``np.arange``
determines the sample *count* from the floating-point ratio
``(end_s - start_s) / period_s``, so at a large ``start_s`` (long-horizon
runs) accumulated float error can add or drop a sample — e.g.
``np.arange(1.0, 1.3, 0.1)`` already yields **4** samples, the last one at
``1.3000000000000003 >= end_s``.  An extra or missing sample silently
changes how much randomness a channel trace consumes and breaks any
``(T, U, C)`` reshape or time-to-trigger arithmetic built on the expected
count.

:func:`time_grid` instead derives the count once, with a tolerance, and
materialises the grid as ``start_s + period_s * arange(n)`` — every sample
is an exact single multiply-add away from ``start_s``, the count is stable
at any horizon, and for well-behaved spans the values are bit-identical to
what ``np.arange`` produced (so identical-seed golden runs are preserved).

This module is dependency-free on purpose: it is shared by the network
(:mod:`repro.net.handover`), simulation (:mod:`repro.sim.simulator`) and
twin (:mod:`repro.twin.collector`) layers, which sit at different depths of
the package import graph.
"""

from __future__ import annotations

import numpy as np

#: Relative tolerance applied to the span/step ratio before taking the
#: ceiling.  Large enough to absorb accumulated double-precision error at
#: any realistic simulation horizon, small enough never to swallow a real
#: sample (which would require a step mis-sized by one part in 1e9).
_RATIO_EPS = 1e-9


def num_grid_steps(start_s: float, end_s: float, step_s: float) -> int:
    """Number of samples of a ``[start_s, end_s)`` grid with step ``step_s``.

    The mathematical count ``ceil((end_s - start_s) / step_s)`` evaluated
    with a tolerance, so a ratio that is integral up to float error (e.g.
    ``60.00000000000001``) maps to the intended integer instead of picking
    up a spurious extra sample.
    """
    if step_s <= 0:
        raise ValueError("step_s must be positive")
    if end_s <= start_s:
        return 0
    ratio = (end_s - start_s) / step_s
    return int(np.ceil(ratio * (1.0 - _RATIO_EPS)))


def time_grid(start_s: float, end_s: float, step_s: float) -> np.ndarray:
    """Sample times covering ``[start_s, end_s)`` at ``step_s`` spacing.

    Equivalent to ``np.arange(start_s, end_s, step_s)`` for well-behaved
    spans (same values, same count), but with the count computed robustly
    from the span so long-horizon grids never gain or lose a sample to
    floating-point drift.
    """
    count = num_grid_steps(start_s, end_s, step_s)
    return start_s + step_s * np.arange(count)
