"""Viewing-session generation.

A session is the sequence of short videos a user is served during a
reservation interval, together with how long each one was watched before the
user swiped away.  Sessions are what the base stations observe and what the
user digital twins record; the whole prediction pipeline is driven by them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.behavior.preference import PreferenceVector
from repro.behavior.watching import WatchingDurationModel, WatchRecord
from repro.video.catalog import Video, VideoCatalog


@dataclass(frozen=True)
class ViewingEvent:
    """One video served to one user within a session."""

    record: WatchRecord
    start_time_s: float

    @property
    def end_time_s(self) -> float:
        return self.start_time_s + self.record.watch_duration_s


@dataclass
class SessionConfig:
    """Configuration of the session generator."""

    session_duration_s: float = 300.0
    swipe_gap_s: float = 0.5
    recommendation_popularity_weight: float = 0.5
    completion_tolerance_s: float = 1e-6

    def __post_init__(self) -> None:
        if self.session_duration_s <= 0:
            raise ValueError("session_duration_s must be positive")
        if self.swipe_gap_s < 0:
            raise ValueError("swipe_gap_s must be non-negative")
        if not 0.0 <= self.recommendation_popularity_weight <= 1.0:
            raise ValueError("recommendation_popularity_weight must be in [0, 1]")


class SessionGenerator:
    """Generates viewing sessions for individual users.

    The video served next is sampled from a mixture of global popularity and
    the user's own category preference (the platform's recommender), and the
    watch duration comes from :class:`WatchingDurationModel`.
    """

    def __init__(
        self,
        catalog: VideoCatalog,
        watching_model: Optional[WatchingDurationModel] = None,
        config: Optional[SessionConfig] = None,
    ) -> None:
        self.catalog = catalog
        self.watching_model = watching_model if watching_model is not None else WatchingDurationModel()
        self.config = config if config is not None else SessionConfig()

    # ---------------------------------------------------------- video choice
    def _video_probabilities(self, preference: PreferenceVector) -> np.ndarray:
        video_ids = self.catalog.video_ids()
        popularity = self.catalog.popularity.probabilities()
        pop = np.array([popularity.get(vid, 0.0) for vid in video_ids])
        pref = np.array(
            [preference.weight(self.catalog.get(vid).category) for vid in video_ids]
        )
        if pop.sum() > 0:
            pop = pop / pop.sum()
        if pref.sum() > 0:
            pref = pref / pref.sum()
        w = self.config.recommendation_popularity_weight
        mixture = w * pop + (1.0 - w) * pref
        total = mixture.sum()
        if total <= 0:
            mixture = np.ones(len(video_ids)) / len(video_ids)
        else:
            mixture = mixture / total
        return mixture

    def sample_next_video(
        self, preference: PreferenceVector, rng: np.random.Generator
    ) -> Video:
        """Sample the next video the platform serves to a user."""
        video_ids = self.catalog.video_ids()
        probabilities = self._video_probabilities(preference)
        chosen = int(rng.choice(video_ids, p=probabilities))
        return self.catalog.get(chosen)

    # -------------------------------------------------------------- sessions
    def generate_session(
        self,
        user_id: int,
        preference: PreferenceVector,
        rng: Optional[np.random.Generator] = None,
        start_time_s: float = 0.0,
        duration_s: Optional[float] = None,
    ) -> List[ViewingEvent]:
        """Generate the viewing events of one user for one interval.

        ``rng`` is required: the historical per-user fallback
        (``default_rng(user_id)``) silently decoupled callers from the
        simulation's seed, so identical configs could disagree purely on
        whether a stream was passed.
        """
        if rng is None:
            raise ValueError(
                "generate_session requires an explicit rng; derive one from "
                "the repro.sim.rng registry (e.g. legacy_stream(user_id) for "
                "the historical default)"
            )
        duration_s = duration_s if duration_s is not None else self.config.session_duration_s
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        events: List[ViewingEvent] = []
        now = start_time_s
        end_time = start_time_s + duration_s
        while now < end_time:
            video = self.sample_next_video(preference, rng)
            watch = self.watching_model.sample_watch_duration(video, preference, rng)
            watch = min(watch, end_time - now)
            watch = max(watch, 0.0)
            swiped = watch < video.duration_s - self.config.completion_tolerance_s
            record = WatchRecord(
                user_id=user_id,
                video_id=video.video_id,
                category=video.category,
                watch_duration_s=watch,
                video_duration_s=video.duration_s,
                swiped=swiped,
                timestamp_s=now,
            )
            events.append(ViewingEvent(record=record, start_time_s=now))
            now += watch + self.config.swipe_gap_s
        return events

    def generate_population_sessions(
        self,
        preferences: Sequence[PreferenceVector],
        rng: Optional[np.random.Generator] = None,
        start_time_s: float = 0.0,
        duration_s: Optional[float] = None,
    ) -> List[List[ViewingEvent]]:
        """Generate one session per user; ``preferences[i]`` belongs to user ``i``."""
        if rng is None:
            raise ValueError(
                "generate_population_sessions requires an explicit rng; "
                "derive one from the repro.sim.rng registry (e.g. "
                "legacy_stream(0) for the historical default)"
            )
        sessions = []
        for user_id, preference in enumerate(preferences):
            sessions.append(
                self.generate_session(
                    user_id,
                    preference,
                    rng=rng,
                    start_time_s=start_time_s,
                    duration_s=duration_s,
                )
            )
        return sessions


def session_engagement_seconds(events: Sequence[ViewingEvent]) -> dict:
    """Total watch time per category across a session."""
    totals: dict = {}
    for event in events:
        totals[event.record.category] = (
            totals.get(event.record.category, 0.0) + event.record.watch_duration_s
        )
    return totals
