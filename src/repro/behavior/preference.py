"""User preference vectors over video categories.

A preference vector is a probability distribution over the category
taxonomy.  The paper updates preferences "based on preference labels and
engagement time"; :class:`PreferenceModel` implements that update as an
exponential moving average between the stored preference and the observed
engagement share per category.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from repro.video.categories import DEFAULT_CATEGORIES


class PreferenceVector:
    """A normalised preference distribution over categories."""

    def __init__(self, values: Mapping[str, float], categories: Optional[Sequence[str]] = None):
        self.categories = tuple(categories) if categories is not None else tuple(values.keys())
        if not self.categories:
            raise ValueError("preference vector needs at least one category")
        weights = np.array([max(float(values.get(c, 0.0)), 0.0) for c in self.categories])
        total = weights.sum()
        if total <= 0:
            weights = np.ones(len(self.categories))
            total = weights.sum()
        self._weights = weights / total
        self._index = {category: i for i, category in enumerate(self.categories)}

    # ------------------------------------------------------------ accessors
    def as_dict(self) -> Dict[str, float]:
        return {c: float(w) for c, w in zip(self.categories, self._weights)}

    def as_array(self, categories: Optional[Sequence[str]] = None) -> np.ndarray:
        """Preference weights ordered by ``categories`` (default: own order)."""
        if categories is None:
            return self._weights.copy()
        own = self.as_dict()
        return np.array([own.get(c, 0.0) for c in categories])

    def weight(self, category: str) -> float:
        row = self._index.get(category)
        return float(self._weights[row]) if row is not None else 0.0

    def favourite(self) -> str:
        """Category with the highest preference weight."""
        return self.categories[int(np.argmax(self._weights))]

    def least_favourite(self) -> str:
        return self.categories[int(np.argmin(self._weights))]

    def entropy(self) -> float:
        """Shannon entropy (nats) — low entropy means a very focused user."""
        weights = self._weights[self._weights > 0]
        return float(-(weights * np.log(weights)).sum())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PreferenceVector):
            return NotImplemented
        return self.categories == other.categories and np.allclose(
            self._weights, other._weights
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        pairs = ", ".join(f"{c}={w:.2f}" for c, w in self.as_dict().items())
        return f"PreferenceVector({pairs})"


def random_preference(
    rng: np.random.Generator,
    categories: Sequence[str] = DEFAULT_CATEGORIES,
    concentration: float = 0.7,
    favourite: Optional[str] = None,
    favourite_boost: float = 3.0,
) -> PreferenceVector:
    """Sample a preference vector from a Dirichlet distribution.

    ``concentration`` below one makes users focused on a few categories,
    which is what short-video engagement data looks like.  When
    ``favourite`` is given, that category's Dirichlet parameter is boosted so
    the user population can be biased (e.g. "group-1 users prefer News").
    """
    if concentration <= 0:
        raise ValueError("concentration must be positive")
    alphas = np.full(len(categories), concentration)
    if favourite is not None:
        if favourite not in categories:
            raise ValueError(f"favourite {favourite!r} not in categories")
        alphas[list(categories).index(favourite)] *= favourite_boost
    weights = rng.dirichlet(alphas)
    return PreferenceVector(dict(zip(categories, weights)), categories=categories)


def cosine_similarity(a: PreferenceVector, b: PreferenceVector) -> float:
    """Cosine similarity between two preference vectors on a shared category set."""
    categories = tuple(dict.fromkeys(tuple(a.categories) + tuple(b.categories)))
    va = a.as_array(categories)
    vb = b.as_array(categories)
    denom = np.linalg.norm(va) * np.linalg.norm(vb)
    if denom == 0:
        return 0.0
    return float(np.dot(va, vb) / denom)


class PreferenceModel:
    """Engagement-driven preference updates for a single user.

    The stored preference is blended with the engagement-time share observed
    in the latest window: ``p <- (1 - lr) * p + lr * engagement_share``.
    """

    def __init__(
        self,
        initial: PreferenceVector,
        learning_rate: float = 0.2,
    ) -> None:
        if not 0.0 <= learning_rate <= 1.0:
            raise ValueError("learning_rate must be in [0, 1]")
        self._preference = initial
        self.learning_rate = learning_rate
        self.categories = initial.categories

    @property
    def preference(self) -> PreferenceVector:
        return self._preference

    def update_from_engagement(self, engagement_seconds: Mapping[str, float]) -> PreferenceVector:
        """Update the preference from per-category engagement time (seconds)."""
        total = float(sum(max(v, 0.0) for v in engagement_seconds.values()))
        if total <= 0:
            return self._preference
        observed = np.array(
            [max(engagement_seconds.get(c, 0.0), 0.0) / total for c in self.categories]
        )
        current = self._preference.as_array(self.categories)
        blended = (1.0 - self.learning_rate) * current + self.learning_rate * observed
        self._preference = PreferenceVector(
            dict(zip(self.categories, blended)), categories=self.categories
        )
        return self._preference
