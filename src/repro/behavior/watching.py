"""Watching-duration model.

How long a user watches a short video before swiping away depends mainly on
how well the video matches the user's preferences.  The model below draws
the *watched fraction* of the video from a Beta distribution whose mean
increases with the preference weight of the video's category, with an extra
probability mass at "watched to the end" for well-matched videos.  That
yields the early-swipe-heavy, preference-skewed engagement traces the
prediction scheme needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.behavior.preference import PreferenceVector
from repro.video.catalog import Video


@dataclass(frozen=True)
class WatchRecord:
    """One completed viewing of a video by a user."""

    user_id: int
    video_id: int
    category: str
    watch_duration_s: float
    video_duration_s: float
    swiped: bool
    timestamp_s: float = 0.0

    def __post_init__(self) -> None:
        if self.watch_duration_s < 0 or self.video_duration_s <= 0:
            raise ValueError("durations must be positive")
        if self.watch_duration_s > self.video_duration_s + 1e-9:
            raise ValueError("watch duration cannot exceed video duration")

    @property
    def watched_fraction(self) -> float:
        return self.watch_duration_s / self.video_duration_s


class WatchingDurationModel:
    """Samples watch durations conditioned on user preference.

    Parameters
    ----------
    base_mean_fraction:
        Mean watched fraction for a completely indifferent user.
    preference_gain:
        How strongly the category preference weight shifts the mean
        watched fraction upwards.
    completion_probability_gain:
        Probability of watching to the very end grows with the preference
        weight at this rate.
    concentration:
        Beta-distribution concentration; higher values make durations less
        noisy around the mean.
    """

    #: Caps applied to the preference-driven means (single source of truth
    #: for both the public accessors and the inlined hot-path sampler).
    MAX_COMPLETION_PROBABILITY = 0.9
    MAX_MEAN_WATCHED_FRACTION = 0.95

    def __init__(
        self,
        base_mean_fraction: float = 0.25,
        preference_gain: float = 1.8,
        completion_probability_gain: float = 0.55,
        concentration: float = 4.0,
    ) -> None:
        if not 0.0 < base_mean_fraction < 1.0:
            raise ValueError("base_mean_fraction must be in (0, 1)")
        if preference_gain < 0 or completion_probability_gain < 0:
            raise ValueError("gains must be non-negative")
        if concentration <= 0:
            raise ValueError("concentration must be positive")
        self.base_mean_fraction = base_mean_fraction
        self.preference_gain = preference_gain
        self.completion_probability_gain = completion_probability_gain
        self.concentration = concentration

    def mean_watched_fraction(self, preference_weight: float) -> float:
        """Expected watched fraction for a given category preference weight."""
        if preference_weight < 0:
            raise ValueError("preference_weight must be non-negative")
        mean = self.base_mean_fraction * (1.0 + self.preference_gain * preference_weight)
        return float(min(mean, self.MAX_MEAN_WATCHED_FRACTION))

    def completion_probability(self, preference_weight: float) -> float:
        """Probability the user watches the video to the end."""
        return float(
            min(self.completion_probability_gain * preference_weight, self.MAX_COMPLETION_PROBABILITY)
        )

    def sample_watch_duration(
        self,
        video: Video,
        preference: PreferenceVector,
        rng: Optional[np.random.Generator] = None,
    ) -> float:
        """Sample how many seconds of ``video`` the user watches.

        ``rng`` is required.  The historical ``None`` fallback built a
        *fresh* seed-0 generator per call, so repeated calls without a
        generator all returned the same draw.  Every simulator path supplies
        its own stream — the shared generator in compat/fast draw modes, the
        per-(interval, group) watch stream in grouped mode.
        """
        if rng is None:
            raise ValueError(
                "sample_watch_duration requires an explicit rng; derive one "
                "from the repro.sim.rng registry (the historical fallback, "
                "legacy_stream(0), returned the same draw on every call)"
            )
        weight = preference.weight(video.category)
        # Inlined completion_probability / mean_watched_fraction (hot path).
        if rng.random() < min(
            self.completion_probability_gain * weight, self.MAX_COMPLETION_PROBABILITY
        ):
            return float(video.duration_s)
        mean = min(
            self.base_mean_fraction * (1.0 + self.preference_gain * weight),
            self.MAX_MEAN_WATCHED_FRACTION,
        )
        alpha = mean * self.concentration
        beta = (1.0 - mean) * self.concentration
        fraction = float(rng.beta(alpha, beta))
        return float(fraction * video.duration_s)

    def sample_watch_durations(
        self,
        video: Video,
        preference_weights: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Sample one watch duration per viewer in a single batched draw.

        ``preference_weights`` holds each viewer's preference weight for
        ``video``'s category.  The marginal distribution of every entry is
        identical to :meth:`sample_watch_duration`; only the generator walk
        differs (one ``random`` array and one ``beta`` array per call instead
        of interleaved scalar draws), which is what the batched interval
        engine ("fast" draw mode) wants on its hot path.
        """
        weights = np.asarray(preference_weights, dtype=np.float64)
        completion = np.minimum(
            self.completion_probability_gain * weights, self.MAX_COMPLETION_PROBABILITY
        )
        mean = np.minimum(
            self.base_mean_fraction * (1.0 + self.preference_gain * weights),
            self.MAX_MEAN_WATCHED_FRACTION,
        )
        alpha = mean * self.concentration
        beta = (1.0 - mean) * self.concentration
        completed = rng.random(weights.shape[0]) < completion
        fractions = rng.beta(alpha, beta)
        return np.where(completed, 1.0, fractions) * video.duration_s

    def expected_watch_duration(self, video: Video, preference: PreferenceVector) -> float:
        """Closed-form expectation of the watch duration (used by predictors)."""
        weight = preference.weight(video.category)
        p_complete = self.completion_probability(weight)
        mean_fraction = self.mean_watched_fraction(weight)
        expected_fraction = p_complete * 1.0 + (1.0 - p_complete) * mean_fraction
        return float(expected_fraction * video.duration_s)
