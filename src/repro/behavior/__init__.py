"""User behaviour substrate: preferences, watching duration, swiping, sessions.

The paper's core observation is that users' swiping behaviour (abandoning a
short video before it finishes) determines how much of each pre-cached video
is actually transmitted, and therefore how much radio and computing resource
a multicast group really needs.  This subpackage models the behaviour that
generates those traces:

* :mod:`repro.behavior.preference` -- per-user category preference vectors
  updated from engagement time (the "preference" UDT attribute).
* :mod:`repro.behavior.watching` -- watching-duration model conditioned on
  how well a video matches the user's preference.
* :mod:`repro.behavior.swiping` -- swipe-probability distributions derived
  from watching durations.
* :mod:`repro.behavior.session` -- a session generator producing the
  per-user viewing traces the UDTs collect.
"""

from repro.behavior.preference import (
    PreferenceModel,
    PreferenceVector,
    cosine_similarity,
    random_preference,
)
from repro.behavior.watching import WatchingDurationModel, WatchRecord
from repro.behavior.swiping import (
    SwipeProbabilityEstimator,
    empirical_swipe_distribution,
    swipe_probability_from_durations,
)
from repro.behavior.session import SessionConfig, SessionGenerator, ViewingEvent

__all__ = [
    "PreferenceModel",
    "PreferenceVector",
    "SessionConfig",
    "SessionGenerator",
    "SwipeProbabilityEstimator",
    "ViewingEvent",
    "WatchRecord",
    "WatchingDurationModel",
    "cosine_similarity",
    "empirical_swipe_distribution",
    "random_preference",
    "swipe_probability_from_durations",
]
