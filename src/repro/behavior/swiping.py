"""Swipe-probability abstraction from watching durations.

The paper abstracts each multicast group's *swiping probability
distribution* from the watching durations stored in the UDTs, and uses it to
quantify how much of each pre-cached video will actually be played.  This
module provides the empirical estimators that turn raw watch records into:

* a per-category swipe probability (probability the user abandons a video
  of that category before it finishes), and
* a per-category distribution of the watched fraction, from which the
  expected number of transmitted segments follows.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence

import numpy as np

from repro.behavior.watching import WatchRecord
from repro.video.categories import DEFAULT_CATEGORIES


def swipe_probability_from_durations(
    watch_durations_s: Sequence[float],
    video_durations_s: Sequence[float],
    completion_tolerance: float = 1e-6,
) -> float:
    """Fraction of viewings abandoned before the video finished."""
    watch = np.asarray(watch_durations_s, dtype=np.float64)
    video = np.asarray(video_durations_s, dtype=np.float64)
    if watch.shape != video.shape:
        raise ValueError("watch and video duration arrays must have the same shape")
    if watch.size == 0:
        return 0.0
    if np.any(video <= 0):
        raise ValueError("video durations must be positive")
    swiped = watch < video - completion_tolerance
    return float(swiped.mean())


def empirical_swipe_distribution(
    records: Iterable[WatchRecord],
    categories: Sequence[str] = DEFAULT_CATEGORIES,
    laplace_smoothing: float = 1.0,
) -> Dict[str, float]:
    """Per-category swipe probability with Laplace smoothing.

    Categories with no observations fall back to the smoothed prior of 0.5,
    which keeps the downstream demand prediction well defined for cold
    categories.
    """
    if laplace_smoothing < 0:
        raise ValueError("laplace_smoothing must be non-negative")
    swipes = {category: 0.0 for category in categories}
    counts = {category: 0.0 for category in categories}
    for record in records:
        if record.category not in swipes:
            continue
        counts[record.category] += 1.0
        if record.swiped:
            swipes[record.category] += 1.0
    distribution = {}
    for category in categories:
        numerator = swipes[category] + laplace_smoothing
        denominator = counts[category] + 2.0 * laplace_smoothing
        distribution[category] = numerator / denominator if denominator > 0 else 0.5
    return distribution


class SwipeProbabilityEstimator:
    """Online estimator of group-level swiping behaviour.

    The estimator ingests watch records (typically everything a multicast
    group watched during the last reservation interval) and exposes:

    * ``swipe_probability(category)`` -- probability of abandoning a video,
    * ``mean_watched_fraction(category)`` -- expected fraction watched,
    * ``cumulative_distribution()`` -- the cumulative swiping probability
      per category reported in the paper's Fig. 3(a).
    """

    def __init__(
        self,
        categories: Sequence[str] = DEFAULT_CATEGORIES,
        laplace_smoothing: float = 1.0,
    ) -> None:
        if not categories:
            raise ValueError("categories must not be empty")
        self.categories = tuple(categories)
        self.laplace_smoothing = laplace_smoothing
        self._swipes = {category: 0.0 for category in self.categories}
        self._counts = {category: 0.0 for category in self.categories}
        self._watched_fraction_sum = {category: 0.0 for category in self.categories}
        self._engagement_seconds = {category: 0.0 for category in self.categories}

    # -------------------------------------------------------------- updates
    def observe(self, record: WatchRecord) -> None:
        """Ingest one watch record."""
        if record.category not in self._counts:
            return
        self._counts[record.category] += 1.0
        self._watched_fraction_sum[record.category] += record.watched_fraction
        self._engagement_seconds[record.category] += record.watch_duration_s
        if record.swiped:
            self._swipes[record.category] += 1.0

    def observe_many(self, records: Iterable[WatchRecord]) -> None:
        for record in records:
            self.observe(record)

    # ------------------------------------------------------------ estimates
    @property
    def total_observations(self) -> float:
        return float(sum(self._counts.values()))

    def swipe_probability(self, category: str) -> float:
        if category not in self._counts:
            raise KeyError(f"unknown category {category!r}")
        numerator = self._swipes[category] + self.laplace_smoothing
        denominator = self._counts[category] + 2.0 * self.laplace_smoothing
        return numerator / denominator if denominator > 0 else 0.5

    def swipe_distribution(self) -> Dict[str, float]:
        return {category: self.swipe_probability(category) for category in self.categories}

    def mean_watched_fraction(self, category: str) -> float:
        """Average watched fraction; defaults to 0.5 for unseen categories."""
        if category not in self._counts:
            raise KeyError(f"unknown category {category!r}")
        count = self._counts[category]
        if count == 0:
            return 0.5
        return self._watched_fraction_sum[category] / count

    def watched_fraction_distribution(self) -> Dict[str, float]:
        return {category: self.mean_watched_fraction(category) for category in self.categories}

    def engagement_seconds(self) -> Dict[str, float]:
        """Total engagement time per category (drives preference/popularity updates)."""
        return dict(self._engagement_seconds)

    def category_watch_share(self) -> Dict[str, float]:
        """Share of total engagement time per category (sums to one)."""
        total = sum(self._engagement_seconds.values())
        if total <= 0:
            return {category: 1.0 / len(self.categories) for category in self.categories}
        return {
            category: seconds / total for category, seconds in self._engagement_seconds.items()
        }

    def cumulative_distribution(self) -> Dict[str, float]:
        """Cumulative swiping probability per category (Fig. 3a).

        Categories are ordered by engagement (most watched first) and the
        per-category swipe-share is accumulated, so the curve rises from the
        most-watched category (News in the paper) to 1.0 at the least-watched
        category (Game).
        """
        share = self.category_watch_share()
        ordered = sorted(self.categories, key=lambda c: -share[c])
        swipe_probs = self.swipe_distribution()
        weights = np.array([share[c] * swipe_probs[c] for c in ordered])
        total = weights.sum()
        if total <= 0:
            weights = np.ones(len(ordered))
            total = weights.sum()
        cumulative = np.cumsum(weights / total)
        return {category: float(value) for category, value in zip(ordered, cumulative)}

    def merge(self, other: "SwipeProbabilityEstimator") -> "SwipeProbabilityEstimator":
        """Combine two estimators (e.g. when multicast groups are merged)."""
        if self.categories != other.categories:
            raise ValueError("cannot merge estimators with different category sets")
        merged = SwipeProbabilityEstimator(self.categories, self.laplace_smoothing)
        for category in self.categories:
            merged._swipes[category] = self._swipes[category] + other._swipes[category]
            merged._counts[category] = self._counts[category] + other._counts[category]
            merged._watched_fraction_sum[category] = (
                self._watched_fraction_sum[category] + other._watched_fraction_sum[category]
            )
            merged._engagement_seconds[category] = (
                self._engagement_seconds[category] + other._engagement_seconds[category]
            )
        return merged


def expected_transmitted_fraction(
    swipe_probability: float,
    mean_watched_fraction_when_swiped: float,
) -> float:
    """Expected fraction of a video's segments that must be transmitted.

    With probability ``1 - swipe_probability`` the full video is played;
    otherwise only the watched prefix is needed.
    """
    if not 0.0 <= swipe_probability <= 1.0:
        raise ValueError("swipe_probability must be in [0, 1]")
    if not 0.0 <= mean_watched_fraction_when_swiped <= 1.0:
        raise ValueError("mean_watched_fraction_when_swiped must be in [0, 1]")
    return (1.0 - swipe_probability) + swipe_probability * mean_watched_fraction_when_swiped
