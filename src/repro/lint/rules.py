"""Rule framework: base class, registry, and the one-shot runner."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Type

from repro.lint.context import LintContext
from repro.lint.findings import Finding


class Rule:
    """One rule family member.

    Subclasses set ``rule_id``/``summary``/``hint`` and implement
    :meth:`check`, yielding :class:`Finding` objects.  Rules are stateless:
    all project knowledge comes from the :class:`LintContext`.
    """

    rule_id: str = ""
    summary: str = ""
    hint: str = ""

    def check(self, context: LintContext) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(self, info, node, message: str, hint: str = "") -> Finding:
        return Finding(
            rule=self.rule_id,
            path=info.relpath,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0) + 1,
            context=info.qualname_of(node),
            message=message,
            hint=hint or self.hint,
        )


_REGISTRY: List[Type[Rule]] = []


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    if not cls.rule_id:
        raise ValueError(f"rule {cls.__name__} has no rule_id")
    if any(existing.rule_id == cls.rule_id for existing in _REGISTRY):
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    _REGISTRY.append(cls)
    return cls


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, in registration order."""
    # Imported here so registering modules run exactly once, whichever of
    # the package's entry points is hit first.
    import repro.lint.rng_rules  # noqa: F401
    import repro.lint.shard_rules  # noqa: F401
    import repro.lint.export_rules  # noqa: F401
    import repro.lint.spec_rules  # noqa: F401

    return [cls() for cls in _REGISTRY]


def run_rules(
    context: LintContext, rules: Optional[Sequence[Rule]] = None
) -> List[Finding]:
    """Run ``rules`` (default: all registered) and return sorted findings."""
    findings: List[Finding] = []
    for rule in rules if rules is not None else all_rules():
        findings.extend(rule.check(context))
    return sorted(findings, key=Finding.sort_key)


#: Rule-id -> summary for docs/CLI listings, resolved lazily.
def rule_catalog() -> dict:
    return {rule.rule_id: rule.summary for rule in all_rules()}


ALL_RULES = all_rules
