"""Layer 2 of the lint dataflow: interprocedural provenance summaries.

Every function in the scanned project gets a :class:`FunctionSummary` —
which rng parameters it requires, whether it constructs a raw (non-registry)
generator, whether it performs call-time file I/O — built from the
intraprocedural facts of :mod:`repro.lint.dataflow`.  Call sites are then
resolved project-internally (local functions, from-import aliases, module
attributes, ``self.`` methods, class constructors) and the raw/I-O bits are
propagated to a fixpoint along the call graph.

The propagated bits power the worker-purity rules: SHARD004 flags a
worker-reachable function that pulls an unregistered generator out of a
callee (even transitively), which the per-statement layer cannot see.
Functions inside the allowed registry modules are sanctioned raw sources —
their whole point is to centralise construction — so they summarise as
clean and calling them is never a finding.

Resolution is deliberately conservative: an unresolvable callee contributes
nothing, so every reported chain is backed by a concrete witness
construction site.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.lint.context import LintContext, ModuleInfo, resolve_dotted
from repro.lint.dataflow import ModuleDataflow, ScopeFacts


@dataclass
class FunctionSummary:
    """Interprocedural facts of one function, keyed ``module:qualname``."""

    key: str
    module: str
    qualname: str
    relpath: str
    rng_params: Tuple[str, ...]
    #: Directly constructs a raw generator (outside allowed modules).
    constructs_raw: bool
    #: Directly performs call-time file I/O.
    does_io: bool
    #: ``path:line`` of the first direct raw construction, if any.
    raw_witness: Optional[str]
    #: ``(call node, resolved callee key or None)`` per call site.
    calls: List[Tuple[ast.Call, Optional[str]]] = field(default_factory=list)
    #: Transitive closure over resolved calls.
    trans_raw: bool = False
    trans_io: bool = False
    #: Human-readable witness chain for the transitive raw bit, e.g.
    #: ``"helpers.fresh -> src/pkg/helpers.py:4"``.
    trans_raw_via: Optional[str] = None


class CallGraph:
    """Project-wide function summaries with propagated raw/I-O bits."""

    def __init__(self, context: LintContext) -> None:
        self.context = context
        self.summaries: Dict[str, FunctionSummary] = {}
        self._build()
        self._propagate()

    # ------------------------------------------------------------ building
    def _build(self) -> None:
        flows: List[Tuple[ModuleInfo, ModuleDataflow]] = []
        for info in self.context.iter_modules():
            flow = self.context.dataflow(info)
            flows.append((info, flow))
            allowed = any(
                info.module == module or info.module.startswith(module + ".")
                for module in self.context.config.rng_allowed_modules
            )
            for scope in flow.function_scopes():
                key = f"{info.module}:{scope.qualname}"
                raw_sites = [] if allowed else scope.raw_sites
                witness = None
                if raw_sites:
                    witness = f"{info.relpath}:{raw_sites[0].node.lineno}"
                self.summaries[key] = FunctionSummary(
                    key=key,
                    module=info.module,
                    qualname=scope.qualname,
                    relpath=info.relpath,
                    rng_params=scope.rng_params,
                    constructs_raw=bool(raw_sites),
                    does_io=bool(scope.io_sites),
                    raw_witness=witness,
                )
        # Second pass: resolve call sites (needs the full summary index).
        for info, flow in flows:
            for scope in flow.function_scopes():
                summary = self.summaries[f"{info.module}:{scope.qualname}"]
                enclosing_class = scope.qualname.rsplit(".", 2)[-2] if (
                    "." in scope.qualname
                ) else None
                for call in scope.calls:
                    resolved = self._resolve_call(
                        call, info, flow, enclosing_class
                    )
                    summary.calls.append((call, resolved))

    def _resolve_call(
        self,
        call: ast.Call,
        info: ModuleInfo,
        flow: ModuleDataflow,
        enclosing_class: Optional[str],
    ) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Name):
            local = self._lookup(info.module, func.id)
            if local is not None:
                return local
            dotted = flow.aliases.get(func.id)
            if dotted is not None:
                return self._resolve_dotted_target(dotted)
            return None
        if isinstance(func, ast.Attribute):
            if (
                isinstance(func.value, ast.Name)
                and func.value.id in ("self", "cls")
                and enclosing_class is not None
            ):
                return self._lookup(
                    info.module, f"{enclosing_class}.{func.attr}"
                )
            dotted = resolve_dotted(func, flow.aliases)
            if dotted is not None:
                return self._resolve_dotted_target(dotted)
        return None

    def _resolve_dotted_target(self, dotted: str) -> Optional[str]:
        """``pkg.helpers.fresh`` -> the summary key it names, if project-
        internal (longest module prefix wins, classes map to __init__)."""
        parts = dotted.split(".")
        for end in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:end])
            if module in self.context.modules:
                remainder = ".".join(parts[end:])
                return self._lookup(module, remainder)
        return None

    def _lookup(self, module: str, qualname: str) -> Optional[str]:
        key = f"{module}:{qualname}"
        if key in self.summaries:
            return key
        # A class reference: constructing it runs __init__.
        init_key = f"{module}:{qualname}.__init__"
        if init_key in self.summaries:
            return init_key
        return None

    # --------------------------------------------------------- propagation
    def _propagate(self) -> None:
        for summary in self.summaries.values():
            if summary.constructs_raw:
                summary.trans_raw = True
                summary.trans_raw_via = summary.raw_witness
            if summary.does_io:
                summary.trans_io = True
        changed = True
        while changed:
            changed = False
            for summary in self.summaries.values():
                for _call, callee_key in summary.calls:
                    if callee_key is None:
                        continue
                    callee = self.summaries[callee_key]
                    if callee.trans_raw and not summary.trans_raw:
                        summary.trans_raw = True
                        summary.trans_raw_via = (
                            f"{callee.qualname} -> {callee.trans_raw_via}"
                        )
                        changed = True
                    if callee.trans_io and not summary.trans_io:
                        summary.trans_io = True
                        changed = True

    # -------------------------------------------------------------- access
    def summaries_of(self, module: str) -> List[FunctionSummary]:
        return [
            summary
            for summary in self.summaries.values()
            if summary.module == module
        ]
