"""The unit of lint output: one finding, with a location and a fix hint."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``context`` is the dotted qualname of the enclosing class/function (or
    ``"<module>"``), which — together with rule, path and message — forms
    the :attr:`baseline_key`.  Line numbers are deliberately *not* part of
    the key: unrelated edits above a grandfathered site must not resurrect
    it as a "new" finding.
    """

    rule: str
    path: str
    line: int
    col: int
    context: str
    message: str
    hint: str = ""

    @property
    def baseline_key(self) -> Tuple[str, str, str, str]:
        return (self.rule, self.path, self.context, self.message)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": int(self.line),
            "col": int(self.col),
            "context": self.context,
            "message": self.message,
            "hint": self.hint,
        }

    def render(self) -> str:
        text = f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
        if self.hint:
            text += f" (fix: {self.hint})"
        return text

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule, self.message)
