"""``repro lint`` — CLI glue over the static pass and the schema snapshot.

Exit codes: ``0`` clean (every finding baselined, snapshot matches), ``1``
new findings / schema drift / stale baseline entries, ``2`` usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Tuple

from repro.lint.baseline import Baseline, apply_baseline, load_baseline, save_baseline
from repro.lint.context import LintConfig, LintContext
from repro.lint.rules import run_rules
from repro.lint import schema as schema_mod

DEFAULT_BASELINE = "tests/goldens/lint_baseline.json"
DEFAULT_SNAPSHOT = "tests/goldens/export_schema.json"
DEFAULT_BENCH_SNAPSHOT = "tests/goldens/bench_schema.json"
BENCH_RESULTS_DIR = "benchmarks/results"


def default_root() -> Path:
    """The repository root, resolved from the installed package location.

    ``src/repro/lint/cli.py`` -> repo root is three parents above the
    package; fall back to the working directory when the package is not
    laid out that way (e.g. an installed wheel) so ``--root`` can fix it.
    """
    package_root = Path(__file__).resolve().parents[3]
    if (package_root / "src" / "repro").is_dir():
        return package_root
    return Path.cwd()


def add_lint_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "lint",
        help="determinism & shard-safety static analysis over src/",
        description=(
            "AST-based enforcement of the rng-registry, shard-purity, "
            "shared-memory-lifecycle, export-canonicality and spec-drift "
            "invariants.  A committed baseline grandfathers pre-existing "
            "findings; anything new exits 1.  --schema instead runs every "
            "registry scenario for one interval and diffs the key-tree of "
            "its RunResult export against the committed snapshot."
        ),
    )
    parser.add_argument(
        "--root",
        default=None,
        help="repository root (default: discovered from the package path)",
    )
    parser.add_argument(
        "--source-dir",
        action="append",
        metavar="DIR",
        default=None,
        help=(
            "scan DIR (relative to root) instead of src/; repeatable, "
            "e.g. --source-dir benchmarks"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("text", "github"),
        default="text",
        help=(
            "finding output format: 'github' emits ::error workflow "
            "annotations for new findings and stale baseline entries"
        ),
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help=f"baseline file (default: <root>/{DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline: report every finding as new",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from this scan (prunes stale entries)",
    )
    parser.add_argument(
        "--show-baselined",
        action="store_true",
        help="also print grandfathered findings",
    )
    parser.add_argument(
        "--schema",
        action="store_true",
        help="runtime mode: diff registry export key-trees vs the snapshot",
    )
    parser.add_argument(
        "--snapshot",
        default=None,
        metavar="PATH",
        help=f"schema snapshot file (default: <root>/{DEFAULT_SNAPSHOT})",
    )
    parser.add_argument(
        "--bench-snapshot",
        default=None,
        metavar="PATH",
        help=(
            "benchmark results snapshot file "
            f"(default: <root>/{DEFAULT_BENCH_SNAPSHOT})"
        ),
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="with --schema: rewrite the committed snapshot",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write findings (or the schema diff) as JSON to PATH ('-' for stdout)",
    )


def _emit_json(payload: dict, destination: Optional[str]) -> None:
    if destination is None:
        return
    text = json.dumps(payload, indent=2, sort_keys=True)
    if destination == "-":
        print(text)
    else:
        Path(destination).write_text(text + "\n")


def run_lint_command(args: argparse.Namespace) -> int:
    root = Path(args.root).resolve() if args.root else default_root()
    source_dirs = tuple(args.source_dir) if args.source_dir else ("src",)
    missing = [d for d in source_dirs if not (root / d).is_dir()]
    if missing:
        print(
            f"error: {root} has no {'/'.join(missing)}/ directory",
            file=sys.stderr,
        )
        return 2
    if args.schema:
        return _run_schema(args, root)
    return _run_static(args, root, source_dirs)


# ------------------------------------------------------------------ static
def _github_annotation(finding) -> str:
    """One GitHub workflow-command annotation line for a finding."""
    message = finding.message.replace("\n", " ")
    if finding.hint:
        message += f" (fix: {finding.hint})"
    return (
        f"::error file={finding.path},line={finding.line},"
        f"col={finding.col},title={finding.rule}::{message}"
    )


def _burn_down(previous: Baseline, findings) -> list:
    """Per-rule ``RULE old -> new`` delta lines for --update-baseline."""
    from collections import Counter

    before: Counter = Counter()
    for (rule, _path, _scope, _message), count in previous.entries.items():
        before[rule] += count
    after = Counter(finding.rule for finding in findings)
    return [
        f"  {rule} {before.get(rule, 0)} -> {after.get(rule, 0)}"
        for rule in sorted(set(before) | set(after))
    ]


def _run_static(
    args: argparse.Namespace, root: Path, source_dirs: Tuple[str, ...]
) -> int:
    quiet = args.json == "-"
    context = LintContext(LintConfig(root=root, source_dirs=source_dirs))
    findings = run_rules(context)
    baseline_path = Path(args.baseline) if args.baseline else root / DEFAULT_BASELINE

    if args.update_baseline:
        previous = load_baseline(baseline_path)
        save_baseline(baseline_path, findings)
        if not quiet:
            print(
                f"baseline rewritten: {len(findings)} finding(s) -> "
                f"{baseline_path}"
            )
            for line in _burn_down(previous, findings):
                print(line)
        _emit_json(
            {"findings": [f.to_dict() for f in findings], "baselined": True},
            args.json,
        )
        return 0

    baseline = Baseline() if args.no_baseline else load_baseline(baseline_path)
    result = apply_baseline(findings, baseline)
    payload = {
        "root": str(root),
        "checked_modules": len(context.modules),
        "worker_modules": sorted(context.worker_modules),
        "new": [f.to_dict() for f in result.new],
        "baselined_count": len(result.baselined),
        "stale": [
            {
                "rule": rule,
                "path": path,
                "context": scope,
                "message": message,
                "count": count,
            }
            for (rule, path, scope, message), count in result.stale
        ],
    }
    if args.show_baselined:
        payload["baselined"] = [f.to_dict() for f in result.baselined]
    _emit_json(payload, args.json)

    if not quiet:
        if args.format == "github":
            try:
                baseline_rel = baseline_path.resolve().relative_to(root)
            except ValueError:
                baseline_rel = baseline_path
            for finding in result.new:
                print(_github_annotation(finding))
            for (rule, path, scope, message), count in result.stale:
                print(
                    f"::error file={baseline_rel},title=stale-baseline::"
                    f"{count}x {rule} {path} [{scope}] {message}"
                )
        else:
            for finding in result.new:
                print(finding.render())
            if args.show_baselined:
                for finding in result.baselined:
                    print(f"[baselined] {finding.render()}")
            for (rule, path, scope, message), count in result.stale:
                print(
                    f"stale baseline entry ({count}x): {rule} {path} "
                    f"[{scope}] {message}"
                )
        print(
            f"repro lint: {len(result.new)} new, {len(result.baselined)} "
            f"baselined, {len(result.stale)} stale baseline entr"
            f"{'y' if len(result.stale) == 1 else 'ies'} over "
            f"{len(context.modules)} modules"
        )
        if result.new:
            print(
                "new findings fail the gate; fix them or grandfather "
                "deliberate ones with --update-baseline",
                file=sys.stderr,
            )
        if result.stale:
            print(
                "stale entries mean the baseline no longer matches a fresh "
                "scan; run --update-baseline",
                file=sys.stderr,
            )
    return 1 if (result.new or result.stale) else 0


# ------------------------------------------------------------------ schema
def _run_schema(args: argparse.Namespace, root: Path) -> int:
    quiet = args.json == "-"
    snapshot_path = Path(args.snapshot) if args.snapshot else root / DEFAULT_SNAPSHOT
    bench_path = (
        Path(args.bench_snapshot)
        if args.bench_snapshot
        else root / DEFAULT_BENCH_SNAPSHOT
    )
    results_dir = root / BENCH_RESULTS_DIR
    actual = schema_mod.snapshot_registry()
    bench_actual = (
        schema_mod.snapshot_bench_results(results_dir)
        if results_dir.is_dir()
        else None
    )
    if args.update:
        schema_mod.save_snapshot(snapshot_path, actual)
        if not quiet:
            print(
                f"schema snapshot rewritten for "
                f"{len(actual['scenarios'])} scenario(s) -> {snapshot_path}"
            )
        if bench_actual is not None:
            schema_mod.save_snapshot(bench_path, bench_actual)
            if not quiet:
                print(
                    f"bench snapshot rewritten for "
                    f"{len(bench_actual['results'])} result file(s) -> "
                    f"{bench_path}"
                )
        _emit_json({"registry": actual, "bench": bench_actual}, args.json)
        return 0
    expected = schema_mod.load_snapshot(snapshot_path)
    if expected is None:
        print(
            f"error: no committed snapshot at {snapshot_path}; run "
            "repro lint --schema --update",
            file=sys.stderr,
        )
        return 2
    problems = schema_mod.diff_snapshot(expected, actual)
    bench_problems = []
    if bench_actual is not None:
        bench_expected = schema_mod.load_snapshot(bench_path)
        if bench_expected is None:
            print(
                f"error: no committed bench snapshot at {bench_path}; run "
                "repro lint --schema --update",
                file=sys.stderr,
            )
            return 2
        bench_problems = schema_mod.diff_bench_snapshot(
            bench_expected, bench_actual
        )
    _emit_json(
        {
            "snapshot": str(snapshot_path),
            "scenarios": sorted(actual["scenarios"]),
            "problems": problems,
            "bench_snapshot": str(bench_path),
            "bench_results": sorted((bench_actual or {}).get("results", {})),
            "bench_problems": bench_problems,
        },
        args.json,
    )
    if not quiet:
        for problem in problems:
            print(f"schema drift: {problem}")
        for problem in bench_problems:
            print(f"bench schema drift: {problem}")
        print(
            f"repro lint --schema: {len(problems)} problem(s) across "
            f"{len(actual['scenarios'])} scenario(s), "
            f"{len(bench_problems)} problem(s) across "
            f"{len((bench_actual or {}).get('results', {}))} benchmark "
            "result file(s)"
        )
        if problems or bench_problems:
            print(
                "export shapes drifted from the committed snapshot; if "
                "intentional, run repro lint --schema --update and commit",
                file=sys.stderr,
            )
    return 1 if (problems or bench_problems) else 0
