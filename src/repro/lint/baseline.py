"""Baseline store: grandfathered findings, keyed without line numbers.

The committed baseline (``tests/goldens/lint_baseline.json``) records the
findings that existed when the gate was introduced, keyed by ``(rule,
path, enclosing scope, message)`` with an occurrence count — line numbers
are excluded so edits elsewhere in a file never resurrect a grandfathered
finding.  Applying the baseline splits a scan into *new* findings (fail
the gate), *baselined* ones (reported only on request) and *stale* entries
(baselined sites that no longer exist; pruned by ``--update-baseline``).
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Tuple

from repro.lint.findings import Finding

_KEY_FIELDS = ("rule", "path", "context", "message")


@dataclass
class Baseline:
    """Occurrence counts per baseline key."""

    entries: Dict[Tuple[str, str, str, str], int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return sum(self.entries.values())


@dataclass
class BaselineResult:
    new: List[Finding]
    baselined: List[Finding]
    #: Keys present in the baseline but absent (or less frequent) in the
    #: scan, with the unmatched count.
    stale: List[Tuple[Tuple[str, str, str, str], int]]


def load_baseline(path: Path) -> Baseline:
    if not Path(path).exists():
        return Baseline()
    payload = json.loads(Path(path).read_text())
    entries: Dict[Tuple[str, str, str, str], int] = {}
    for entry in payload.get("entries", []):
        key = tuple(str(entry[name]) for name in _KEY_FIELDS)
        entries[key] = entries.get(key, 0) + int(entry.get("count", 1))
    return Baseline(entries=entries)


def save_baseline(path: Path, findings: List[Finding]) -> None:
    """Write ``findings`` as the new baseline (sorted, line-free keys)."""
    counts = Counter(finding.baseline_key for finding in findings)
    entries = [
        {
            "rule": rule,
            "path": relpath,
            "context": context,
            "message": message,
            "count": count,
        }
        for (rule, relpath, context, message), count in sorted(counts.items())
    ]
    payload = {"version": 1, "entries": entries}
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def apply_baseline(findings: List[Finding], baseline: Baseline) -> BaselineResult:
    remaining = dict(baseline.entries)
    new: List[Finding] = []
    baselined: List[Finding] = []
    for finding in findings:
        key = finding.baseline_key
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            baselined.append(finding)
        else:
            new.append(finding)
    stale = sorted(
        (key, count) for key, count in remaining.items() if count > 0
    )
    return BaselineResult(new=new, baselined=baselined, stale=stale)
