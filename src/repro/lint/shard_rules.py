"""Shard purity + shared-memory lifecycle rules.

Worker processes import :mod:`repro.sim.shard` and everything it reaches
(transitively, lazy imports included).  A shard task must be a pure
function of its key and the fork-time static state, so worker-reachable
modules must not consult the environment or mutable module-level state at
call time, and the dataclasses that travel to workers must carry only
picklable data.

``SHARD001``
    call-time impurity inside a function of a worker-reachable module:
    ``os.environ`` / ``os.getenv`` reads, and — since the flow-sensitive
    upgrade — file I/O (``open``, ``json.load``, ``np.load``,
    ``Path.read_text``, ...).  Module-level I/O is import-time (fork-time)
    and exempt; call-time I/O makes a worker's result depend on the
    filesystem it happens to see.
``SHARD002``
    a task/handle/static dataclass field annotated with an unpicklable or
    stateful type (``Generator``, locks, callables, executors, ...).
``SHARD003``
    mutable module-level state in a worker-reachable module: a top-level
    name bound to a list/dict/set, or a ``global`` statement rebinding
    module state from inside a function.  Dunder names and ALL_CAPS
    constants (lookup tables filled at import time) are exempt by
    convention — the rule targets state that *changes between calls*, and
    ``global`` rebinding is the unambiguous signal for that.
``SHARD004``
    a worker-reachable function consumes an unregistered generator through
    a callee: the interprocedural summaries of
    :mod:`repro.lint.callgraph` propagate "constructs a raw generator"
    along resolved project-internal calls, so a helper that mints entropy
    two hops away still surfaces at the worker-side call site.
``SHM001``
    a ``SharedMemory(create=True)`` site without an idempotent
    ``close()``/``unlink()`` pair in the owning class or module.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, List, Optional

from repro.lint.context import LintContext, resolve_dotted
from repro.lint.findings import Finding
from repro.lint.rules import Rule, register_rule

#: Annotation tokens that mark a field as non-data (unpicklable or
#: process-local state).  Matched as whole words in the unparsed annotation.
_NON_DATA_TOKENS = (
    "Generator",
    "BitGenerator",
    "Lock",
    "RLock",
    "Semaphore",
    "Condition",
    "Callable",
    "Thread",
    "Executor",
    "Pool",
    "SharedMemory",
)

_TASK_NAME_SUFFIXES = ("Task", "Handle", "Static")


def _is_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = target.attr if isinstance(target, ast.Attribute) else getattr(
            target, "id", None
        )
        if name == "dataclass":
            return True
    return False


def _annotation_tokens(annotation: ast.AST) -> List[str]:
    return re.findall(r"[A-Za-z_][A-Za-z0-9_]*", ast.unparse(annotation))


@register_rule
class WorkerEnvironRule(Rule):
    rule_id = "SHARD001"
    summary = (
        "worker-reachable code consults the environment or filesystem at "
        "call time"
    )
    hint = (
        "resolve the value in the parent and ship it via ShardStatic / the "
        "task payload; worker behaviour must be a pure function of the key"
    )

    def check(self, context: LintContext) -> Iterable[Finding]:
        for info in context.iter_modules(sorted(context.worker_modules)):
            # Call-time file I/O, from the intraprocedural dataflow pass.
            # Only function bodies count: module-level reads happen at
            # import (fork) time, before any task runs.
            flow = context.dataflow(info)
            for scope in flow.function_scopes():
                for site in scope.io_sites:
                    yield self.finding(
                        info,
                        site.node,
                        f"call-time file I/O ({site.description}) in "
                        "worker-reachable code",
                    )
            for node in ast.walk(info.tree):
                dotted: Optional[str] = None
                if isinstance(node, ast.Attribute):
                    dotted = resolve_dotted(node, {})
                elif isinstance(node, ast.Call):
                    dotted = resolve_dotted(node.func, {})
                if dotted not in ("os.environ", "os.getenv"):
                    continue
                if isinstance(node, ast.Attribute):
                    # Reported once, at the attribute read itself (the call
                    # wrapper around ``os.getenv`` handles the other form).
                    if info.enclosing_function(node) is None:
                        continue
                    yield self.finding(
                        info, node, "os.environ read in worker-reachable code"
                    )
                elif isinstance(node, ast.Call) and dotted == "os.getenv":
                    if info.enclosing_function(node) is None:
                        continue
                    yield self.finding(
                        info, node, "os.getenv(...) in worker-reachable code"
                    )


@register_rule
class TaskFieldRule(Rule):
    rule_id = "SHARD002"
    summary = "task dataclass field carries non-data (unpicklable) state"
    hint = (
        "task payloads must be picklable data only: ship keys/arrays/"
        "scalars and rebuild stateful objects worker-side from them"
    )

    def check(self, context: LintContext) -> Iterable[Finding]:
        for info in context.iter_modules(sorted(context.worker_modules)):
            for node in ast.walk(info.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                if not node.name.endswith(_TASK_NAME_SUFFIXES):
                    continue
                if not _is_dataclass(node):
                    continue
                for statement in node.body:
                    if not isinstance(statement, ast.AnnAssign):
                        continue
                    tokens = _annotation_tokens(statement.annotation)
                    bad = [t for t in tokens if t in _NON_DATA_TOKENS]
                    if not bad:
                        continue
                    field_name = (
                        statement.target.id
                        if isinstance(statement.target, ast.Name)
                        else ast.unparse(statement.target)
                    )
                    yield self.finding(
                        info,
                        statement,
                        f"field {field_name!r} of {node.name} annotated "
                        f"{ast.unparse(statement.annotation)!r} is not plain "
                        "picklable data",
                    )


@register_rule
class WorkerMutableStateRule(Rule):
    rule_id = "SHARD003"
    summary = "mutable module-level state in a worker-reachable module"
    hint = (
        "worker results must not depend on module state mutated at call "
        "time; make it per-instance, pass it through the task, or baseline "
        "a sanctioned fork-time registry"
    )

    def check(self, context: LintContext) -> Iterable[Finding]:
        for info in context.iter_modules(sorted(context.worker_modules)):
            for statement in info.tree.body:
                targets: List[ast.AST] = []
                value: Optional[ast.AST] = None
                if isinstance(statement, ast.Assign):
                    targets, value = statement.targets, statement.value
                elif isinstance(statement, ast.AnnAssign) and statement.value:
                    targets, value = [statement.target], statement.value
                if value is None or not self._is_mutable(value):
                    continue
                names = ", ".join(
                    t.id
                    for t in targets
                    if isinstance(t, ast.Name) and not self._is_constant_name(t.id)
                )
                if not names:
                    continue
                yield self.finding(
                    info,
                    statement,
                    f"module-level mutable binding {names!r} "
                    f"({ast.unparse(value)})",
                )
            for node in ast.walk(info.tree):
                if isinstance(node, ast.Global):
                    yield self.finding(
                        info,
                        node,
                        "global statement rebinds module state "
                        f"({', '.join(node.names)})",
                    )

    @staticmethod
    def _is_constant_name(name: str) -> bool:
        """Dunders and ALL_CAPS bindings are constants by convention."""
        if name.startswith("__") and name.endswith("__"):
            return True
        return name.upper() == name

    @staticmethod
    def _is_mutable(value: ast.AST) -> bool:
        if isinstance(value, (ast.List, ast.Dict, ast.Set)):
            return True
        if isinstance(value, ast.Call):
            name = (
                value.func.id
                if isinstance(value.func, ast.Name)
                else getattr(value.func, "attr", None)
            )
            return name in ("list", "dict", "set", "defaultdict", "OrderedDict")
        return False


@register_rule
class WorkerRawRngRule(Rule):
    rule_id = "SHARD004"
    summary = (
        "worker-reachable function consumes an unregistered generator via "
        "a callee"
    )
    hint = (
        "make the callee derive its stream from a repro.sim.rng key (or "
        "take it as a required parameter); entropy minted below a worker "
        "entry point silently breaks the serial == sharded guarantee"
    )

    def check(self, context: LintContext) -> Iterable[Finding]:
        allowed = set(context.config.rng_allowed_modules)
        graph = context.callgraph()
        for info in context.iter_modules(sorted(context.worker_modules)):
            if info.module in allowed:
                continue
            for summary in graph.summaries_of(info.module):
                for call, callee_key in summary.calls:
                    if callee_key is None:
                        continue
                    callee = graph.summaries[callee_key]
                    if not callee.trans_raw:
                        continue
                    yield self.finding(
                        info,
                        call,
                        f"call to {callee.qualname}() reaches an "
                        "unregistered generator "
                        f"(constructed at {callee.trans_raw_via})",
                    )


@register_rule
class SharedMemoryLifecycleRule(Rule):
    rule_id = "SHM001"
    summary = "SharedMemory(create=True) without a close()/unlink() path"
    hint = (
        "pair every created segment with an idempotent close() that "
        "unlink()s it (see SharedIntervalPlan._release)"
    )

    def check(self, context: LintContext) -> Iterable[Finding]:
        for info in context.iter_modules():
            creates = [
                node
                for node in ast.walk(info.tree)
                if isinstance(node, ast.Call)
                and self._is_shared_memory_create(node)
            ]
            if not creates:
                continue
            for node in creates:
                owner = info.enclosing_class(node)
                scope: ast.AST = owner if owner is not None else info.tree
                problems = []
                if owner is not None and not self._has_method(owner, "close"):
                    problems.append("no close() method on the owning class")
                if not self._calls_method(scope, "unlink"):
                    problems.append("no unlink() call in the owning scope")
                if not self._calls_method(scope, "close"):
                    problems.append("no close() call in the owning scope")
                if problems:
                    yield self.finding(
                        info,
                        node,
                        "SharedMemory(create=True) leaks: "
                        + "; ".join(problems),
                    )

    @staticmethod
    def _is_shared_memory_create(node: ast.Call) -> bool:
        name = (
            node.func.attr
            if isinstance(node.func, ast.Attribute)
            else getattr(node.func, "id", None)
        )
        if name != "SharedMemory":
            return False
        for keyword in node.keywords:
            if keyword.arg == "create" and isinstance(
                keyword.value, ast.Constant
            ):
                return keyword.value.value is True
        return False

    @staticmethod
    def _has_method(owner: ast.ClassDef, name: str) -> bool:
        return any(
            isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            and item.name == name
            for item in owner.body
        )

    @staticmethod
    def _calls_method(scope: ast.AST, name: str) -> bool:
        for node in ast.walk(scope):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == name
            ):
                return True
        return False
