"""Spec/config drift: every ``SimulationConfig`` field is spec-reachable.

The declarative scenario API only stays the single source of truth while
``compile_spec`` maps *every* config field from some ``ScenarioSpec``
field.  A config knob added without a compiler mapping silently runs every
scenario at its default — unreachable from specs, overrides and the CLI —
which is exactly the drift this family catches at review time.

``SPEC001``
    a field of the config dataclass that ``compile_spec`` neither passes
    as a keyword nor lists in the explicit allowlist.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set

from repro.lint.context import LintContext
from repro.lint.findings import Finding
from repro.lint.rules import Rule, register_rule


def _class_fields(tree: ast.Module, class_name: str) -> Optional[List[ast.AnnAssign]]:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            return [
                statement
                for statement in node.body
                if isinstance(statement, ast.AnnAssign)
                and isinstance(statement.target, ast.Name)
            ]
    return None


def _constructor_keywords(
    tree: ast.Module, function_name: str, class_name: str
) -> Optional[Set[str]]:
    """Keyword names passed to ``class_name(...)`` inside ``function_name``."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.FunctionDef) or node.name != function_name:
            continue
        keywords: Set[str] = set()
        found = False
        for call in ast.walk(node):
            if not isinstance(call, ast.Call):
                continue
            callee = call.func
            name = (
                callee.attr
                if isinstance(callee, ast.Attribute)
                else getattr(callee, "id", None)
            )
            if name != class_name:
                continue
            found = True
            for keyword in call.keywords:
                if keyword.arg is not None:
                    keywords.add(keyword.arg)
        return keywords if found else None
    return None


@register_rule
class SpecConfigDriftRule(Rule):
    rule_id = "SPEC001"
    summary = "config field not set by compile_spec (spec/config drift)"
    hint = (
        "map the field from a ScenarioSpec field in compile_spec, or add "
        "it to LintConfig.spec_allowed_fields with a reason"
    )

    def check(self, context: LintContext) -> Iterable[Finding]:
        config = context.config
        config_module, config_class = config.spec_config
        compiler_module, compiler_function = config.spec_compiler
        config_info = context.modules.get(config_module)
        compiler_info = context.modules.get(compiler_module)
        if config_info is None or compiler_info is None:
            return
        fields = _class_fields(config_info.tree, config_class)
        if fields is None:
            return
        keywords = _constructor_keywords(
            compiler_info.tree, compiler_function, config_class
        )
        if keywords is None:
            # The compiler never constructs the config at all — that is
            # drift of its own, anchored on the function if present.
            yield Finding(
                rule=self.rule_id,
                path=compiler_info.relpath,
                line=1,
                col=1,
                context=compiler_function,
                message=(
                    f"{compiler_function} never constructs {config_class}"
                ),
                hint=self.hint,
            )
            return
        allowed = set(config.spec_allowed_fields)
        for statement in fields:
            name = statement.target.id
            if name in keywords or name in allowed:
                continue
            yield self.finding(
                config_info,
                statement,
                f"{config_class}.{name} is never set by "
                f"{compiler_function} — scenarios cannot reach it",
            )
