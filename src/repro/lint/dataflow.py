"""Layer 1 of the lint dataflow: intraprocedural RNG/I-O provenance.

Every function (plus a ``<module>`` pseudo-scope covering module and class
bodies) is walked statement by statement with a small abstract environment
mapping local names — and ``self.<attr>`` stores — to a *provenance*:

``raw``
    the value originates from a numpy generator constructor
    (``default_rng``, ``Generator``, ``RandomState``, ``SeedSequence``)
    called outside the registry, possibly through aliases, tuple unpacks,
    or a factory reference (``make = np.random.default_rng``).
``registry``
    the value came out of an allowed registry module
    (:attr:`LintConfig.rng_allowed_modules`) — directly, through a
    from-import alias, or as a method call on a registry-provenance object.
``unknown``
    anything else (parameters, arbitrary calls).  Unknown never triggers a
    finding, so the analysis only reports what it can actually prove.

The walk is deliberately approximate where approximation is safe for a
linter: branches of ``if``/``try`` are traversed sequentially over one
shared environment, and joins (``IfExp``/``or``) resolve to ``raw`` if any
arm is raw.  Each raw constructor call becomes exactly one :class:`RawSite`
that downstream rules *claim* with a fixed priority — silent fallback
(RNG003) over returned generator (RNG004) over plain construction
(RNG001) — so one defect yields one finding.

The same pass records call-time file I/O (``open``, ``json.load``,
``np.load``, ``Path.read_text``, ...) and every call expression, which is
what the interprocedural layer (:mod:`repro.lint.callgraph`) consumes.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.lint.context import (
    LintConfig,
    ModuleInfo,
    resolve_dotted,
    resolve_import_from,
)

#: numpy.random entry points that construct a generator / entropy source.
CONSTRUCTORS = {"default_rng", "Generator", "RandomState", "SeedSequence"}

#: Legacy module-level draw functions on ``numpy.random`` (global state).
LEGACY_DRAWS = {
    "beta", "binomial", "choice", "exponential", "gamma", "normal",
    "permutation", "poisson", "rand", "randint", "randn", "random",
    "random_sample", "seed", "shuffle", "standard_normal", "uniform",
}

#: Call-time file I/O by canonical dotted name.
IO_CALLS = {
    "open",
    "io.open",
    "json.load",
    "json.dump",
    "pickle.load",
    "pickle.dump",
    "numpy.load",
    "numpy.save",
    "numpy.savez",
    "numpy.savez_compressed",
    "numpy.savetxt",
    "numpy.loadtxt",
    "numpy.genfromtxt",
    "numpy.fromfile",
    "numpy.tofile",
}

#: Call-time file I/O by method name (``Path.read_text`` and friends —
#: the receiver's type is unknown statically, but these names are
#: file-system verbs by strong convention).
IO_METHODS = {"read_text", "read_bytes", "write_text", "write_bytes"}

RAW = "raw"
REGISTRY = "registry"
UNKNOWN = "unknown"

#: Claim states of a raw constructor site, in priority order.
CLAIM_FALLBACK = "fallback"
CLAIM_RETURNED = "returned"
CLAIM_CONSTRUCT = "construct"


@dataclass(frozen=True)
class Provenance:
    """Abstract value: where did this expression's result come from?"""

    kind: str
    #: Constructor name for raw values (``"default_rng"``).
    target: Optional[str] = None
    #: The originating constructor call, when there is a concrete one.
    source: Optional[ast.Call] = None
    #: True for an *uncalled* reference to a constructor/registry function
    #: (``make = np.random.default_rng``): calling it produces the value,
    #: holding it does not.
    factory: bool = False


UNKNOWN_PROV = Provenance(UNKNOWN)


@dataclass
class RawSite:
    """One raw generator construction, claimed by exactly one rule."""

    node: ast.Call
    target: str
    claim: str = CLAIM_CONSTRUCT


@dataclass
class ReturnSite:
    """A ``return`` whose value provably carries a raw generator."""

    node: ast.stmt
    site: RawSite


@dataclass
class IoSite:
    """A call-time file-system access."""

    node: ast.Call
    description: str


@dataclass
class ScopeFacts:
    """Everything the rules need to know about one scope."""

    qualname: str
    node: Optional[ast.AST]
    raw_sites: List[RawSite] = field(default_factory=list)
    legacy_draws: List[Tuple[ast.Call, str]] = field(default_factory=list)
    return_sites: List[ReturnSite] = field(default_factory=list)
    io_sites: List[IoSite] = field(default_factory=list)
    calls: List[ast.Call] = field(default_factory=list)
    rng_params: Tuple[str, ...] = ()

    @property
    def is_function(self) -> bool:
        return self.node is not None


def collect_aliases(info: ModuleInfo) -> Dict[str, str]:
    """Local name -> canonical dotted target, for *all* imports.

    Function-level (lazy) imports are included: the repo routes circular
    imports through them, so provenance must see through both forms.  A
    name imported differently in two scopes resolves to the later binding —
    an accepted imprecision that has never applied to this tree.
    """
    aliases: Dict[str, str] = {}
    is_package = info.path.name == "__init__.py"
    for node in ast.walk(info.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    aliases[alias.asname] = alias.name
        elif isinstance(node, ast.ImportFrom):
            target = resolve_import_from(info.module, is_package, node)
            if target is None:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = f"{target}.{alias.name}"
    return aliases


def _join(provs: List[Provenance]) -> Provenance:
    """Branch join: raw dominates (it is what the rules must not miss)."""
    for prov in provs:
        if prov.kind == RAW and not prov.factory:
            return prov
    for prov in provs:
        if prov.kind == REGISTRY:
            return prov
    return UNKNOWN_PROV


class _ScopeWalker:
    """Single-pass abstract interpreter for one scope."""

    def __init__(
        self,
        dataflow: "ModuleDataflow",
        facts: ScopeFacts,
        body: List[ast.stmt],
        module_scope: bool,
    ) -> None:
        self.df = dataflow
        self.facts = facts
        self.body = body
        self.module_scope = module_scope
        self.env: Dict[str, Provenance] = {}
        self._call_prov: Dict[int, Provenance] = {}
        self._seen_calls: Set[int] = set()

    # ------------------------------------------------------------- driving
    def run(self) -> None:
        if isinstance(
            self.facts.node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            self.facts.rng_params = tuple(
                self._rng_params(self.facts.node)
            )
        self._block(self.body)
        claimed_fallback = {
            id(site.node)
            for site in self.facts.raw_sites
            if site.claim == CLAIM_FALLBACK
        }
        for ret in self.facts.return_sites:
            if id(ret.site.node) not in claimed_fallback:
                ret.site.claim = CLAIM_RETURNED

    @staticmethod
    def _rng_params(node: ast.AST) -> List[str]:
        names = []
        args = node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            annotation = (
                ast.unparse(arg.annotation) if arg.annotation else ""
            )
            if "rng" in arg.arg.lower() or "Generator" in annotation:
                names.append(arg.arg)
        return names

    # ---------------------------------------------------------- statements
    def _block(self, stmts: List[ast.stmt]) -> None:
        for stmt in stmts:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # separate scope
        if isinstance(stmt, ast.ClassDef):
            if self.module_scope:
                self._block(stmt.body)  # class bodies run at import time
            return
        if isinstance(stmt, ast.Assign):
            self._scan(stmt.value)
            prov = self._prov(stmt.value)
            for target in stmt.targets:
                self._bind(target, stmt.value, prov)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._scan(stmt.value)
                self._bind(stmt.target, stmt.value, self._prov(stmt.value))
            return
        if isinstance(stmt, ast.Return):
            self._scan(stmt.value)
            self._record_return(stmt)
            return
        if isinstance(stmt, ast.If):
            self._scan(stmt.test)
            self._claim_if_none_fallback(stmt)
            self._block(stmt.body)
            self._block(stmt.orelse)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._scan(stmt.iter)
            self._bind(stmt.target, None, UNKNOWN_PROV)
            self._block(stmt.body)
            self._block(stmt.orelse)
            return
        if isinstance(stmt, ast.While):
            self._scan(stmt.test)
            self._block(stmt.body)
            self._block(stmt.orelse)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._scan(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(
                        item.optional_vars,
                        item.context_expr,
                        self._prov(item.context_expr),
                    )
            self._block(stmt.body)
            return
        if isinstance(stmt, ast.Try):
            self._block(stmt.body)
            for handler in stmt.handlers:
                self._block(handler.body)
            self._block(stmt.orelse)
            self._block(stmt.finalbody)
            return
        # Everything else (Expr, Raise, Assert, AugAssign, ...): classify
        # any call expressions it contains, no binding effects.
        self._scan(stmt)

    # -------------------------------------------------------- environments
    def _bind(
        self,
        target: ast.AST,
        value: Optional[ast.AST],
        prov: Provenance,
    ) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = prov
        elif isinstance(target, ast.Attribute):
            dotted = self._attr_key(target)
            if dotted is not None:
                self.env[dotted] = prov
        elif isinstance(target, (ast.Tuple, ast.List)):
            elements = list(target.elts)
            values: List[Optional[ast.AST]] = [None] * len(elements)
            if isinstance(value, (ast.Tuple, ast.List)) and len(
                value.elts
            ) == len(elements):
                values = list(value.elts)
            for element, element_value in zip(elements, values):
                element_prov = (
                    self._prov(element_value)
                    if element_value is not None
                    else UNKNOWN_PROV
                )
                self._bind(element, element_value, element_prov)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, None, UNKNOWN_PROV)

    @staticmethod
    def _attr_key(node: ast.Attribute) -> Optional[str]:
        """``self.x`` / ``cls.x`` store key, None for anything deeper."""
        if isinstance(node.value, ast.Name) and node.value.id in (
            "self",
            "cls",
        ):
            return f"{node.value.id}.{node.attr}"
        return None

    # ---------------------------------------------------------- provenance
    def _prov(self, expr: Optional[ast.AST]) -> Provenance:
        if expr is None:
            return UNKNOWN_PROV
        if isinstance(expr, ast.Call):
            return self._call_prov.get(id(expr), UNKNOWN_PROV)
        if isinstance(expr, ast.Name):
            return self.env.get(expr.id, UNKNOWN_PROV)
        if isinstance(expr, ast.Attribute):
            key = self._attr_key(expr)
            if key is not None and key in self.env:
                return self.env[key]
            dotted = resolve_dotted(expr, self.df.aliases)
            if dotted is not None:
                return self._dotted_factory_prov(dotted)
            return UNKNOWN_PROV
        if isinstance(expr, ast.IfExp):
            return _join([self._prov(expr.body), self._prov(expr.orelse)])
        if isinstance(expr, ast.BoolOp):
            return _join([self._prov(value) for value in expr.values])
        if isinstance(expr, ast.NamedExpr):
            prov = self._prov(expr.value)
            self._bind(expr.target, expr.value, prov)
            return prov
        if isinstance(expr, ast.Await):
            return self._prov(expr.value)
        return UNKNOWN_PROV

    def _dotted_factory_prov(self, dotted: str) -> Provenance:
        """Provenance of an *uncalled* dotted reference."""
        if dotted.startswith("numpy.random."):
            tail = dotted[len("numpy.random."):]
            if tail in CONSTRUCTORS:
                return Provenance(RAW, target=tail, factory=True)
        if self.df.is_registry_target(dotted):
            return Provenance(REGISTRY, factory=True)
        return UNKNOWN_PROV

    # ------------------------------------------------------ call scanning
    def _scan(self, node: Optional[ast.AST]) -> None:
        """Classify every call expression under ``node`` exactly once.

        Calls are classified innermost-first (reversed BFS order) so that a
        chained call sees its receiver's provenance, and fallback claims
        run only after every call in the expression is classified.
        """
        if node is None:
            return
        nodes = list(ast.walk(node))
        for child in reversed(nodes):
            if isinstance(child, ast.Call) and id(child) not in self._seen_calls:
                self._seen_calls.add(id(child))
                self._call_prov[id(child)] = self._classify(child)
        for child in nodes:
            if isinstance(child, ast.IfExp):
                self._claim_fallback_expr(child.orelse)
            elif isinstance(child, ast.BoolOp) and isinstance(
                child.op, ast.Or
            ):
                for value in child.values[1:]:
                    self._claim_fallback_expr(value)

    def _classify(self, call: ast.Call) -> Provenance:
        self.facts.calls.append(call)
        dotted = resolve_dotted(call.func, self.df.aliases)
        if dotted is not None:
            if dotted.startswith("numpy.random."):
                tail = dotted[len("numpy.random."):]
                if tail in CONSTRUCTORS:
                    site = RawSite(node=call, target=tail)
                    self.facts.raw_sites.append(site)
                    return Provenance(RAW, target=tail, source=call)
                if tail in LEGACY_DRAWS:
                    self.facts.legacy_draws.append((call, tail))
                    return UNKNOWN_PROV
            if self.df.is_registry_target(dotted):
                return Provenance(REGISTRY)
            if dotted in IO_CALLS:
                self.facts.io_sites.append(
                    IoSite(node=call, description=f"{dotted}(...)")
                )
                return UNKNOWN_PROV
        func = call.func
        if isinstance(func, ast.Name):
            bound = self.env.get(func.id)
            if bound is not None and bound.factory:
                if bound.kind == RAW:
                    site = RawSite(node=call, target=bound.target or "")
                    self.facts.raw_sites.append(site)
                    return Provenance(
                        RAW, target=bound.target, source=call
                    )
                if bound.kind == REGISTRY:
                    return Provenance(REGISTRY)
        if isinstance(func, ast.Attribute):
            if func.attr in IO_METHODS:
                self.facts.io_sites.append(
                    IoSite(node=call, description=f".{func.attr}(...)")
                )
                return UNKNOWN_PROV
            base = self._prov(func.value)
            if base.kind == REGISTRY and not base.factory:
                # Methods on registry objects (RngRegistry.watch_stream)
                # hand out registry streams.
                return Provenance(REGISTRY)
        return UNKNOWN_PROV

    # ------------------------------------------------------------ patterns
    def _claim_fallback_expr(self, expr: ast.AST) -> None:
        """Claim the raw site feeding a fallback arm, if there is one."""
        prov = self._prov(expr)
        if prov.kind == RAW and not prov.factory and prov.source is not None:
            self._claim_site(prov.source)

    def _claim_site(self, call: ast.Call) -> None:
        for site in self.facts.raw_sites:
            if site.node is call:
                site.claim = CLAIM_FALLBACK
                return

    def _claim_if_none_fallback(self, stmt: ast.If) -> None:
        """``if x is None: x = <raw>`` — raw may flow through a local."""
        test = stmt.test
        if not (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Is)
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value is None
        ):
            return
        guarded = test.left
        for inner in stmt.body:
            if not isinstance(inner, ast.Assign):
                continue
            if not any(
                ast.unparse(target) == ast.unparse(guarded)
                for target in inner.targets
            ):
                continue
            self._scan(inner.value)
            self._claim_fallback_expr(inner.value)

    def _record_return(self, stmt: ast.Return) -> None:
        value = stmt.value
        if value is None:
            return
        candidates: List[ast.AST] = [value]
        if isinstance(value, (ast.Tuple, ast.List)):
            candidates = list(value.elts)
        for candidate in candidates:
            prov = self._prov(candidate)
            if (
                prov.kind == RAW
                and not prov.factory
                and prov.source is not None
            ):
                for site in self.facts.raw_sites:
                    if site.node is prov.source:
                        self.facts.return_sites.append(
                            ReturnSite(node=stmt, site=site)
                        )
                        break


class ModuleDataflow:
    """Per-module intraprocedural analysis: one :class:`ScopeFacts` per
    function plus the ``<module>`` pseudo-scope."""

    def __init__(self, info: ModuleInfo, config: LintConfig) -> None:
        self.info = info
        self.config = config
        self.aliases = collect_aliases(info)
        self.scopes: List[ScopeFacts] = []
        self._analyze()

    def is_registry_target(self, dotted: str) -> bool:
        """Does ``dotted`` name something inside an allowed rng module?"""
        for module in self.config.rng_allowed_modules:
            if dotted == module or dotted.startswith(module + "."):
                return True
        return False

    def _analyze(self) -> None:
        info = self.info
        module_facts = ScopeFacts(qualname="<module>", node=None)
        _ScopeWalker(
            self, module_facts, list(info.tree.body), module_scope=True
        ).run()
        self.scopes.append(module_facts)
        for node in ast.walk(info.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                facts = ScopeFacts(
                    qualname=info.qualname_of(node.body[0])
                    if node.body
                    else node.name,
                    node=node,
                )
                _ScopeWalker(
                    self, facts, list(node.body), module_scope=False
                ).run()
                self.scopes.append(facts)

    def function_scopes(self) -> List[ScopeFacts]:
        return [scope for scope in self.scopes if scope.is_function]
