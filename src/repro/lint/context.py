"""Parsed-project context shared by every lint rule.

The context owns the expensive, rule-independent work: discovering source
files, parsing them once, mapping files to dotted module names, building
the project-internal import graph, and computing the *worker-reachable*
module set — the modules a shard worker process imports (transitively,
including lazy function-level imports) starting from the worker entry
modules.  Rules receive the context and stay pure AST visitors.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple


@dataclass(frozen=True)
class LintConfig:
    """What to scan and which modules are exempt from which family.

    The defaults describe this repository; tests parameterise them to run
    the same rules over synthetic fixture projects.
    """

    #: Repository root (the directory holding ``src/``).
    root: Path
    #: Package roots, relative to ``root``, scanned for ``*.py`` files.
    source_dirs: Tuple[str, ...] = ("src",)
    #: Modules allowed to construct generators directly: the registry
    #: itself.  Everything else must derive streams through it (legacy
    #: compat/fast shims are grandfathered via the baseline, not here).
    rng_allowed_modules: Tuple[str, ...] = ("repro.sim.rng",)
    #: Modules whose transitive imports define the worker-reachable set.
    worker_entry_modules: Tuple[str, ...] = ("repro.sim.shard",)
    #: ``(module, class)`` of the config dataclass and ``(module,
    #: function)`` of the compiler checked by the SPEC family.
    spec_config: Tuple[str, str] = ("repro.sim.config", "SimulationConfig")
    spec_compiler: Tuple[str, str] = ("repro.scenario.compiler", "compile_spec")
    #: Config fields the compiler is allowed to leave at their defaults.
    spec_allowed_fields: Tuple[str, ...] = ()

    def with_root(self, root: Path) -> "LintConfig":
        return LintConfig(
            root=root,
            source_dirs=self.source_dirs,
            rng_allowed_modules=self.rng_allowed_modules,
            worker_entry_modules=self.worker_entry_modules,
            spec_config=self.spec_config,
            spec_compiler=self.spec_compiler,
            spec_allowed_fields=self.spec_allowed_fields,
        )


@dataclass
class ModuleInfo:
    """One parsed source file."""

    module: str
    path: Path
    relpath: str
    tree: ast.Module
    #: node -> enclosing ClassDef/FunctionDef chain, filled lazily.
    _parents: Optional[Dict[int, ast.AST]] = field(default=None, repr=False)

    def parent_map(self) -> Dict[int, ast.AST]:
        if self._parents is None:
            parents: Dict[int, ast.AST] = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    parents[id(child)] = node
            self._parents = parents
        return self._parents

    def qualname_of(self, node: ast.AST) -> str:
        """Dotted qualname of the scope enclosing ``node`` (``"<module>"``
        at top level)."""
        parents = self.parent_map()
        names: List[str] = []
        current: Optional[ast.AST] = node
        while current is not None:
            if isinstance(
                current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                names.append(current.name)
            current = parents.get(id(current))
        if not names:
            return "<module>"
        return ".".join(reversed(names))

    def enclosing_function(self, node: ast.AST) -> Optional[ast.AST]:
        parents = self.parent_map()
        current: Optional[ast.AST] = parents.get(id(node))
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return current
            current = parents.get(id(current))
        return None

    def enclosing_class(self, node: ast.AST) -> Optional[ast.ClassDef]:
        parents = self.parent_map()
        current: Optional[ast.AST] = parents.get(id(node))
        while current is not None:
            if isinstance(current, ast.ClassDef):
                return current
            current = parents.get(id(current))
        return None


def resolve_import_from(
    module: str, is_package: bool, node: ast.ImportFrom
) -> Optional[str]:
    """Absolute module an ``ImportFrom`` pulls from, resolving relativity.

    ``module`` is the importing module's dotted name; ``is_package`` is
    whether it is a package ``__init__``.  Returns ``None`` when the
    relative import escapes the project root.
    """
    if node.level == 0:
        return node.module
    parts = module.split(".")
    anchor = parts if is_package else parts[:-1]
    up = node.level - 1
    if up > len(anchor):
        return None
    base = anchor[: len(anchor) - up]
    if node.module:
        base = base + node.module.split(".")
    return ".".join(base) if base else None


class LintContext:
    """Parsed project + import graph + worker-reachable module set.

    Also the memoisation point for the two dataflow layers: rules share one
    :class:`~repro.lint.dataflow.ModuleDataflow` per module and one
    :class:`~repro.lint.callgraph.CallGraph` per scan, so adding
    flow-sensitive rules does not multiply parse/walk cost.
    """

    def __init__(self, config: LintConfig) -> None:
        self.config = config
        self.modules: Dict[str, ModuleInfo] = {}
        self.errors: List[str] = []
        self._discover()
        self.import_graph = self._build_import_graph()
        self.worker_modules = self._reachable(config.worker_entry_modules)
        self._dataflow_cache: Dict[str, object] = {}
        self._callgraph: Optional[object] = None

    # ------------------------------------------------------------ dataflow
    def dataflow(self, info: ModuleInfo):
        """Memoised intraprocedural analysis of one module."""
        cached = self._dataflow_cache.get(info.module)
        if cached is None:
            from repro.lint.dataflow import ModuleDataflow

            cached = ModuleDataflow(info, self.config)
            self._dataflow_cache[info.module] = cached
        return cached

    def callgraph(self):
        """Memoised interprocedural summary over the whole project."""
        if self._callgraph is None:
            from repro.lint.callgraph import CallGraph

            self._callgraph = CallGraph(self)
        return self._callgraph

    # ----------------------------------------------------------- discovery
    def _discover(self) -> None:
        root = Path(self.config.root)
        for source_dir in self.config.source_dirs:
            base = root / source_dir
            if not base.is_dir():
                continue
            for path in sorted(base.rglob("*.py")):
                relpath = path.relative_to(root).as_posix()
                module = self._module_name(path, base)
                try:
                    tree = ast.parse(path.read_text(), filename=str(path))
                except SyntaxError as error:  # pragma: no cover - broken tree
                    self.errors.append(f"{relpath}: syntax error: {error}")
                    continue
                self.modules[module] = ModuleInfo(
                    module=module, path=path, relpath=relpath, tree=tree
                )

    @staticmethod
    def _module_name(path: Path, base: Path) -> str:
        parts = list(path.relative_to(base).with_suffix("").parts)
        if parts and parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts)

    # -------------------------------------------------------- import graph
    def _build_import_graph(self) -> Dict[str, Set[str]]:
        graph: Dict[str, Set[str]] = {}
        for module, info in self.modules.items():
            graph[module] = set()
            for node in ast.walk(info.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        self._add_edge(graph[module], alias.name)
                elif isinstance(node, ast.ImportFrom):
                    target = self._resolve_from(module, node)
                    if target is None:
                        continue
                    self._add_edge(graph[module], target)
                    # ``from pkg import sub`` may bind submodules.
                    for alias in node.names:
                        self._add_edge(graph[module], f"{target}.{alias.name}")
        return graph

    def _resolve_from(self, module: str, node: ast.ImportFrom) -> Optional[str]:
        is_package = self.modules[module].path.name == "__init__.py"
        return resolve_import_from(module, is_package, node)

    def _add_edge(self, edges: Set[str], target: Optional[str]) -> None:
        """Record ``target`` if it (or a parent package) is project-internal."""
        if not target:
            return
        parts = target.split(".")
        for end in range(len(parts), 0, -1):
            candidate = ".".join(parts[:end])
            if candidate in self.modules:
                edges.add(candidate)
                return

    def _reachable(self, entries: Sequence[str]) -> Set[str]:
        seen: Set[str] = set()
        frontier = [entry for entry in entries if entry in self.modules]
        while frontier:
            module = frontier.pop()
            if module in seen:
                continue
            seen.add(module)
            frontier.extend(self.import_graph.get(module, ()))
        return seen

    # ------------------------------------------------------------- helpers
    def iter_modules(self, only: Optional[Iterable[str]] = None):
        if only is None:
            yield from self.modules.values()
            return
        for name in only:
            info = self.modules.get(name)
            if info is not None:
                yield info


def numpy_random_aliases(tree: ast.Module) -> Dict[str, str]:
    """Names bound (at module level) to numpy / numpy.random objects.

    Returns a map from local name to the canonical dotted target, e.g.
    ``{"np": "numpy", "nr": "numpy.random", "default_rng":
    "numpy.random.default_rng"}``.  Only top-level imports are considered —
    the repo style — which keeps resolution trivially sound.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy" or alias.name.startswith("numpy."):
                    aliases[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
            if node.module == "numpy" or node.module.startswith("numpy."):
                for alias in node.names:
                    aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return aliases


def resolve_dotted(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Canonical dotted name of an attribute chain, through import aliases.

    ``np.random.default_rng`` with ``np -> numpy`` resolves to
    ``numpy.random.default_rng``; returns ``None`` for anything that is not
    a plain name/attribute chain rooted in a known alias or bare name.
    """
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(aliases.get(current.id, current.id))
    return ".".join(reversed(parts))
