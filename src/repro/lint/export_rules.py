"""Export canonicality: ``to_dict`` payloads must JSON round-trip.

Every exporter shares one contract (pinned by the runtime round-trip
tests): ``json.loads(json.dumps(d)) == d``.  Two static failure modes
break it — non-string mapping keys (json silently stringifies them, so the
round-trip *changes* the payload) and numpy scalars (json either rejects
them or serialises them as floats that no longer compare equal).

``EXP001``
    a dict key inside a ``to_dict`` method that is a non-string constant,
    or a dynamic key expression not visibly coerced via ``str(...)`` / an
    f-string.
``EXP002``
    a dict value inside a ``to_dict`` method that is a bare numpy
    reduction (``.mean()``, ``np.sum(...)``, ...) with no ``float()`` /
    ``int()`` / ``.item()`` coercion.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Tuple

from repro.lint.context import LintContext, numpy_random_aliases, resolve_dotted
from repro.lint.findings import Finding
from repro.lint.rules import Rule, register_rule

_EXPORT_METHOD_NAMES = ("to_dict",)

#: Reductions that return numpy scalars when applied to arrays.
_NUMPY_REDUCTIONS = {
    "mean", "sum", "max", "min", "std", "var", "prod", "ptp", "median",
    "nanmean", "nansum", "nanmax", "nanmin",
}

_COERCIONS = {"str", "int", "float", "bool", "repr", "format"}


def _export_functions(info) -> Iterator[ast.FunctionDef]:
    for node in ast.walk(info.tree):
        if (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node.name in _EXPORT_METHOD_NAMES
        ):
            yield node


def _dict_items(function: ast.AST) -> Iterator[Tuple[ast.AST, ast.AST]]:
    """(key, value) pairs of every dict literal/comprehension in scope."""
    for node in ast.walk(function):
        if isinstance(node, ast.Dict):
            for key, value in zip(node.keys, node.values):
                if key is not None:  # ``**spread`` has no key node
                    yield key, value
        elif isinstance(node, ast.DictComp):
            yield node.key, node.value


def _is_str_coerced(key: ast.AST) -> bool:
    if isinstance(key, ast.Constant):
        return isinstance(key.value, str)
    if isinstance(key, ast.JoinedStr):
        return True
    if isinstance(key, ast.Call) and isinstance(key.func, ast.Name):
        return key.func.id in ("str", "repr", "format")
    if isinstance(key, ast.Call) and isinstance(key.func, ast.Attribute):
        # "...".join(...), value.format(...), name.lower() and friends.
        return True
    if isinstance(key, ast.BinOp) and isinstance(key.op, ast.Add):
        # String concatenation of coerced parts.
        return _is_str_coerced(key.left) or _is_str_coerced(key.right)
    return False


@register_rule
class ExportKeyRule(Rule):
    rule_id = "EXP001"
    summary = "to_dict mapping key is not (provably) a string"
    hint = (
        "wrap the key in str(...) — json.dumps silently stringifies "
        "non-str keys, so the export would not round-trip"
    )

    def check(self, context: LintContext) -> Iterable[Finding]:
        for info in context.iter_modules():
            for function in _export_functions(info):
                for key, _ in _dict_items(function):
                    if isinstance(key, ast.Constant) and not isinstance(
                        key.value, str
                    ):
                        yield self.finding(
                            info,
                            key,
                            f"non-string constant key {key.value!r}",
                        )
                    elif not _is_str_coerced(key):
                        yield self.finding(
                            info,
                            key,
                            f"dynamic key {ast.unparse(key)!r} is not "
                            "visibly str-coerced",
                        )


@register_rule
class NumpyScalarLeakRule(Rule):
    rule_id = "EXP002"
    summary = "to_dict value may leak a numpy scalar"
    hint = (
        "coerce with float(...)/int(...) (or .item()) before export; "
        "numpy scalars break the JSON round-trip contract"
    )

    def check(self, context: LintContext) -> Iterable[Finding]:
        for info in context.iter_modules():
            aliases = numpy_random_aliases(info.tree)
            for function in _export_functions(info):
                for _, value in _dict_items(function):
                    reduction = self._bare_reduction(value, aliases)
                    if reduction is not None:
                        yield self.finding(
                            info,
                            value,
                            f"bare numpy reduction {reduction}(...) exported "
                            "without float()/int() coercion",
                        )

    @staticmethod
    def _bare_reduction(value: ast.AST, aliases: dict):
        if not isinstance(value, ast.Call):
            return None
        func = value.func
        if isinstance(func, ast.Attribute):
            dotted = resolve_dotted(func, aliases)
            if dotted is not None and dotted.startswith("numpy."):
                name = dotted.split(".")[-1]
                return f"np.{name}" if name in _NUMPY_REDUCTIONS else None
            if func.attr in _NUMPY_REDUCTIONS:
                return f".{func.attr}"
        return None
