"""Determinism & shard-safety static analysis (``repro lint``).

The repo's headline invariant — serial == sharded bit-identical playback —
rests on conventions no runtime check sees until a golden digest breaks:
randomness flows through the :mod:`repro.sim.rng` registry, worker task
payloads stay picklable data, shared-memory segments are unlink-paired, and
every ``to_dict`` export stays JSON-canonical.  This package enforces those
conventions *statically*, over the AST of ``src/``, before a single
simulation runs.

Five rule families (see ``docs/lint_rules.md`` for the full reference):

``RNG``
    randomness discipline — no ad-hoc generator construction outside the
    registry, no stdlib ``random``, no silent constant-seed fallbacks.
``SHARD``
    worker purity — modules a shard worker imports must not read mutable
    module state or the environment at call time, and task dataclasses
    must carry only picklable data fields.
``SHM``
    shared-memory lifecycle — every ``SharedMemory(create=True)`` site
    needs an idempotent ``close()``/``unlink()`` path.
``EXP``
    export canonicality — ``to_dict`` dict keys are strings, numpy scalars
    are coerced before export.
``SPEC``
    spec/config drift — every ``SimulationConfig`` field is set by
    ``compile_spec`` (or explicitly allowlisted).

A committed baseline (``tests/goldens/lint_baseline.json``) grandfathers
pre-existing findings so the CI gate starts green; new findings fail it.
``repro lint --schema`` additionally diffs the key-tree of every registry
scenario's ``RunResult.to_dict()`` against a committed snapshot.
"""

from repro.lint.baseline import Baseline, apply_baseline, load_baseline, save_baseline
from repro.lint.context import LintConfig, LintContext, ModuleInfo
from repro.lint.findings import Finding
from repro.lint.rules import ALL_RULES, Rule, run_rules
from repro.lint.schema import diff_key_trees, key_tree, snapshot_registry

__all__ = [
    "ALL_RULES",
    "Baseline",
    "Finding",
    "LintConfig",
    "LintContext",
    "ModuleInfo",
    "Rule",
    "apply_baseline",
    "diff_key_trees",
    "key_tree",
    "load_baseline",
    "run_rules",
    "save_baseline",
    "snapshot_registry",
]
