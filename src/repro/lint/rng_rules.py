"""RNG discipline: all randomness flows through :mod:`repro.sim.rng`.

The grouped engine's serial == sharded guarantee holds because every draw
comes from a stream derived from a structured key.  A generator constructed
anywhere else is order-dependent state; a ``default_rng(0)`` fallback
silently correlates every caller that forgot to pass a stream.

Since the baseline burned to zero these rules are flow-sensitive: the
intraprocedural pass of :mod:`repro.lint.dataflow` tracks generator
provenance through assignments, tuple unpacks, ``self._rng = ...`` stores
and factory aliases (``make = np.random.default_rng``), so a construction
cannot hide behind a local name.  Each raw construction site is *claimed*
by exactly one rule — fallback over return over plain construction — so
one defect yields one finding.

``RNG001``
    construction of a numpy generator (``default_rng``, ``Generator``,
    ``RandomState``, ``SeedSequence``) outside the registry module,
    including through a factory alias, or a legacy ``np.random.*``
    module-level draw.
``RNG002``
    stdlib ``random`` imported or used at all.
``RNG003``
    a ``rng=None`` parameter silently falling back to a locally
    constructed generator — directly (``rng or default_rng(0)``) or
    routed through a helper local (``fresh = default_rng(0); rng = rng
    if rng is not None else fresh``).
``RNG004``
    a function *returns* a raw generator, handing unregistered entropy to
    its callers (registry-derived returns are exempt).
"""

from __future__ import annotations

import ast
from typing import Iterable, Set

from repro.lint.context import LintContext, ModuleInfo
from repro.lint.dataflow import (
    CLAIM_CONSTRUCT,
    CLAIM_FALLBACK,
    CLAIM_RETURNED,
    ModuleDataflow,
)
from repro.lint.findings import Finding
from repro.lint.rules import Rule, register_rule


def _rng_modules(context: LintContext) -> Iterable[ModuleInfo]:
    """Scanned modules minus the sanctioned registry modules."""
    allowed: Set[str] = set(context.config.rng_allowed_modules)
    for info in context.iter_modules():
        if info.module in allowed:
            continue
        yield info


@register_rule
class RngConstructionRule(Rule):
    rule_id = "RNG001"
    summary = (
        "numpy generator constructed outside the repro.sim.rng registry"
    )
    hint = (
        "derive the stream from a structured key via repro.sim.rng "
        "(derive_stream / RngRegistry), or route a bit-stable legacy seed "
        "through legacy_stream"
    )

    def check(self, context: LintContext) -> Iterable[Finding]:
        for info in _rng_modules(context):
            flow: ModuleDataflow = context.dataflow(info)
            for scope in flow.scopes:
                for site in scope.raw_sites:
                    if site.claim != CLAIM_CONSTRUCT:
                        continue  # RNG003/RNG004 claimed it
                    yield self.finding(
                        info,
                        site.node,
                        f"np.random.{site.target}(...) constructed outside "
                        "the rng registry",
                    )
                for call, target in scope.legacy_draws:
                    yield self.finding(
                        info,
                        call,
                        f"module-level np.random.{target}(...) draws from "
                        "hidden global state",
                    )


@register_rule
class StdlibRandomRule(Rule):
    rule_id = "RNG002"
    summary = "stdlib random used (unseedable per-process global state)"
    hint = "use a numpy stream derived via repro.sim.rng instead"

    def check(self, context: LintContext) -> Iterable[Finding]:
        for info in context.iter_modules():
            for node in ast.walk(info.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        if alias.name == "random" or alias.name.startswith(
                            "random."
                        ):
                            yield self.finding(
                                info, node, "stdlib random imported"
                            )
                elif isinstance(node, ast.ImportFrom):
                    if node.level == 0 and node.module and (
                        node.module == "random"
                        or node.module.startswith("random.")
                    ):
                        yield self.finding(
                            info, node, "stdlib random imported"
                        )


@register_rule
class SilentRngFallbackRule(Rule):
    rule_id = "RNG003"
    summary = "rng=None parameter silently falls back to a local generator"
    hint = (
        "require the caller to pass a stream (raise on None) or derive one "
        "from a registry key; a constant-seed fallback correlates every "
        "caller that forgot"
    )

    def check(self, context: LintContext) -> Iterable[Finding]:
        for info in _rng_modules(context):
            flow: ModuleDataflow = context.dataflow(info)
            for scope in flow.scopes:
                for site in scope.raw_sites:
                    if site.claim != CLAIM_FALLBACK:
                        continue
                    rendered = ast.unparse(site.node)
                    yield self.finding(
                        info,
                        site.node,
                        f"silent fallback to {rendered} when no rng is "
                        "passed",
                    )


@register_rule
class ReturnedGeneratorRule(Rule):
    rule_id = "RNG004"
    summary = "function returns a generator constructed outside the registry"
    hint = (
        "return a registry-derived stream (repro.sim.rng.derive_stream / "
        "legacy_stream) or take the stream as a required parameter instead "
        "of minting unregistered entropy for callers"
    )

    def check(self, context: LintContext) -> Iterable[Finding]:
        for info in _rng_modules(context):
            flow: ModuleDataflow = context.dataflow(info)
            for scope in flow.scopes:
                for ret in scope.return_sites:
                    if ret.site.claim != CLAIM_RETURNED:
                        continue  # fallback claims outrank returns
                    rendered = ast.unparse(ret.site.node)
                    yield self.finding(
                        info,
                        ret.node,
                        "returns an unregistered generator "
                        f"({rendered})",
                    )
