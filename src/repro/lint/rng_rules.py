"""RNG discipline: all randomness flows through :mod:`repro.sim.rng`.

The grouped engine's serial == sharded guarantee holds because every draw
comes from a stream derived from a structured key.  A generator constructed
anywhere else is order-dependent state; a ``default_rng(0)`` fallback
silently correlates every caller that forgot to pass a stream.

``RNG001``
    direct construction of a numpy generator (``default_rng``,
    ``Generator``, ``RandomState``, ``SeedSequence``) or a legacy
    ``np.random.*`` module-level draw outside the registry module.
``RNG002``
    stdlib ``random`` imported or used at all.
``RNG003``
    a ``rng=None`` parameter silently falling back to a locally
    constructed generator (``rng if rng is not None else default_rng(0)``,
    ``rng or default_rng(0)``, or ``if rng is None: rng = default_rng(0)``).
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional, Set

from repro.lint.context import LintContext, numpy_random_aliases, resolve_dotted
from repro.lint.findings import Finding
from repro.lint.rules import Rule, register_rule

#: numpy.random entry points that construct a generator / entropy source.
_CONSTRUCTORS = {"default_rng", "Generator", "RandomState", "SeedSequence"}

#: Legacy module-level draw functions on ``numpy.random`` (global state).
_LEGACY_DRAWS = {
    "beta", "binomial", "choice", "exponential", "gamma", "normal",
    "permutation", "poisson", "rand", "randint", "randn", "random",
    "random_sample", "seed", "shuffle", "standard_normal", "uniform",
}


def _numpy_random_target(node: ast.Call, aliases: dict) -> Optional[str]:
    """``numpy.random.X`` name this call resolves to, if any."""
    dotted = resolve_dotted(node.func, aliases)
    if dotted is None or not dotted.startswith("numpy.random."):
        return None
    return dotted[len("numpy.random."):]


def _is_conditional_fallback(info, node: ast.Call) -> bool:
    """Is ``node`` the fallback branch of an rng-default pattern?"""
    parents = info.parent_map()
    parent = parents.get(id(node))
    if isinstance(parent, ast.IfExp) and parent.orelse is node:
        return True
    if isinstance(parent, ast.BoolOp) and isinstance(parent.op, ast.Or):
        return node in parent.values[1:]
    if isinstance(parent, ast.Assign):
        grand = parents.get(id(parent))
        if isinstance(grand, ast.If):
            test = grand.test
            if (
                isinstance(test, ast.Compare)
                and len(test.ops) == 1
                and isinstance(test.ops[0], ast.Is)
                and isinstance(test.comparators[0], ast.Constant)
                and test.comparators[0].value is None
            ):
                return True
    return False


@register_rule
class RngConstructionRule(Rule):
    rule_id = "RNG001"
    summary = (
        "numpy generator constructed outside the repro.sim.rng registry"
    )
    hint = (
        "derive the stream from a structured key via repro.sim.rng "
        "(derive_stream / RngRegistry), or baseline a legacy compat shim"
    )

    def check(self, context: LintContext) -> Iterable[Finding]:
        allowed: Set[str] = set(context.config.rng_allowed_modules)
        for info in context.iter_modules():
            if info.module in allowed:
                continue
            aliases = numpy_random_aliases(info.tree)
            for node in ast.walk(info.tree):
                if not isinstance(node, ast.Call):
                    continue
                target = _numpy_random_target(node, aliases)
                if target is None:
                    continue
                if target in _CONSTRUCTORS:
                    if _is_conditional_fallback(info, node):
                        continue  # RNG003's, reported once there
                    yield self.finding(
                        info,
                        node,
                        f"np.random.{target}(...) constructed outside the "
                        "rng registry",
                    )
                elif target in _LEGACY_DRAWS:
                    yield self.finding(
                        info,
                        node,
                        f"module-level np.random.{target}(...) draws from "
                        "hidden global state",
                    )


@register_rule
class StdlibRandomRule(Rule):
    rule_id = "RNG002"
    summary = "stdlib random used (unseedable per-process global state)"
    hint = "use a numpy stream derived via repro.sim.rng instead"

    def check(self, context: LintContext) -> Iterable[Finding]:
        for info in context.iter_modules():
            for node in ast.walk(info.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        if alias.name == "random" or alias.name.startswith(
                            "random."
                        ):
                            yield self.finding(
                                info, node, "stdlib random imported"
                            )
                elif isinstance(node, ast.ImportFrom):
                    if node.level == 0 and node.module and (
                        node.module == "random"
                        or node.module.startswith("random.")
                    ):
                        yield self.finding(
                            info, node, "stdlib random imported"
                        )


@register_rule
class SilentRngFallbackRule(Rule):
    rule_id = "RNG003"
    summary = "rng=None parameter silently falls back to a local generator"
    hint = (
        "require the caller to pass a stream (raise on None) or derive one "
        "from a registry key; a constant-seed fallback correlates every "
        "caller that forgot"
    )

    def check(self, context: LintContext) -> Iterable[Finding]:
        allowed: Set[str] = set(context.config.rng_allowed_modules)
        for info in context.iter_modules():
            if info.module in allowed:
                continue
            aliases = numpy_random_aliases(info.tree)
            for node in ast.walk(info.tree):
                if not isinstance(node, ast.Call):
                    continue
                target = _numpy_random_target(node, aliases)
                if target not in _CONSTRUCTORS:
                    continue
                if not _is_conditional_fallback(info, node):
                    continue
                rendered = ast.unparse(node)
                yield self.finding(
                    info,
                    node,
                    f"silent fallback to {rendered} when no rng is passed",
                )
