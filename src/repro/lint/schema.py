"""Export-schema snapshots: the key-tree of ``RunResult.to_dict()``.

The static EXP rules catch non-canonical *construction*; this runtime
companion pins the export *shape*.  ``key_tree`` reduces a JSON payload to
its structural skeleton — mapping keys, merged array element shapes, leaf
type names — so a committed snapshot per registry scenario detects silent
key additions/removals/retypings the moment they land, without pinning any
numeric value (golden digests already do that where bit-stability is the
contract).

Dynamic integer-like keys (per-cell / per-group / per-server ids) are
collapsed to the ``<id>`` wildcard: their *presence* is scenario shape,
their exact ids are population dynamics.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional

#: Wildcard used for dict keys that are all integer-like (dynamic ids).
ID_KEY = "<id>"


def _leaf_type(value) -> str:
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "float"
    if isinstance(value, str):
        return "str"
    return type(value).__name__


def _is_id_key(key: str) -> bool:
    if not isinstance(key, str):
        return False
    body = key[1:] if key.startswith("-") else key
    return body.isdigit()


def merge_key_trees(left, right):
    """Structural union of two key-trees.

    Leaves merge into sorted ``|``-joined type names (``"float|int"``), so
    a field that is int in one interval and float in another reads as a
    numeric leaf rather than a conflict.
    """
    if left is None:
        return right
    if right is None:
        return left
    if isinstance(left, dict) and isinstance(right, dict):
        merged = dict(left)
        for key, value in right.items():
            merged[key] = merge_key_trees(merged.get(key), value)
        return merged
    if isinstance(left, dict) or isinstance(right, dict):
        as_text = sorted(
            ("object" if isinstance(t, dict) else str(t)) for t in (left, right)
        )
        return "|".join(as_text)
    names = set(str(left).split("|")) | set(str(right).split("|"))
    return "|".join(sorted(names))


def key_tree(payload):
    """Structural skeleton of a JSON-style payload.

    * mappings -> ``{key: subtree}`` (integer-like keys collapse to
      ``"<id>"`` and their subtrees merge),
    * sequences -> ``{"[]": merged element subtree}`` (``{"[]": "empty"}``
      when there is nothing to merge),
    * scalars -> their JSON type name.
    """
    if isinstance(payload, dict):
        tree: Dict[str, object] = {}
        for key, value in payload.items():
            name = ID_KEY if _is_id_key(key) else str(key)
            subtree = key_tree(value)
            tree[name] = (
                merge_key_trees(tree[name], subtree) if name in tree else subtree
            )
        return tree
    if isinstance(payload, (list, tuple)):
        merged = None
        for item in payload:
            merged = merge_key_trees(merged, key_tree(item))
        return {"[]": merged if merged is not None else "empty"}
    return _leaf_type(payload)


def diff_key_trees(expected, actual, path: str = "") -> List[str]:
    """Human-readable structural differences, empty when shapes match."""
    problems: List[str] = []
    if isinstance(expected, dict) and isinstance(actual, dict):
        for key in sorted(expected):
            where = f"{path}.{key}" if path else key
            if key not in actual:
                problems.append(f"missing key {where!r}")
            else:
                problems.extend(diff_key_trees(expected[key], actual[key], where))
        for key in sorted(set(actual) - set(expected)):
            where = f"{path}.{key}" if path else key
            problems.append(f"unexpected key {where!r}")
        return problems
    if expected != actual:
        where = path or "<root>"
        problems.append(
            f"type changed at {where!r}: expected {expected!r}, got {actual!r}"
        )
    return problems


# ---------------------------------------------------------------- registry
def snapshot_registry(intervals: int = 1) -> Dict[str, object]:
    """Key-tree of every registry scenario's ``RunResult.to_dict()``.

    Runs each scenario for ``intervals`` run steps (shape does not depend
    on the horizon) and asserts the payload JSON round-trips while at it —
    the runtime counterpart of the EXP rules.
    """
    # Imported lazily: the lint package must stay importable (and fast)
    # without pulling the whole simulation stack in.
    from repro.scenario import ScenarioRunner, get_scenario, scenario_names

    trees: Dict[str, object] = {}
    for name in scenario_names():
        spec = get_scenario(name, {"num_intervals": intervals})
        payload = ScenarioRunner(spec).run().to_dict()
        if json.loads(json.dumps(payload)) != payload:
            raise AssertionError(
                f"scenario {name!r} export does not JSON round-trip"
            )
        trees[name] = key_tree(payload)
    return {"version": 1, "intervals": intervals, "scenarios": trees}


# -------------------------------------------------------------- benchmarks
def snapshot_bench_results(results_dir: Path) -> Dict[str, object]:
    """Key-tree of every committed benchmark result JSON, keyed by filename.

    Benchmark payloads are timing-laden and machine-dependent, so their
    *values* can never be golden — but their *shape* is the harness
    contract that CI assertions and plotting scripts consume.  The
    key-tree pins that shape the same way the registry snapshot pins
    ``RunResult`` exports.
    """
    trees: Dict[str, object] = {}
    for path in sorted(Path(results_dir).glob("*.json")):
        trees[path.name] = key_tree(json.loads(path.read_text()))
    return {"version": 1, "results": trees}


def diff_bench_snapshot(expected: dict, actual: dict) -> List[str]:
    """File-aware diff of two benchmark-results snapshots."""
    problems: List[str] = []
    expected_trees = expected.get("results", {})
    actual_trees = actual.get("results", {})
    for name in sorted(expected_trees):
        if name not in actual_trees:
            problems.append(
                f"benchmark result {name!r} disappeared from "
                "benchmarks/results/"
            )
            continue
        problems.extend(
            f"{name}: {problem}"
            for problem in diff_key_trees(expected_trees[name], actual_trees[name])
        )
    for name in sorted(set(actual_trees) - set(expected_trees)):
        problems.append(
            f"benchmark result {name!r} is new — commit an updated snapshot "
            "(repro lint --schema --update)"
        )
    return problems


def load_snapshot(path: Path) -> Optional[dict]:
    target = Path(path)
    if not target.exists():
        return None
    return json.loads(target.read_text())


def save_snapshot(path: Path, snapshot: dict) -> None:
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")


def diff_snapshot(expected: dict, actual: dict) -> List[str]:
    """Scenario-aware diff of two registry snapshots."""
    problems: List[str] = []
    expected_trees = expected.get("scenarios", {})
    actual_trees = actual.get("scenarios", {})
    for name in sorted(expected_trees):
        if name not in actual_trees:
            problems.append(f"scenario {name!r} disappeared from the registry")
            continue
        problems.extend(
            f"{name}: {problem}"
            for problem in diff_key_trees(expected_trees[name], actual_trees[name])
        )
    for name in sorted(set(actual_trees) - set(expected_trees)):
        problems.append(
            f"scenario {name!r} is new — commit an updated snapshot "
            "(repro lint --schema --update)"
        )
    return problems
