"""Per-user (unicast) demand prediction baseline.

The ablation "group-based vs per-user prediction" needs a predictor that
ignores multicast grouping entirely: every user is served by their own
unicast stream and their demand is predicted from their own digital-twin
data only.  Summing the per-user predictions gives the total radio demand
this strategy would reserve — typically far above the multicast figure,
because shared transmissions are not exploited.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.net.mcs import spectral_efficiency
from repro.net.multicast import resource_blocks_for_traffic
from repro.twin.attributes import CHANNEL_CONDITION
from repro.twin.manager import DigitalTwinManager
from repro.video.catalog import VideoCatalog


@dataclass
class PerUserPrediction:
    """Predicted unicast demand of a single user for the next interval."""

    user_id: int
    expected_videos: float
    expected_traffic_bits: float
    resource_blocks: float
    efficiency_bps_hz: float


class PerUserDemandPredictor:
    """Predicts each user's unicast radio demand from their own twin."""

    def __init__(
        self,
        catalog: VideoCatalog,
        interval_s: float = 300.0,
        rb_bandwidth_hz: float = 180e3,
        stream_bandwidth_hz: float = 1.8e6,
        implementation_loss: float = 0.9,
        swipe_gap_s: float = 0.5,
    ) -> None:
        if interval_s <= 0 or rb_bandwidth_hz <= 0 or stream_bandwidth_hz <= 0:
            raise ValueError("interval and bandwidths must be positive")
        self.catalog = catalog
        self.interval_s = interval_s
        self.rb_bandwidth_hz = rb_bandwidth_hz
        self.stream_bandwidth_hz = stream_bandwidth_hz
        self.implementation_loss = implementation_loss
        self.swipe_gap_s = swipe_gap_s

    def predict_user(
        self,
        user_id: int,
        twins: DigitalTwinManager,
        start_s: float,
        end_s: float,
    ) -> PerUserPrediction:
        """Predict one user's next-interval unicast demand from window ``[start, end)``."""
        twin = twins.twin(user_id)
        records = twin.watch_records(start_s, end_s)

        # Radio link: mean of the user's recent channel-condition samples.
        snr_samples = twin.store(CHANNEL_CONDITION).window_values(start_s, end_s)
        mean_snr = float(snr_samples.mean()) if snr_samples.size else 0.0
        efficiency = spectral_efficiency(mean_snr, implementation_loss=self.implementation_loss)
        ladder = self.catalog.reference_ladder()
        representation = ladder.best_fitting(efficiency * self.stream_bandwidth_hz)

        # Behaviour: mean watch duration and mean bits per watched video.
        if records:
            mean_watch = float(np.mean([r.watch_duration_s for r in records]))
            mean_bits = float(
                np.mean(
                    [
                        self.catalog.get(r.video_id).bits_watched(
                            representation, r.watch_duration_s
                        )
                        for r in records
                        if r.video_id in self.catalog
                    ]
                )
            )
        else:
            mean_watch = 10.0
            mean_bits = representation.bits_for_duration(mean_watch)

        slot = max(mean_watch + self.swipe_gap_s, 1e-3)
        expected_videos = self.interval_s / slot
        traffic = expected_videos * mean_bits
        blocks = resource_blocks_for_traffic(
            traffic,
            efficiency,
            rb_bandwidth_hz=self.rb_bandwidth_hz,
            interval_s=self.interval_s,
        )
        return PerUserPrediction(
            user_id=user_id,
            expected_videos=expected_videos,
            expected_traffic_bits=traffic,
            resource_blocks=blocks,
            efficiency_bps_hz=efficiency,
        )

    def predict_all(
        self,
        twins: DigitalTwinManager,
        start_s: float,
        end_s: float,
        user_ids: Optional[Sequence[int]] = None,
    ) -> Dict[int, PerUserPrediction]:
        ids = list(user_ids) if user_ids is not None else twins.user_ids()
        return {uid: self.predict_user(uid, twins, start_s, end_s) for uid in ids}

    def total_resource_blocks(self, predictions: Dict[int, PerUserPrediction]) -> float:
        finite = [p.resource_blocks for p in predictions.values() if np.isfinite(p.resource_blocks)]
        return float(sum(finite))
