"""Autoregressive and seasonal baseline predictors.

Two slightly stronger history-only baselines than the moving averages in
:mod:`repro.predict.baselines`:

* :class:`ARPredictor` -- an AR(p) model fitted by ordinary least squares on
  the observed demand series (re-fitted at every prediction, which is cheap
  at per-interval scale).
* :class:`SeasonalNaivePredictor` -- repeats the value observed one season
  ago (e.g. the same time yesterday), useful when demand has a daily
  pattern.

Like all predictors in this package they see only the scalar demand series;
no digital-twin information is used.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.predict.baselines import SeriesPredictor


class ARPredictor(SeriesPredictor):
    """Autoregressive model of order ``p`` fitted by least squares."""

    name = "ar"

    def __init__(self, order: int = 2, ridge: float = 1e-6) -> None:
        if order < 1:
            raise ValueError("order must be at least 1")
        if ridge < 0:
            raise ValueError("ridge must be non-negative")
        self.order = order
        self.ridge = ridge

    def _fit(self, history: np.ndarray) -> np.ndarray:
        """Return ``[c, a_1 .. a_p]`` fitted on the available history."""
        p = self.order
        rows = len(history) - p
        design = np.ones((rows, p + 1))
        for lag in range(1, p + 1):
            design[:, lag] = history[p - lag : len(history) - lag]
        targets = history[p:]
        gram = design.T @ design + self.ridge * np.eye(p + 1)
        return np.linalg.solve(gram, design.T @ targets)

    def predict_next(self, history: Sequence[float]) -> float:
        history = self._validate(history)
        if history.size <= self.order:
            # Not enough data to fit: fall back to the last value.
            return float(history[-1])
        coefficients = self._fit(history)
        lags = history[-self.order :][::-1]
        prediction = coefficients[0] + float(np.dot(coefficients[1:], lags))
        return float(max(prediction, 0.0))


class SeasonalNaivePredictor(SeriesPredictor):
    """Predict the value observed exactly one season (``period`` steps) ago."""

    name = "seasonal-naive"

    def __init__(self, period: int = 4) -> None:
        if period < 1:
            raise ValueError("period must be at least 1")
        self.period = period

    def predict_next(self, history: Sequence[float]) -> float:
        history = self._validate(history)
        if history.size < self.period:
            return float(history[-1])
        return float(history[-self.period])
