"""Baseline demand predictors.

The evaluation compares the DT-assisted scheme against simple history-based
predictors that see only the per-interval demand series (no digital twins,
no behaviour abstraction): last-value, moving-average, exponentially-weighted
moving average and a linear trend, plus a per-user (unicast) variant of the
group-level prediction.
"""

from repro.predict.autoregressive import ARPredictor, SeasonalNaivePredictor
from repro.predict.baselines import (
    EwmaPredictor,
    LastValuePredictor,
    LinearTrendPredictor,
    MeanPredictor,
    MovingAveragePredictor,
    SeriesPredictor,
)
from repro.predict.peruser import PerUserDemandPredictor

__all__ = [
    "ARPredictor",
    "EwmaPredictor",
    "LastValuePredictor",
    "LinearTrendPredictor",
    "MeanPredictor",
    "MovingAveragePredictor",
    "PerUserDemandPredictor",
    "SeasonalNaivePredictor",
    "SeriesPredictor",
]
