"""History-only time-series predictors.

Every predictor implements the same one-step-ahead interface: given the
demand observed in previous reservation intervals, predict the next
interval's demand.  They know nothing about users, twins or behaviour —
which is precisely why the DT-assisted scheme should beat them whenever the
population or its behaviour shifts.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


class SeriesPredictor:
    """One-step-ahead predictor over a scalar series."""

    #: Human-readable name used in benchmark tables.
    name: str = "base"

    def predict_next(self, history: Sequence[float]) -> float:
        """Predict the next value from ``history`` (oldest first)."""
        raise NotImplementedError

    def predict_series(self, series: Sequence[float], warmup: int = 1) -> np.ndarray:
        """Walk-forward predictions for ``series[warmup:]``.

        ``result[i]`` is the prediction for ``series[warmup + i]`` computed
        from ``series[:warmup + i]``.
        """
        series = np.asarray(series, dtype=np.float64)
        if warmup < 1:
            raise ValueError("warmup must be at least 1")
        if series.size <= warmup:
            raise ValueError("series must be longer than warmup")
        predictions = []
        for index in range(warmup, series.size):
            predictions.append(self.predict_next(series[:index]))
        return np.asarray(predictions)

    @staticmethod
    def _validate(history: Sequence[float]) -> np.ndarray:
        history = np.asarray(history, dtype=np.float64)
        if history.size == 0:
            raise ValueError("history must not be empty")
        return history


class LastValuePredictor(SeriesPredictor):
    """Predict the next interval equals the last observed interval."""

    name = "last-value"

    def predict_next(self, history: Sequence[float]) -> float:
        history = self._validate(history)
        return float(history[-1])


class MeanPredictor(SeriesPredictor):
    """Predict the running mean of the whole history."""

    name = "mean"

    def predict_next(self, history: Sequence[float]) -> float:
        history = self._validate(history)
        return float(history.mean())


class MovingAveragePredictor(SeriesPredictor):
    """Mean of the last ``window`` observations."""

    name = "moving-average"

    def __init__(self, window: int = 3) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window

    def predict_next(self, history: Sequence[float]) -> float:
        history = self._validate(history)
        return float(history[-self.window :].mean())


class EwmaPredictor(SeriesPredictor):
    """Exponentially weighted moving average."""

    name = "ewma"

    def __init__(self, alpha: float = 0.5) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha

    def predict_next(self, history: Sequence[float]) -> float:
        history = self._validate(history)
        estimate = float(history[0])
        for value in history[1:]:
            estimate = self.alpha * float(value) + (1.0 - self.alpha) * estimate
        return estimate


class LinearTrendPredictor(SeriesPredictor):
    """Least-squares linear extrapolation over the last ``window`` points."""

    name = "linear-trend"

    def __init__(self, window: int = 4) -> None:
        if window < 2:
            raise ValueError("window must be at least 2")
        self.window = window

    def predict_next(self, history: Sequence[float]) -> float:
        history = self._validate(history)
        tail = history[-self.window :]
        if tail.size < 2:
            return float(tail[-1])
        x = np.arange(tail.size, dtype=np.float64)
        slope, intercept = np.polyfit(x, tail, deg=1)
        prediction = slope * tail.size + intercept
        # Demand cannot be negative; clamp extrapolation.
        return float(max(prediction, 0.0))
