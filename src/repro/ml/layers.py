"""Neural-network layers with explicit forward / backward passes.

All layers operate on ``float64`` NumPy arrays.  Convolutional and pooling
layers use the *channels-last* layout ``(batch, length, channels)``, which
matches how the digital-twin time series are stored (one row per sampling
instant, one column per attribute).

Design notes
------------
* Trainable state lives in :class:`Parameter` objects so that optimisers can
  update weights without knowing anything about layer internals.
* ``forward`` caches whatever the corresponding ``backward`` needs; calling
  ``backward`` before ``forward`` raises a clear error instead of silently
  producing garbage.
* Every backward pass returns the gradient with respect to the layer input,
  allowing the :class:`repro.ml.network.Sequential` container to chain layers
  without any graph machinery.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.ml.initializers import glorot_uniform, he_uniform, zeros_init


class Parameter:
    """A trainable tensor together with its accumulated gradient."""

    def __init__(self, value: np.ndarray, name: str = "param") -> None:
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)
        self.name = name

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to zero."""
        self.grad.fill(0.0)

    @property
    def shape(self) -> tuple:
        return self.value.shape

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Parameter(name={self.name!r}, shape={self.value.shape})"


class Layer:
    """Base class for all layers."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def parameters(self) -> List[Parameter]:
        """Return the trainable parameters of this layer (may be empty)."""
        return []

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def __call__(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self.forward(x, training=training)

    def _require_cache(self, cache, name: str):
        if cache is None:
            raise RuntimeError(
                f"{type(self).__name__}.backward() called before forward(); "
                f"missing cached {name}"
            )
        return cache


class Dense(Layer):
    """Fully connected layer: ``y = x @ W + b``.

    Parameters
    ----------
    in_features, out_features:
        Input and output dimensionality.
    rng:
        Random generator used for weight initialisation.
    weight_init:
        Either ``"he"`` (default, for ReLU networks) or ``"glorot"``.
    use_bias:
        Whether to add a bias term.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        weight_init: str = "he",
        use_bias: bool = True,
    ) -> None:
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Dense layer dimensions must be positive")
        init = he_uniform if weight_init == "he" else glorot_uniform
        self.weight = Parameter(init((in_features, out_features), rng), name="dense.weight")
        self.use_bias = use_bias
        self.bias = Parameter(zeros_init((out_features,)), name="dense.bias") if use_bias else None
        self._input: Optional[np.ndarray] = None
        self.in_features = in_features
        self.out_features = out_features

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 1:
            x = x[None, :]
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"Dense expected input with {self.in_features} features, got {x.shape[-1]}"
            )
        self._input = x
        out = x @ self.weight.value
        if self.bias is not None:
            out = out + self.bias.value
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        x = self._require_cache(self._input, "input")
        grad_output = np.asarray(grad_output, dtype=np.float64)
        self.weight.grad += x.T @ grad_output
        if self.bias is not None:
            self.bias.grad += grad_output.sum(axis=0)
        return grad_output @ self.weight.value.T

    def parameters(self) -> List[Parameter]:
        params = [self.weight]
        if self.bias is not None:
            params.append(self.bias)
        return params


def _sliding_windows(x: np.ndarray, kernel_size: int, stride: int) -> np.ndarray:
    """Return windows of shape ``(batch, out_len, kernel, channels)``.

    Implemented with fancy indexing rather than stride tricks to keep the
    code obviously correct; the tensors involved here are small (tens of
    users, short digital-twin histories).
    """
    batch, length, channels = x.shape
    out_len = (length - kernel_size) // stride + 1
    if out_len <= 0:
        raise ValueError(
            f"input length {length} too short for kernel {kernel_size} with stride {stride}"
        )
    starts = np.arange(out_len) * stride
    idx = starts[:, None] + np.arange(kernel_size)[None, :]
    windows = x[:, idx, :]  # (batch, out_len, kernel, channels)
    return windows


class Conv1D(Layer):
    """1-D convolution over the time axis (channels-last layout).

    Input shape ``(batch, length, in_channels)``; output shape
    ``(batch, out_length, out_channels)`` with ``out_length = (length + 2 *
    padding - kernel_size) // stride + 1``.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        rng: np.random.Generator,
        stride: int = 1,
        padding: int = 0,
        use_bias: bool = True,
    ) -> None:
        if kernel_size <= 0 or stride <= 0 or padding < 0:
            raise ValueError("kernel_size and stride must be positive, padding non-negative")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.weight = Parameter(
            he_uniform((kernel_size, in_channels, out_channels), rng), name="conv1d.weight"
        )
        self.bias = Parameter(zeros_init((out_channels,)), name="conv1d.bias") if use_bias else None
        self._windows: Optional[np.ndarray] = None
        self._input_shape: Optional[tuple] = None

    def _pad(self, x: np.ndarray) -> np.ndarray:
        if self.padding == 0:
            return x
        return np.pad(x, ((0, 0), (self.padding, self.padding), (0, 0)))

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 3:
            raise ValueError(f"Conv1D expects (batch, length, channels); got shape {x.shape}")
        if x.shape[2] != self.in_channels:
            raise ValueError(
                f"Conv1D expected {self.in_channels} input channels, got {x.shape[2]}"
            )
        self._input_shape = x.shape
        padded = self._pad(x)
        windows = _sliding_windows(padded, self.kernel_size, self.stride)
        self._windows = windows
        # windows: (B, O, K, Cin); weight: (K, Cin, Cout) -> out: (B, O, Cout)
        out = np.einsum("bokc,kcd->bod", windows, self.weight.value)
        if self.bias is not None:
            out = out + self.bias.value
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        windows = self._require_cache(self._windows, "input windows")
        input_shape = self._require_cache(self._input_shape, "input shape")
        grad_output = np.asarray(grad_output, dtype=np.float64)
        # Weight gradient: sum over batch and output positions.
        self.weight.grad += np.einsum("bokc,bod->kcd", windows, grad_output)
        if self.bias is not None:
            self.bias.grad += grad_output.sum(axis=(0, 1))
        # Input gradient: scatter each window's contribution back.
        batch, length, channels = input_shape
        padded_len = length + 2 * self.padding
        grad_padded = np.zeros((batch, padded_len, channels), dtype=np.float64)
        # contribution per window: (B, O, K, Cin)
        grad_windows = np.einsum("bod,kcd->bokc", grad_output, self.weight.value)
        out_len = grad_output.shape[1]
        starts = np.arange(out_len) * self.stride
        for o, start in enumerate(starts):
            grad_padded[:, start : start + self.kernel_size, :] += grad_windows[:, o, :, :]
        if self.padding:
            grad_padded = grad_padded[:, self.padding : padded_len - self.padding, :]
        return grad_padded

    def parameters(self) -> List[Parameter]:
        params = [self.weight]
        if self.bias is not None:
            params.append(self.bias)
        return params


class MaxPool1D(Layer):
    """Max pooling over the time axis (channels-last layout)."""

    def __init__(self, pool_size: int = 2, stride: Optional[int] = None) -> None:
        if pool_size <= 0:
            raise ValueError("pool_size must be positive")
        self.pool_size = pool_size
        self.stride = stride if stride is not None else pool_size
        self._input_shape: Optional[tuple] = None
        self._argmax: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 3:
            raise ValueError(f"MaxPool1D expects (batch, length, channels); got {x.shape}")
        self._input_shape = x.shape
        windows = _sliding_windows(x, self.pool_size, self.stride)
        self._argmax = windows.argmax(axis=2)  # (B, O, C)
        return windows.max(axis=2)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        shape = self._require_cache(self._input_shape, "input shape")
        argmax = self._require_cache(self._argmax, "argmax indices")
        grad_output = np.asarray(grad_output, dtype=np.float64)
        batch, length, channels = shape
        grad_input = np.zeros(shape, dtype=np.float64)
        out_len = grad_output.shape[1]
        b_idx = np.arange(batch)[:, None, None]
        c_idx = np.arange(channels)[None, None, :]
        starts = (np.arange(out_len) * self.stride)[None, :, None]
        positions = starts + argmax  # (B, O, C)
        np.add.at(grad_input, (b_idx, positions, c_idx), grad_output)
        return grad_input


class GlobalAveragePool1D(Layer):
    """Average over the time axis, producing one value per channel."""

    def __init__(self) -> None:
        self._input_shape: Optional[tuple] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 3:
            raise ValueError(f"GlobalAveragePool1D expects 3-D input; got {x.shape}")
        self._input_shape = x.shape
        return x.mean(axis=1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        shape = self._require_cache(self._input_shape, "input shape")
        batch, length, channels = shape
        grad_output = np.asarray(grad_output, dtype=np.float64)
        return np.repeat(grad_output[:, None, :], length, axis=1) / float(length)


class Flatten(Layer):
    """Flatten all dimensions except the batch dimension."""

    def __init__(self) -> None:
        self._input_shape: Optional[tuple] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        self._input_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        shape = self._require_cache(self._input_shape, "input shape")
        return np.asarray(grad_output, dtype=np.float64).reshape(shape)


class ReLU(Layer):
    """Rectified linear unit activation."""

    def __init__(self) -> None:
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        mask = self._require_cache(self._mask, "activation mask")
        return np.asarray(grad_output, dtype=np.float64) * mask


class LeakyReLU(Layer):
    """Leaky ReLU with configurable negative slope."""

    def __init__(self, negative_slope: float = 0.01) -> None:
        if negative_slope < 0:
            raise ValueError("negative_slope must be non-negative")
        self.negative_slope = negative_slope
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        self._mask = x > 0
        return np.where(self._mask, x, self.negative_slope * x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        mask = self._require_cache(self._mask, "activation mask")
        grad_output = np.asarray(grad_output, dtype=np.float64)
        return np.where(mask, grad_output, self.negative_slope * grad_output)


class Tanh(Layer):
    """Hyperbolic tangent activation."""

    def __init__(self) -> None:
        self._output: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = np.tanh(np.asarray(x, dtype=np.float64))
        self._output = out
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        out = self._require_cache(self._output, "activation output")
        return np.asarray(grad_output, dtype=np.float64) * (1.0 - out * out)


class Sigmoid(Layer):
    """Logistic sigmoid activation."""

    def __init__(self) -> None:
        self._output: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        out = 1.0 / (1.0 + np.exp(-x))
        self._output = out
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        out = self._require_cache(self._output, "activation output")
        return np.asarray(grad_output, dtype=np.float64) * out * (1.0 - out)


class Dropout(Layer):
    """Inverted dropout; a no-op outside of training."""

    def __init__(self, rate: float, rng: np.random.Generator) -> None:
        if not 0.0 <= rate < 1.0:
            raise ValueError("dropout rate must be in [0, 1)")
        self.rate = rate
        self.rng = rng
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if not training or self.rate == 0.0:
            self._mask = np.ones_like(x)
            return x
        keep = 1.0 - self.rate
        self._mask = (self.rng.random(x.shape) < keep).astype(np.float64) / keep
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        mask = self._require_cache(self._mask, "dropout mask")
        return np.asarray(grad_output, dtype=np.float64) * mask


def count_parameters(layers: Iterable[Layer]) -> int:
    """Total number of scalar trainable parameters across ``layers``."""
    return sum(int(np.prod(p.shape)) for layer in layers for p in layer.parameters())
