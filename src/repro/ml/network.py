"""Sequential network container with simple training helpers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence

import numpy as np

from repro.ml.layers import Layer, Parameter
from repro.ml.losses import Loss, MSELoss
from repro.ml.optim import Adam, Optimizer


@dataclass
class TrainingHistory:
    """Per-epoch loss curve recorded by :meth:`Sequential.fit`."""

    train_loss: List[float] = field(default_factory=list)
    validation_loss: List[float] = field(default_factory=list)

    def last(self) -> float:
        if not self.train_loss:
            raise ValueError("no epochs recorded")
        return self.train_loss[-1]

    def improved(self, patience: int, min_delta: float = 1e-6) -> bool:
        """Whether the training loss improved within the last ``patience`` epochs."""
        curve = self.validation_loss if self.validation_loss else self.train_loss
        if len(curve) <= patience:
            return True
        recent_best = min(curve[-patience:])
        previous_best = min(curve[:-patience])
        return recent_best < previous_best - min_delta


class Sequential:
    """A feed-forward stack of layers.

    The container chains ``forward`` calls in order and ``backward`` calls in
    reverse, which is all the 1D-CNN compressor and DDQN Q-networks require.
    """

    def __init__(self, layers: Sequence[Layer]) -> None:
        self.layers: List[Layer] = list(layers)
        if not self.layers:
            raise ValueError("Sequential requires at least one layer")

    # ------------------------------------------------------------------ core
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = np.asarray(x, dtype=np.float64)
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = np.asarray(grad_output, dtype=np.float64)
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def __call__(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self.forward(x, training=training)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Run a forward pass in inference mode (dropout disabled)."""
        return self.forward(x, training=False)

    # ------------------------------------------------------------ parameters
    def parameters(self) -> List[Parameter]:
        return [p for layer in self.layers for p in layer.parameters()]

    def zero_grad(self) -> None:
        for layer in self.layers:
            layer.zero_grad()

    def num_parameters(self) -> int:
        return sum(int(np.prod(p.shape)) for p in self.parameters())

    # -------------------------------------------------------- weight copying
    def get_weights(self) -> List[np.ndarray]:
        """Return copies of all parameter values (used for target networks)."""
        return [p.value.copy() for p in self.parameters()]

    def set_weights(self, weights: Iterable[np.ndarray]) -> None:
        weights = list(weights)
        params = self.parameters()
        if len(weights) != len(params):
            raise ValueError(
                f"expected {len(params)} weight arrays, got {len(weights)}"
            )
        for param, value in zip(params, weights):
            if param.value.shape != value.shape:
                raise ValueError(
                    f"shape mismatch for {param.name}: {param.value.shape} vs {value.shape}"
                )
            param.value = value.copy()

    def copy_weights_from(self, other: "Sequential") -> None:
        """Hard-copy weights from ``other`` (e.g. online -> target network)."""
        self.set_weights(other.get_weights())

    def soft_update_from(self, other: "Sequential", tau: float) -> None:
        """Polyak averaging: ``theta <- tau * theta_other + (1 - tau) * theta``."""
        if not 0.0 < tau <= 1.0:
            raise ValueError("tau must be in (0, 1]")
        for mine, theirs in zip(self.parameters(), other.parameters()):
            mine.value = (1.0 - tau) * mine.value + tau * theirs.value

    # --------------------------------------------------------------- training
    def train_batch(
        self,
        x: np.ndarray,
        y: np.ndarray,
        loss: Loss,
        optimizer: Optimizer,
        grad_clip: Optional[float] = None,
    ) -> float:
        """Run one optimisation step on a single mini-batch and return the loss."""
        optimizer.zero_grad()
        prediction = self.forward(x, training=True)
        value = loss.value(prediction, y)
        grad = loss.gradient(prediction, y)
        self.backward(grad)
        if grad_clip is not None:
            optimizer.clip_gradients(grad_clip)
        optimizer.step()
        return value

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int = 10,
        batch_size: int = 32,
        loss: Optional[Loss] = None,
        optimizer: Optional[Optimizer] = None,
        rng: Optional[np.random.Generator] = None,
        validation_data: Optional[tuple] = None,
        grad_clip: Optional[float] = None,
        callback: Optional[Callable[[int, float], None]] = None,
    ) -> TrainingHistory:
        """Train with mini-batch gradient descent.

        Parameters mirror the familiar Keras-style ``fit`` signature; the
        defaults (MSE + Adam) suit the regression-style objectives used in
        the reproduction.  ``rng`` drives the per-epoch shuffle and is
        required: a hidden constant-seed fallback would correlate every
        caller that forgot to pass a stream.
        """
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.shape[0] != y.shape[0]:
            raise ValueError("x and y must have the same number of samples")
        if epochs <= 0 or batch_size <= 0:
            raise ValueError("epochs and batch_size must be positive")
        if rng is None:
            raise ValueError(
                "fit() requires an explicit rng; pass np.random.default_rng(0) "
                "to reproduce the former implicit shuffle stream"
            )
        loss = loss if loss is not None else MSELoss()
        optimizer = optimizer if optimizer is not None else Adam(self.parameters())

        history = TrainingHistory()
        n = x.shape[0]
        for epoch in range(epochs):
            order = rng.permutation(n)
            epoch_losses = []
            for start in range(0, n, batch_size):
                batch_idx = order[start : start + batch_size]
                batch_loss = self.train_batch(
                    x[batch_idx], y[batch_idx], loss, optimizer, grad_clip=grad_clip
                )
                epoch_losses.append(batch_loss)
            mean_loss = float(np.mean(epoch_losses))
            history.train_loss.append(mean_loss)
            if validation_data is not None:
                val_x, val_y = validation_data
                val_pred = self.predict(np.asarray(val_x, dtype=np.float64))
                history.validation_loss.append(loss.value(val_pred, np.asarray(val_y)))
            if callback is not None:
                callback(epoch, mean_loss)
        return history
