"""Loss functions for the NumPy neural-network framework.

Each loss exposes ``value(prediction, target)`` returning a scalar and
``gradient(prediction, target)`` returning the derivative with respect to
the prediction, averaged over the batch so that learning rates are
independent of batch size.
"""

from __future__ import annotations

import numpy as np


class Loss:
    """Base class for losses."""

    def value(self, prediction: np.ndarray, target: np.ndarray) -> float:
        raise NotImplementedError

    def gradient(self, prediction: np.ndarray, target: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    @staticmethod
    def _validate(prediction: np.ndarray, target: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        prediction = np.asarray(prediction, dtype=np.float64)
        target = np.asarray(target, dtype=np.float64)
        if prediction.shape != target.shape:
            raise ValueError(
                f"prediction shape {prediction.shape} does not match target shape {target.shape}"
            )
        return prediction, target


class MSELoss(Loss):
    """Mean squared error, averaged over every element of the batch."""

    def value(self, prediction: np.ndarray, target: np.ndarray) -> float:
        prediction, target = self._validate(prediction, target)
        return float(np.mean((prediction - target) ** 2))

    def gradient(self, prediction: np.ndarray, target: np.ndarray) -> np.ndarray:
        prediction, target = self._validate(prediction, target)
        return 2.0 * (prediction - target) / prediction.size


class HuberLoss(Loss):
    """Huber loss; quadratic near zero, linear in the tails.

    Used for DDQN temporal-difference targets, where occasional large TD
    errors would otherwise destabilise training with a pure MSE objective.
    """

    def __init__(self, delta: float = 1.0) -> None:
        if delta <= 0:
            raise ValueError("delta must be positive")
        self.delta = float(delta)

    def value(self, prediction: np.ndarray, target: np.ndarray) -> float:
        prediction, target = self._validate(prediction, target)
        error = prediction - target
        abs_error = np.abs(error)
        quadratic = np.minimum(abs_error, self.delta)
        linear = abs_error - quadratic
        return float(np.mean(0.5 * quadratic**2 + self.delta * linear))

    def gradient(self, prediction: np.ndarray, target: np.ndarray) -> np.ndarray:
        prediction, target = self._validate(prediction, target)
        error = prediction - target
        grad = np.clip(error, -self.delta, self.delta)
        return grad / prediction.size


class CrossEntropyLoss(Loss):
    """Softmax cross-entropy over the last axis.

    ``prediction`` holds unnormalised logits; ``target`` holds one-hot (or
    soft) label distributions of the same shape.
    """

    @staticmethod
    def _softmax(logits: np.ndarray) -> np.ndarray:
        shifted = logits - logits.max(axis=-1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=-1, keepdims=True)

    def value(self, prediction: np.ndarray, target: np.ndarray) -> float:
        prediction, target = self._validate(prediction, target)
        probs = self._softmax(prediction)
        eps = 1e-12
        batch = prediction.shape[0] if prediction.ndim > 1 else 1
        return float(-np.sum(target * np.log(probs + eps)) / batch)

    def gradient(self, prediction: np.ndarray, target: np.ndarray) -> np.ndarray:
        prediction, target = self._validate(prediction, target)
        probs = self._softmax(prediction)
        batch = prediction.shape[0] if prediction.ndim > 1 else 1
        return (probs - target) / batch
