"""Gradient-descent optimisers.

Optimisers hold references to :class:`repro.ml.layers.Parameter` objects and
update their ``value`` in place from the accumulated ``grad`` on every call
to :meth:`Optimizer.step`.  Gradients are *not* cleared automatically; the
:class:`repro.ml.network.Sequential` training helpers call ``zero_grad``
explicitly, which keeps gradient accumulation available for users that want
larger effective batch sizes.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.ml.layers import Parameter


class Optimizer:
    """Base optimiser interface."""

    def __init__(self, parameters: Sequence[Parameter], learning_rate: float) -> None:
        if learning_rate <= 0:
            raise ValueError("learning rate must be positive")
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        self.learning_rate = float(learning_rate)

    def step(self) -> None:
        raise NotImplementedError

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def clip_gradients(self, max_norm: float) -> float:
        """Scale all gradients so their joint L2 norm is at most ``max_norm``.

        Returns the pre-clipping norm, which training loops can log to track
        stability.
        """
        if max_norm <= 0:
            raise ValueError("max_norm must be positive")
        total = float(np.sqrt(sum(float(np.sum(p.grad**2)) for p in self.parameters)))
        if total > max_norm and total > 0:
            scale = max_norm / total
            for param in self.parameters:
                param.grad *= scale
        return total


class SGD(Optimizer):
    """Plain stochastic gradient descent."""

    def step(self) -> None:
        for param in self.parameters:
            param.value -= self.learning_rate * param.grad


class MomentumSGD(Optimizer):
    """SGD with classical momentum."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        learning_rate: float,
        momentum: float = 0.9,
    ) -> None:
        super().__init__(parameters, learning_rate)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = float(momentum)
        self._velocity = [np.zeros_like(p.value) for p in self.parameters]

    def step(self) -> None:
        for velocity, param in zip(self._velocity, self.parameters):
            velocity *= self.momentum
            velocity -= self.learning_rate * param.grad
            param.value += velocity


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        super().__init__(parameters, learning_rate)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.epsilon = float(epsilon)
        self._m = [np.zeros_like(p.value) for p in self.parameters]
        self._v = [np.zeros_like(p.value) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for m, v, param in zip(self._m, self._v, self.parameters):
            m *= self.beta1
            m += (1.0 - self.beta1) * param.grad
            v *= self.beta2
            v += (1.0 - self.beta2) * param.grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            param.value -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)


def build_optimizer(
    name: str,
    parameters: Sequence[Parameter],
    learning_rate: float,
    momentum: Optional[float] = None,
) -> Optimizer:
    """Factory used by configuration-driven training code."""
    name = name.lower()
    if name == "sgd":
        return SGD(parameters, learning_rate)
    if name in {"momentum", "momentum_sgd"}:
        return MomentumSGD(parameters, learning_rate, momentum if momentum is not None else 0.9)
    if name == "adam":
        return Adam(parameters, learning_rate)
    raise ValueError(f"unknown optimizer {name!r}; expected one of: sgd, momentum, adam")
