"""Numerical gradient checking utilities.

The test-suite validates every layer's analytic backward pass against central
finite differences.  Keeping the checker in the library (rather than only in
the tests) also lets downstream users verify custom layers they add.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.ml.layers import Layer
from repro.ml.network import Sequential


def numerical_gradient(
    func: Callable[[np.ndarray], float],
    x: np.ndarray,
    epsilon: float = 1e-6,
) -> np.ndarray:
    """Central finite-difference gradient of a scalar function of an array."""
    x = np.asarray(x, dtype=np.float64)
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        original = x[idx]
        x[idx] = original + epsilon
        plus = func(x)
        x[idx] = original - epsilon
        minus = func(x)
        x[idx] = original
        grad[idx] = (plus - minus) / (2.0 * epsilon)
        it.iternext()
    return grad


def relative_error(analytic: np.ndarray, numeric: np.ndarray) -> float:
    """Max relative error between two gradient arrays (0 when both are 0)."""
    analytic = np.asarray(analytic, dtype=np.float64)
    numeric = np.asarray(numeric, dtype=np.float64)
    denominator = np.maximum(np.abs(analytic) + np.abs(numeric), 1e-8)
    return float(np.max(np.abs(analytic - numeric) / denominator))


def check_layer_input_gradient(
    layer: Layer,
    x: np.ndarray,
    epsilon: float = 1e-6,
) -> float:
    """Compare the layer's input gradient with finite differences.

    Uses ``0.5 * sum(output^2)`` as the scalar objective, whose gradient with
    respect to the layer output is simply the output itself.

    Returns the maximum relative error.
    """
    x = np.asarray(x, dtype=np.float64)

    def objective(inp: np.ndarray) -> float:
        out = layer.forward(inp, training=False)
        return 0.5 * float(np.sum(out**2))

    out = layer.forward(x, training=False)
    analytic = layer.backward(out)
    numeric = numerical_gradient(objective, x.copy(), epsilon=epsilon)
    return relative_error(analytic, numeric)


def check_layer_parameter_gradients(
    layer: Layer,
    x: np.ndarray,
    epsilon: float = 1e-6,
) -> float:
    """Compare parameter gradients with finite differences.

    Returns the maximum relative error across all parameters of the layer;
    returns 0.0 for parameter-free layers.
    """
    x = np.asarray(x, dtype=np.float64)
    params = layer.parameters()
    if not params:
        return 0.0

    layer.zero_grad()
    out = layer.forward(x, training=False)
    layer.backward(out)
    worst = 0.0
    for param in params:
        analytic = param.grad.copy()

        def objective(values: np.ndarray, _param=param) -> float:
            original = _param.value
            _param.value = values
            out_local = layer.forward(x, training=False)
            _param.value = original
            return 0.5 * float(np.sum(out_local**2))

        numeric = numerical_gradient(objective, param.value.copy(), epsilon=epsilon)
        worst = max(worst, relative_error(analytic, numeric))
    return worst


def check_network_gradients(
    network: Sequential,
    x: np.ndarray,
    y: np.ndarray,
    loss,
    epsilon: float = 1e-6,
) -> float:
    """End-to-end gradient check of a network against a loss function."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)

    network.zero_grad()
    prediction = network.forward(x, training=False)
    grad = loss.gradient(prediction, y)
    network.backward(grad)

    worst = 0.0
    for param in network.parameters():
        analytic = param.grad.copy()

        def objective(values: np.ndarray, _param=param) -> float:
            original = _param.value
            _param.value = values
            pred_local = network.forward(x, training=False)
            _param.value = original
            return loss.value(pred_local, y)

        numeric = numerical_gradient(objective, param.value.copy(), epsilon=epsilon)
        worst = max(worst, relative_error(analytic, numeric))
    return worst
