"""Minimal NumPy neural-network framework used by the reproduction.

The paper trains a 1D-CNN (to compress time-series user-digital-twin data)
and a double deep Q-network (to select the multicast grouping number).
PyTorch is not available in the offline environment, so this subpackage
provides the small set of building blocks those two models need:

* :mod:`repro.ml.layers` -- trainable and activation layers with explicit
  ``forward`` / ``backward`` passes (Dense, Conv1D, pooling, dropout, ...).
* :mod:`repro.ml.losses` -- mean-squared-error, Huber and cross-entropy
  losses.
* :mod:`repro.ml.optim` -- SGD, momentum SGD and Adam optimisers.
* :mod:`repro.ml.network` -- a ``Sequential`` container with ``fit`` /
  ``predict`` helpers.
* :mod:`repro.ml.initializers` -- weight initialisation schemes.
* :mod:`repro.ml.gradcheck` -- numerical gradient checking used by the
  test-suite to validate every analytic backward pass.

The framework is intentionally small but fully functional: every layer
implements an exact analytic gradient which is verified against finite
differences in the test-suite.
"""

from repro.ml.initializers import (
    glorot_uniform,
    he_uniform,
    normal_init,
    zeros_init,
)
from repro.ml.layers import (
    Conv1D,
    Dense,
    Dropout,
    Flatten,
    GlobalAveragePool1D,
    Layer,
    LeakyReLU,
    MaxPool1D,
    Parameter,
    ReLU,
    Sigmoid,
    Tanh,
)
from repro.ml.losses import CrossEntropyLoss, HuberLoss, Loss, MSELoss
from repro.ml.network import Sequential
from repro.ml.optim import SGD, Adam, MomentumSGD, Optimizer

__all__ = [
    "Adam",
    "Conv1D",
    "CrossEntropyLoss",
    "Dense",
    "Dropout",
    "Flatten",
    "GlobalAveragePool1D",
    "HuberLoss",
    "Layer",
    "LeakyReLU",
    "Loss",
    "MSELoss",
    "MaxPool1D",
    "MomentumSGD",
    "Optimizer",
    "Parameter",
    "ReLU",
    "SGD",
    "Sequential",
    "Sigmoid",
    "Tanh",
    "glorot_uniform",
    "he_uniform",
    "normal_init",
    "zeros_init",
]
