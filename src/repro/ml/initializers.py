"""Weight initialisation schemes for the NumPy neural-network framework.

Each initialiser is a plain function taking the desired ``shape`` and a
:class:`numpy.random.Generator`, and returning a float64 array.  Keeping
initialisers as free functions (rather than classes) makes layers easy to
construct and keeps the random source explicit, which matters for the
reproducibility guarantees the benchmark harness relies on.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np


def _fan_in_out(shape: Sequence[int]) -> tuple[int, int]:
    """Compute fan-in / fan-out for a weight tensor.

    For a dense layer weight of shape ``(in, out)`` the fans are simply the
    two dimensions.  For a 1-D convolution kernel of shape
    ``(kernel, in_channels, out_channels)`` the receptive-field size
    multiplies both fans, matching the convention used by PyTorch and Keras.
    """
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    receptive = int(np.prod(shape[:-2]))
    fan_in = shape[-2] * receptive
    fan_out = shape[-1] * receptive
    return fan_in, fan_out


def zeros_init(shape: Sequence[int], rng: np.random.Generator | None = None) -> np.ndarray:
    """Return an all-zero array; the standard choice for bias vectors."""
    del rng  # unused, kept for a uniform initialiser signature
    return np.zeros(shape, dtype=np.float64)


def normal_init(
    shape: Sequence[int],
    rng: np.random.Generator,
    scale: float = 0.01,
) -> np.ndarray:
    """Return values drawn from ``N(0, scale^2)``."""
    return rng.normal(0.0, scale, size=shape).astype(np.float64)


def glorot_uniform(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """Glorot / Xavier uniform initialisation.

    Samples from ``U(-limit, limit)`` with ``limit = sqrt(6 / (fan_in +
    fan_out))``.  Suitable for tanh / sigmoid activations and the default
    for output layers.
    """
    fan_in, fan_out = _fan_in_out(shape)
    limit = math.sqrt(6.0 / float(fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(np.float64)


def he_uniform(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """He uniform initialisation.

    Samples from ``U(-limit, limit)`` with ``limit = sqrt(6 / fan_in)``,
    the recommended scheme for ReLU-family activations (used by the
    1D-CNN compressor and the DDQN Q-networks).
    """
    fan_in, _ = _fan_in_out(shape)
    limit = math.sqrt(6.0 / float(fan_in))
    return rng.uniform(-limit, limit, size=shape).astype(np.float64)


INITIALIZERS = {
    "zeros": zeros_init,
    "normal": normal_init,
    "glorot_uniform": glorot_uniform,
    "he_uniform": he_uniform,
}


def get_initializer(name: str):
    """Look an initialiser up by name.

    Raises ``KeyError`` with the list of available names when the requested
    initialiser does not exist, which gives much friendlier error messages
    than a bare dictionary lookup.
    """
    try:
        return INITIALIZERS[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown initializer {name!r}; available: {sorted(INITIALIZERS)}"
        ) from exc
