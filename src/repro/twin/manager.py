"""Digital-twin manager: the edge-side registry of all user digital twins.

The manager owns one :class:`~repro.twin.udt.UserDigitalTwin` per user and
provides the population-level views the prediction pipeline consumes: the
stacked feature tensor over all users for a reservation interval, group-level
watch-record collections, and staleness reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.behavior.watching import WatchRecord
from repro.twin.attributes import AttributeSpec, DEFAULT_ATTRIBUTES
from repro.twin.udt import UserDigitalTwin


@dataclass
class _FeatureCacheEntry:
    """Last feature matrix computed for one user, with store snapshots.

    ``appended`` / ``discarded`` pin each attribute store's monotone
    counters at computation time, so a later call can prove which cached
    grid rows are still valid (zero-order-hold rows only change when a
    sample with a timestamp at or before the row's grid time arrives, and
    appends are time-ordered).
    """

    order: Tuple[str, ...]
    times: np.ndarray
    matrix: np.ndarray
    appended: Dict[str, int]
    discarded: Dict[str, int]


class DigitalTwinManager:
    """Registry and aggregator of user digital twins."""

    def __init__(
        self,
        attributes: Optional[Mapping[str, AttributeSpec]] = None,
        max_samples_per_attribute: Optional[int] = None,
        feature_cache_enabled: bool = True,
    ) -> None:
        self.attributes: Dict[str, AttributeSpec] = dict(
            attributes if attributes is not None else DEFAULT_ATTRIBUTES
        )
        self.max_samples_per_attribute = max_samples_per_attribute
        self._twins: Dict[int, UserDigitalTwin] = {}
        #: Incremental per-user feature-matrix cache (see
        #: :meth:`user_feature_matrix`); disable to force full recomputes.
        self.feature_cache_enabled = feature_cache_enabled
        self._feature_cache: Dict[int, _FeatureCacheEntry] = {}

    # ------------------------------------------------------------ registry
    def __len__(self) -> int:
        return len(self._twins)

    def __contains__(self, user_id: int) -> bool:
        return user_id in self._twins

    def user_ids(self) -> List[int]:
        return sorted(self._twins.keys())

    def register_user(self, user_id: int) -> UserDigitalTwin:
        """Create (or return the existing) twin for ``user_id``."""
        if user_id not in self._twins:
            self._twins[user_id] = UserDigitalTwin(
                user_id,
                attributes=self.attributes,
                max_samples_per_attribute=self.max_samples_per_attribute,
            )
            self._feature_cache.pop(user_id, None)
        return self._twins[user_id]

    def register_users(self, user_ids: Iterable[int]) -> List[UserDigitalTwin]:
        return [self.register_user(uid) for uid in user_ids]

    def twin(self, user_id: int) -> UserDigitalTwin:
        if user_id not in self._twins:
            raise KeyError(f"no digital twin registered for user {user_id}")
        return self._twins[user_id]

    def remove_user(self, user_id: int) -> None:
        self._twins.pop(user_id, None)
        self._feature_cache.pop(user_id, None)

    # --------------------------------------------------------- aggregation
    def feature_tensor(
        self,
        start_s: float,
        end_s: float,
        num_steps: int = 32,
        attribute_order: Optional[Sequence[str]] = None,
        user_ids: Optional[Sequence[int]] = None,
        batched: Optional[bool] = None,
    ) -> np.ndarray:
        """Stacked per-user feature matrices, shape ``(users, num_steps, channels)``.

        Users are ordered by ``user_ids`` (default: sorted registry order),
        which is also the row order of everything derived downstream
        (compressed features, cluster labels, multicast groups).

        ``batched`` selects the resampling engine.  ``True`` runs the pure
        cross-user batched path (:meth:`batched_feature_tensor`): one
        ``searchsorted`` per *attribute* over the stacked population instead
        of one per (user, attribute), bypassing the per-user cache.
        ``False`` forces the per-user (cache-backed) path.  The default
        ``None`` runs the hybrid: rows the per-user cache can prove
        unchanged are served from it, and only the remaining (user, tail)
        rows go through one batched resample per attribute — so a fresh
        window (warm-up) gets full batching while a sliding window pays only
        for its new rows (plain batched when the cache is disabled).  All
        paths produce bit-identical tensors (zero-order hold is
        deterministic), pinned by the equivalence tests.
        """
        ids = list(user_ids) if user_ids is not None else self.user_ids()
        if not ids:
            raise ValueError("no users registered")
        if end_s <= start_s:
            raise ValueError("end_s must be greater than start_s")
        if num_steps <= 0:
            raise ValueError("num_steps must be positive")
        times = np.linspace(start_s, end_s, num_steps, endpoint=False)
        if batched is None:
            if self.feature_cache_enabled:
                return self._cached_batched_tensor(ids, times, attribute_order)
            return self._batched_feature_tensor(ids, times, attribute_order)
        if batched:
            return self._batched_feature_tensor(ids, times, attribute_order)
        matrices = [self._user_feature_matrix(uid, times, attribute_order) for uid in ids]
        return np.stack(matrices, axis=0)

    def batched_feature_tensor(
        self,
        start_s: float,
        end_s: float,
        num_steps: int = 32,
        attribute_order: Optional[Sequence[str]] = None,
        user_ids: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """:meth:`feature_tensor` via the cross-user batched resample.

        Zero-order-hold resampling is two ``searchsorted`` lookups plus a
        gather per store; the per-user path dispatches that pair once per
        ``(user, attribute)``, so at population scale NumPy call overhead —
        not the resampling arithmetic — dominates.  This path concatenates
        every user's timestamps per attribute into one ascending array (each
        user's block shifted by a constant offset larger than the global
        time span, so blocks cannot interleave), resolves *all* users' grid
        rows with a single ``searchsorted`` over it, and gathers the values
        with one ``take``: one NumPy dispatch sequence per attribute for the
        entire population.

        Caveat: the shift arithmetic compares timestamps at a magnitude of
        roughly ``population x time span``, so two *distinct* timestamps
        closer than the float64 rounding granularity there (sub-microsecond
        at millions of user-hours) could collapse; simulation timestamps
        are multiples of collection periods, far above that.
        """
        return self.feature_tensor(
            start_s,
            end_s,
            num_steps=num_steps,
            attribute_order=attribute_order,
            user_ids=user_ids,
            batched=True,
        )

    def _batched_feature_tensor(
        self,
        ids: Sequence[int],
        times: np.ndarray,
        attribute_order: Optional[Sequence[str]] = None,
    ) -> np.ndarray:
        twins = [self.twin(uid) for uid in ids]
        order = (
            tuple(attribute_order)
            if attribute_order is not None
            else tuple(twins[0].attributes)
        )
        num_users = len(twins)
        num_steps = times.shape[0]
        dims = [twins[0].store(name).dimension for name in order]
        tensor = np.empty((num_users, num_steps, int(sum(dims))))
        column = 0
        for name, dim in zip(order, dims):
            stores = [twin.store(name) for twin in twins]
            out = tensor[:, :, column : column + dim]
            sizes = np.array([len(store) for store in stores])
            filled = sizes > 0
            if not filled.any():
                out[:] = 0.0
                column += dim
                continue
            time_blocks = [store.time_view() for store, keep in zip(stores, filled) if keep]
            value_blocks = [store.value_view() for store, keep in zip(stores, filled) if keep]
            # Offset that strictly separates consecutive users' blocks: any
            # value exceeding the global [min(sample, grid), max] span works,
            # because block u's shifted queries then stay below block u+1's
            # shifted first timestamp.
            low = min(float(times[0]), min(float(block[0]) for block in time_blocks))
            high = max(float(times[-1]), max(float(block[-1]) for block in time_blocks))
            offset = (high - low) + 1.0
            shifts = offset * np.arange(filled.sum())
            stacked_times = np.concatenate(
                [block + shift for block, shift in zip(time_blocks, shifts)]
            )
            queries = (times[None, :] + shifts[:, None]).reshape(-1)
            rows = stacked_times.searchsorted(queries, side="right") - 1
            # Per-user clamp to the block's first row (the zero-order-hold
            # "times before the first sample take the first value" rule).
            starts = np.concatenate(([0], np.cumsum(sizes[filled])))[:-1]
            np.maximum(rows, np.repeat(starts, num_steps), out=rows)
            gathered = np.concatenate(value_blocks, axis=0)[rows]
            out[filled] = gathered.reshape(int(filled.sum()), num_steps, dim)
            if not filled.all():
                out[~filled] = 0.0
            column += dim
        return tensor

    def _cached_batched_tensor(
        self,
        ids: Sequence[int],
        times: np.ndarray,
        attribute_order: Optional[Sequence[str]] = None,
    ) -> np.ndarray:
        """Cache-cooperative batched tensor: batch only unprovable rows.

        Per user, :meth:`_reusable_rows` proves how many leading grid rows
        the cached matrix still covers; those are copied (or, on a full hit,
        the cached matrix is returned uncopied, exactly like the per-user
        path).  The remaining ragged (user, tail-rows) set is resampled with
        the same offset-stacked ``searchsorted`` trick as
        :meth:`_batched_feature_tensor`, one dispatch sequence per attribute
        — variable-length query blocks per user instead of a fixed grid.
        Cache entries are refreshed with the per-user path's semantics, so
        interleaving the two paths stays consistent.
        """
        twins = [self.twin(uid) for uid in ids]
        order = (
            tuple(attribute_order)
            if attribute_order is not None
            else tuple(twins[0].attributes)
        )
        num_steps = times.shape[0]
        stores_by_user = [[twin.store(name) for name in order] for twin in twins]
        width = int(sum(store.dimension for store in stores_by_user[0]))
        plans = [
            self._reusable_rows(uid, times, order, stores)
            for uid, stores in zip(ids, stores_by_user)
        ]
        matrices: List[np.ndarray] = []
        stale: List[int] = []
        for index, (reused, shift, entry) in enumerate(plans):
            if reused == num_steps:
                # Full hit: serve the cached matrix as-is, counters
                # untouched (see _user_feature_matrix).
                matrices.append(entry.matrix)
                continue
            matrix = np.empty((num_steps, width))
            if reused:
                matrix[:reused] = entry.matrix[shift : shift + reused]
            matrices.append(matrix)
            stale.append(index)
        if stale:
            self._batched_tail_resample(
                times, order, stores_by_user, plans, matrices, stale
            )
            for index in stale:
                entry = plans[index][2]
                stores = stores_by_user[index]
                if entry is not None and entry.order == order:
                    entry.times = times
                    entry.matrix = matrices[index]
                    for name, store in zip(order, stores):
                        entry.appended[name] = store.append_count
                        entry.discarded[name] = store.discard_count
                else:
                    self._feature_cache[ids[index]] = _FeatureCacheEntry(
                        order=order,
                        times=times,
                        matrix=matrices[index],
                        appended={
                            name: store.append_count
                            for name, store in zip(order, stores)
                        },
                        discarded={
                            name: store.discard_count
                            for name, store in zip(order, stores)
                        },
                    )
        return np.stack(matrices, axis=0)

    def _batched_tail_resample(
        self,
        times: np.ndarray,
        order: Tuple[str, ...],
        stores_by_user: Sequence[Sequence],
        plans: Sequence[tuple],
        matrices: Sequence[np.ndarray],
        stale: Sequence[int],
    ) -> None:
        """Fill the non-reusable tail rows of the stale users, batched.

        Same arithmetic as :meth:`_batched_feature_tensor` (offset-shifted
        block concatenation, one ``searchsorted`` + gather per attribute,
        per-block zero-order-hold clamp via ``np.repeat``), generalised to
        a different query count per user.
        """
        column = 0
        for position, _name in enumerate(order):
            stores = [stores_by_user[index][position] for index in stale]
            dim = stores[0].dimension
            outs = [
                matrices[index][plans[index][0] :, column : column + dim]
                for index in stale
            ]
            sizes = np.array([len(store) for store in stores])
            filled = sizes > 0
            for out, keep in zip(outs, filled):
                if not keep:
                    out[:] = 0.0  # empty store resamples to zeros
            if filled.any():
                kept = [j for j, keep in enumerate(filled) if keep]
                time_blocks = [stores[j].time_view() for j in kept]
                value_blocks = [stores[j].value_view() for j in kept]
                query_blocks = [times[plans[stale[j]][0] :] for j in kept]
                low = min(
                    min(float(block[0]) for block in query_blocks),
                    min(float(block[0]) for block in time_blocks),
                )
                high = max(
                    max(float(block[-1]) for block in query_blocks),
                    max(float(block[-1]) for block in time_blocks),
                )
                offset = (high - low) + 1.0
                shifts = offset * np.arange(len(kept))
                stacked_times = np.concatenate(
                    [block + shift for block, shift in zip(time_blocks, shifts)]
                )
                queries = np.concatenate(
                    [block + shift for block, shift in zip(query_blocks, shifts)]
                )
                rows = stacked_times.searchsorted(queries, side="right") - 1
                counts = np.array([block.shape[0] for block in query_blocks])
                starts = np.concatenate(([0], np.cumsum(sizes[filled])))[:-1]
                np.maximum(rows, np.repeat(starts, counts), out=rows)
                gathered = np.concatenate(value_blocks, axis=0)[rows]
                for j, piece in zip(kept, np.split(gathered, np.cumsum(counts)[:-1])):
                    outs[j][:] = piece
            column += dim

    def user_feature_matrix(
        self,
        user_id: int,
        start_s: float,
        end_s: float,
        num_steps: int = 32,
        attribute_order: Optional[Sequence[str]] = None,
    ) -> np.ndarray:
        """One user's feature matrix, served through the incremental cache.

        Equivalent to ``twin(user_id).feature_matrix(...)`` but reuses grid
        rows from the previous call when the new history window overlaps it
        on an aligned grid (the sliding-window pattern of the prediction
        pipeline): with zero-order-hold resampling and time-ordered appends,
        a cached row can only change when a sample arrives whose timestamp
        is at or before the row's grid time, so every overlapping row older
        than the oldest new sample is returned as-is and only the remaining
        rows are resampled.  Any misalignment, ring eviction or
        ``clear()`` falls back to a full recompute, and the cache entry is
        dropped on :meth:`remove_user` / re-:meth:`register_user`.

        The returned array is shared with the cache — treat it as read-only
        (population-level consumers copy via ``np.stack`` anyway).
        """
        if end_s <= start_s:
            raise ValueError("end_s must be greater than start_s")
        if num_steps <= 0:
            raise ValueError("num_steps must be positive")
        times = np.linspace(start_s, end_s, num_steps, endpoint=False)
        return self._user_feature_matrix(user_id, times, attribute_order)

    def _user_feature_matrix(
        self,
        user_id: int,
        times: np.ndarray,
        attribute_order: Optional[Sequence[str]] = None,
    ) -> np.ndarray:
        twin = self.twin(user_id)
        order = (
            tuple(attribute_order) if attribute_order is not None else tuple(twin.attributes)
        )
        if not self.feature_cache_enabled:
            return twin.feature_rows(times, order)
        stores = [twin.store(name) for name in order]
        reused, shift, entry = self._reusable_rows(user_id, times, order, stores)
        num_steps = times.shape[0]
        if reused == num_steps:
            # Full hit (same window, no sample at or before any grid time
            # arrived): serve the cached matrix as-is.  The snapshot is left
            # untouched — keeping the older counters is conservative, it can
            # only shrink what a later call reuses.
            return entry.matrix
        if reused:
            matrix = np.empty((num_steps, entry.matrix.shape[1]))
            matrix[:reused] = entry.matrix[shift : shift + reused]
            tail_times = times[reused:]
            column = 0
            for store in stores:
                store.resample_into(
                    tail_times, matrix[reused:, column : column + store.dimension]
                )
                column += store.dimension
        else:
            matrix = twin.feature_rows(times, order)
        if entry is not None and entry.order == order:
            # Refresh the existing entry in place (the steady-state sliding
            # pattern) instead of reallocating it every interval.
            entry.times = times
            entry.matrix = matrix
            for name, store in zip(order, stores):
                entry.appended[name] = store.append_count
                entry.discarded[name] = store.discard_count
        else:
            self._feature_cache[user_id] = _FeatureCacheEntry(
                order=order,
                times=times,
                matrix=matrix,
                appended={name: store.append_count for name, store in zip(order, stores)},
                discarded={name: store.discard_count for name, store in zip(order, stores)},
            )
        return matrix

    def _reusable_rows(
        self,
        user_id: int,
        times: np.ndarray,
        order: Tuple[str, ...],
        stores: Sequence,
    ) -> tuple:
        """``(row_count, cache_row_shift, entry)`` reusable for this request."""
        entry = self._feature_cache.get(user_id)
        num_steps = times.shape[0]
        if entry is None or entry.order != order or entry.times.shape[0] != num_steps:
            return 0, 0, entry
        # Grid alignment: the new window must start on a grid point of the
        # cached window (the sliding-history pattern); `shift` is how many
        # rows the window advanced.  Endpoint checks suffice: both grids are
        # uniform with the same step, so matching first and last overlapping
        # points pins the whole overlap (scalar comparisons keep this O(1)
        # on the per-user hot path).
        first = float(times[0])
        if num_steps > 1:
            step = float(times[1] - times[0])
            if step <= 0 or abs(float(entry.times[1] - entry.times[0]) - step) > 1e-9 * step:
                return 0, 0, entry
            shift = int(round((first - float(entry.times[0])) / step))
            tolerance = 1e-9 * max(step, 1.0)
        else:
            shift = 0
            tolerance = 1e-9
        if not 0 <= shift < num_steps:
            return 0, 0, entry
        overlap = num_steps - shift
        last = float(times[overlap - 1])
        if (
            abs(float(entry.times[shift]) - first) > tolerance
            or abs(float(entry.times[num_steps - 1]) - last) > tolerance
        ):
            return 0, 0, entry
        # Store freshness: discards invalidate everything; otherwise rows
        # strictly older than the first sample appended since the snapshot
        # are untouched by construction (appends are time-ordered).  One
        # exception: a store that was *empty* at snapshot time resampled to
        # zeros, and its first real sample backfills every grid row via the
        # zero-order-hold clamp — nothing cached for it can be reused.
        valid_until = np.inf
        for name, store in zip(order, stores):
            if store.discard_count != entry.discarded.get(name, -1):
                return 0, 0, entry
            first_new = store.first_timestamp_appended_after(entry.appended[name])
            if first_new is not None:
                if entry.appended[name] == entry.discarded[name]:
                    return 0, 0, entry
                if first_new < valid_until:
                    valid_until = first_new
        if valid_until > last:
            return overlap, shift, entry
        reused = int(np.searchsorted(times[:overlap], valid_until, side="left"))
        return reused, shift, entry

    def watch_records(
        self,
        user_ids: Optional[Sequence[int]] = None,
        start_s: Optional[float] = None,
        end_s: Optional[float] = None,
    ) -> List[WatchRecord]:
        """All watch records of the given users over a window."""
        ids = list(user_ids) if user_ids is not None else self.user_ids()
        records: List[WatchRecord] = []
        for uid in ids:
            records.extend(self.twin(uid).watch_records(start_s, end_s))
        return records

    def engagement_by_video(
        self,
        user_ids: Optional[Sequence[int]] = None,
        start_s: Optional[float] = None,
        end_s: Optional[float] = None,
    ) -> Dict[int, float]:
        """Total engagement time per video id (drives popularity updates)."""
        totals: Dict[int, float] = {}
        for record in self.watch_records(user_ids, start_s, end_s):
            totals[record.video_id] = totals.get(record.video_id, 0.0) + record.watch_duration_s
        return totals

    def mean_preferences(
        self,
        user_ids: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Mean of the latest preference snapshots across users."""
        from repro.twin.attributes import PREFERENCE

        ids = list(user_ids) if user_ids is not None else self.user_ids()
        if not ids:
            raise ValueError("no users registered")
        vectors = [self.twin(uid).store(PREFERENCE).latest_value() for uid in ids]
        return np.mean(np.vstack(vectors), axis=0)

    # ------------------------------------------------------------ staleness
    def staleness_report(self, now_s: float) -> Dict[int, float]:
        """Worst-attribute staleness per user."""
        return {uid: twin.max_staleness_s(now_s) for uid, twin in self._twins.items()}

    def stale_users(self, now_s: float, threshold_s: float) -> List[int]:
        """Users whose twins are older than ``threshold_s`` on any attribute."""
        if threshold_s < 0:
            raise ValueError("threshold_s must be non-negative")
        return [uid for uid, age in self.staleness_report(now_s).items() if age > threshold_s]
