"""Digital-twin manager: the edge-side registry of all user digital twins.

The manager owns one :class:`~repro.twin.udt.UserDigitalTwin` per user and
provides the population-level views the prediction pipeline consumes: the
stacked feature tensor over all users for a reservation interval, group-level
watch-record collections, and staleness reports.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from repro.behavior.watching import WatchRecord
from repro.twin.attributes import AttributeSpec, DEFAULT_ATTRIBUTES
from repro.twin.udt import UserDigitalTwin


class DigitalTwinManager:
    """Registry and aggregator of user digital twins."""

    def __init__(
        self,
        attributes: Optional[Mapping[str, AttributeSpec]] = None,
        max_samples_per_attribute: Optional[int] = None,
    ) -> None:
        self.attributes: Dict[str, AttributeSpec] = dict(
            attributes if attributes is not None else DEFAULT_ATTRIBUTES
        )
        self.max_samples_per_attribute = max_samples_per_attribute
        self._twins: Dict[int, UserDigitalTwin] = {}

    # ------------------------------------------------------------ registry
    def __len__(self) -> int:
        return len(self._twins)

    def __contains__(self, user_id: int) -> bool:
        return user_id in self._twins

    def user_ids(self) -> List[int]:
        return sorted(self._twins.keys())

    def register_user(self, user_id: int) -> UserDigitalTwin:
        """Create (or return the existing) twin for ``user_id``."""
        if user_id not in self._twins:
            self._twins[user_id] = UserDigitalTwin(
                user_id,
                attributes=self.attributes,
                max_samples_per_attribute=self.max_samples_per_attribute,
            )
        return self._twins[user_id]

    def register_users(self, user_ids: Iterable[int]) -> List[UserDigitalTwin]:
        return [self.register_user(uid) for uid in user_ids]

    def twin(self, user_id: int) -> UserDigitalTwin:
        if user_id not in self._twins:
            raise KeyError(f"no digital twin registered for user {user_id}")
        return self._twins[user_id]

    def remove_user(self, user_id: int) -> None:
        self._twins.pop(user_id, None)

    # --------------------------------------------------------- aggregation
    def feature_tensor(
        self,
        start_s: float,
        end_s: float,
        num_steps: int = 32,
        attribute_order: Optional[Sequence[str]] = None,
        user_ids: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Stacked per-user feature matrices, shape ``(users, num_steps, channels)``.

        Users are ordered by ``user_ids`` (default: sorted registry order),
        which is also the row order of everything derived downstream
        (compressed features, cluster labels, multicast groups).
        """
        ids = list(user_ids) if user_ids is not None else self.user_ids()
        if not ids:
            raise ValueError("no users registered")
        matrices = [
            self.twin(uid).feature_matrix(start_s, end_s, num_steps, attribute_order)
            for uid in ids
        ]
        return np.stack(matrices, axis=0)

    def watch_records(
        self,
        user_ids: Optional[Sequence[int]] = None,
        start_s: Optional[float] = None,
        end_s: Optional[float] = None,
    ) -> List[WatchRecord]:
        """All watch records of the given users over a window."""
        ids = list(user_ids) if user_ids is not None else self.user_ids()
        records: List[WatchRecord] = []
        for uid in ids:
            records.extend(self.twin(uid).watch_records(start_s, end_s))
        return records

    def engagement_by_video(
        self,
        user_ids: Optional[Sequence[int]] = None,
        start_s: Optional[float] = None,
        end_s: Optional[float] = None,
    ) -> Dict[int, float]:
        """Total engagement time per video id (drives popularity updates)."""
        totals: Dict[int, float] = {}
        for record in self.watch_records(user_ids, start_s, end_s):
            totals[record.video_id] = totals.get(record.video_id, 0.0) + record.watch_duration_s
        return totals

    def mean_preferences(
        self,
        user_ids: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Mean of the latest preference snapshots across users."""
        from repro.twin.attributes import PREFERENCE

        ids = list(user_ids) if user_ids is not None else self.user_ids()
        if not ids:
            raise ValueError("no users registered")
        vectors = [self.twin(uid).store(PREFERENCE).latest_value() for uid in ids]
        return np.mean(np.vstack(vectors), axis=0)

    # ------------------------------------------------------------ staleness
    def staleness_report(self, now_s: float) -> Dict[int, float]:
        """Worst-attribute staleness per user."""
        return {uid: twin.max_staleness_s(now_s) for uid, twin in self._twins.items()}

    def stale_users(self, now_s: float, threshold_s: float) -> List[int]:
        """Users whose twins are older than ``threshold_s`` on any attribute."""
        if threshold_s < 0:
            raise ValueError("threshold_s must be non-negative")
        return [uid for uid, age in self.staleness_report(now_s).items() if age > threshold_s]
