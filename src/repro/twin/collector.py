"""Status collection from live users into their digital twins.

Base stations collect user status and push it to the UDTs on the edge
server, each attribute at its own frequency.  The collector models that
process against simulation entities:

* channel condition and location are sampled at their attribute periods
  from the user's mobility model and serving base station,
* watch records are pushed as sessions produce them, and
* preference snapshots are written once per collection period.

The :class:`CollectionPolicy` adds the imperfections the DT-staleness
ablation varies: a collection-period multiplier (slower twins), a sample
drop probability (lossy uplink) and a reporting delay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.behavior.preference import PreferenceVector
from repro.behavior.session import ViewingEvent
from repro.mobility.trajectory import MobilityModel
from repro.net.basestation import BaseStation
from repro.timegrid import time_grid
from repro.twin.attributes import CHANNEL_CONDITION, LOCATION, PREFERENCE, SERVING_CELL
from repro.twin.udt import UserDigitalTwin


@dataclass
class CollectionPolicy:
    """Imperfections applied while collecting user status.

    ``period_multiplier`` scales every attribute's collection period (2.0
    means twice as stale), ``drop_probability`` silently discards samples,
    and ``delay_s`` shifts the recorded timestamps backwards (the twin only
    learns about a sample that much later).
    """

    period_multiplier: float = 1.0
    drop_probability: float = 0.0
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.period_multiplier <= 0:
            raise ValueError("period_multiplier must be positive")
        if not 0.0 <= self.drop_probability < 1.0:
            raise ValueError("drop_probability must be in [0, 1)")
        if self.delay_s < 0:
            raise ValueError("delay_s must be non-negative")

    @classmethod
    def perfect(cls) -> "CollectionPolicy":
        return cls()


class StatusCollector:
    """Collects user status into UDTs over a reservation interval."""

    def __init__(
        self,
        policy: Optional[CollectionPolicy] = None,
        seed: int = 0,
        interleaved_snr_draws: bool = True,
    ) -> None:
        self.policy = policy if policy is not None else CollectionPolicy.perfect()
        # Imported lazily: repro.sim.shard imports this module at load time.
        from repro.sim.rng import legacy_stream

        self._rng = legacy_stream(seed)
        #: Whether batched SNR sampling preserves the scalar per-sample draw
        #: order of the shared generator (see ChannelModel.sample_snr_db_batch).
        self.interleaved_snr_draws = interleaved_snr_draws

    # ------------------------------------------------------------ sampling
    def _keep_sample(self, rng: Optional[np.random.Generator] = None) -> bool:
        if self.policy.drop_probability == 0.0:
            return True
        rng = rng if rng is not None else self._rng
        return rng.random() >= self.policy.drop_probability

    def _keep_mask(
        self, count: int, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """Vectorized :meth:`_keep_sample`: one boolean per sample.

        Draws the same generator values a loop of scalar calls would, and
        draws nothing at all when samples are never dropped.
        """
        if self.policy.drop_probability == 0.0:
            return np.ones(count, dtype=bool)
        rng = rng if rng is not None else self._rng
        return rng.random(count) >= self.policy.drop_probability

    def _sample_times(self, start_s: float, end_s: float, period_s: float) -> np.ndarray:
        effective_period = period_s * self.policy.period_multiplier
        if effective_period >= end_s - start_s:
            return np.array([start_s])
        # Integer-step grid: at long horizons a float-step arange can gain
        # or drop a sample, which would silently change how much randomness
        # the channel collection consumes for this user.
        return time_grid(start_s, end_s, effective_period)

    def _kept_times(
        self,
        udt: UserDigitalTwin,
        attribute: str,
        start_s: float,
        end_s: float,
        keep_rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        spec = udt.attributes[attribute]
        times = self._sample_times(start_s, end_s, spec.collection_period_s)
        return times[self._keep_mask(times.shape[0], keep_rng)]

    def collect_interval(
        self,
        udt: UserDigitalTwin,
        mobility: MobilityModel,
        base_station: BaseStation,
        preference: PreferenceVector,
        events: Sequence[ViewingEvent],
        start_s: float,
        end_s: float,
        rng: Optional[np.random.Generator] = None,
        keep_rng: Optional[np.random.Generator] = None,
        serving_cell: Optional[int] = None,
    ) -> None:
        """Collect one reservation interval's worth of status for one user.

        Each attribute is collected as one batched position/SNR evaluation
        and one bulk append into the twin's time-series store, instead of a
        Python loop over individual samples.

        ``rng`` is the stream the channel-condition draws consume.  The
        grouped simulation engine passes a dedicated per-(interval, user)
        stream here (see :class:`repro.sim.rng.RngRegistry`), which makes
        each user's collected status independent of every other user's —
        the property that lets collection results merge deterministically
        no matter how the interval itself was executed.  The legacy modes
        pass their shared generator, preserving the historical streams.

        ``keep_rng`` is the stream drop decisions consume.  It defaults to
        the collector's own generator (the historical behaviour, shared
        across users and therefore order-dependent).  The grouped engine
        passes the same per-(interval, user) stream as ``rng``, so with a
        lossy policy the interleaved keep/sample draws are a deterministic
        per-user walk a shard worker can replay exactly.  With
        ``drop_probability == 0`` neither generator is touched for keeps.
        """
        if end_s <= start_s:
            raise ValueError("end_s must be greater than start_s")
        rng = rng if rng is not None else self._rng
        delay = self.policy.delay_s

        # Channel condition: sample SNR at the attribute's own frequency.
        if CHANNEL_CONDITION in udt.attributes:
            times = self._kept_times(udt, CHANNEL_CONDITION, start_s, end_s, keep_rng)
            if times.size:
                positions = mobility.positions(times)
                snrs = base_station.sample_snr_db_batch(
                    positions, rng=rng, interleaved=self.interleaved_snr_draws
                )
                udt.record_batch(CHANNEL_CONDITION, times + delay, snrs[:, None])

        # Location.
        if LOCATION in udt.attributes:
            times = self._kept_times(udt, LOCATION, start_s, end_s, keep_rng)
            if times.size:
                udt.record_batch(LOCATION, times + delay, mobility.positions(times))

        # Watch records (and the mirrored watching-duration series).
        if events:
            if self.policy.drop_probability == 0.0:
                kept_records = [event.record for event in events]
            else:
                kept_records = [
                    event.record for event in events if self._keep_sample(keep_rng)
                ]
            udt.record_watches(kept_records)

        # Preference snapshots.
        if PREFERENCE in udt.attributes:
            vector = preference.as_array()
            expected_dim = udt.attributes[PREFERENCE].dimension
            if vector.shape[0] != expected_dim:
                raise ValueError(
                    f"preference dimension {vector.shape[0]} does not match the UDT "
                    f"attribute dimension {expected_dim}"
                )
            times = self._kept_times(udt, PREFERENCE, start_s, end_s, keep_rng)
            if times.size:
                udt.record_batch(
                    PREFERENCE, times + delay, np.tile(vector, (times.shape[0], 1))
                )

        # Serving cell (only collected when the RAN controller reports it).
        if serving_cell is not None and SERVING_CELL in udt.attributes:
            times = self._kept_times(udt, SERVING_CELL, start_s, end_s, keep_rng)
            if times.size:
                udt.record_batch(
                    SERVING_CELL,
                    times + delay,
                    np.full((times.shape[0], 1), float(serving_cell)),
                )
