"""User-status attribute specifications.

The paper lists four attributes collected into the UDTs -- channel
condition, location, watching duration and preference -- and notes that
"different data attributes are collected with different frequencies".  An
:class:`AttributeSpec` captures an attribute's name, dimensionality and
collection period; the standard set below fixes sensible periods (channel
state changes fastest, preferences slowest).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class AttributeSpec:
    """Specification of one UDT attribute."""

    name: str
    dimension: int
    collection_period_s: float
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("attribute name must be non-empty")
        if self.dimension <= 0:
            raise ValueError("dimension must be positive")
        if self.collection_period_s <= 0:
            raise ValueError("collection_period_s must be positive")

    def samples_per_interval(self, interval_s: float) -> int:
        """How many samples one reservation interval yields for this attribute."""
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        return max(int(interval_s // self.collection_period_s), 1)


#: Canonical attribute names used across the code base.
CHANNEL_CONDITION = "channel_condition"
LOCATION = "location"
WATCHING_DURATION = "watching_duration"
PREFERENCE = "preference"
#: Serving-cell attribute collected when the multi-cell RAN controller is
#: active (``controller_mode="handover"``); not part of the standard set so
#: single-cell twins keep their pre-controller contents bit-for-bit.
SERVING_CELL = "serving_cell"

STANDARD_ATTRIBUTE_NAMES: Tuple[str, ...] = (
    CHANNEL_CONDITION,
    LOCATION,
    WATCHING_DURATION,
    PREFERENCE,
)


def standard_attributes(
    num_categories: int = 8,
    channel_period_s: float = 1.0,
    location_period_s: float = 5.0,
    watching_period_s: float = 15.0,
    preference_period_s: float = 60.0,
) -> Dict[str, AttributeSpec]:
    """The four standard UDT attributes with configurable collection periods."""
    if num_categories <= 0:
        raise ValueError("num_categories must be positive")
    specs = (
        AttributeSpec(
            CHANNEL_CONDITION,
            dimension=1,
            collection_period_s=channel_period_s,
            description="downlink SNR in dB",
        ),
        AttributeSpec(
            LOCATION,
            dimension=2,
            collection_period_s=location_period_s,
            description="2-D position in metres",
        ),
        AttributeSpec(
            WATCHING_DURATION,
            dimension=1,
            collection_period_s=watching_period_s,
            description="seconds watched of the most recent video",
        ),
        AttributeSpec(
            PREFERENCE,
            dimension=num_categories,
            collection_period_s=preference_period_s,
            description="preference distribution over video categories",
        ),
    )
    return {spec.name: spec for spec in specs}


def serving_cell_attribute(collection_period_s: float = 60.0) -> AttributeSpec:
    """Attribute spec for the serving-cell id reported by the RAN controller."""
    return AttributeSpec(
        SERVING_CELL,
        dimension=1,
        collection_period_s=collection_period_s,
        description="id of the base station currently serving the user",
    )


#: Default attribute set with the default periods and 8 video categories.
DEFAULT_ATTRIBUTES: Dict[str, AttributeSpec] = standard_attributes()
