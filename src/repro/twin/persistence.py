"""Digital-twin persistence.

Digital twins live on the edge server, but edge servers restart and users
hand over between edge sites; in both cases the twin state (attribute time
series, watch records) must be serialised and restored.  This module
round-trips twins and whole twin registries through plain dictionaries /
JSON files.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.behavior.watching import WatchRecord
from repro.twin.attributes import AttributeSpec
from repro.twin.manager import DigitalTwinManager
from repro.twin.timeseries import TimeSeriesStore
from repro.twin.udt import UserDigitalTwin


# ------------------------------------------------------------------ building blocks
def attribute_to_dict(spec: AttributeSpec) -> dict:
    return {
        "name": spec.name,
        "dimension": spec.dimension,
        "collection_period_s": spec.collection_period_s,
        "description": spec.description,
    }


def attribute_from_dict(data: dict) -> AttributeSpec:
    return AttributeSpec(
        name=str(data["name"]),
        dimension=int(data["dimension"]),
        collection_period_s=float(data["collection_period_s"]),
        description=str(data.get("description", "")),
    )


def store_to_dict(store: TimeSeriesStore) -> dict:
    return {
        "dimension": store.dimension,
        "max_samples": store.max_samples,
        "timestamps": store.timestamps().tolist(),
        "values": store.values().tolist(),
    }


def store_from_dict(data: dict) -> TimeSeriesStore:
    store = TimeSeriesStore(
        dimension=int(data["dimension"]),
        max_samples=data.get("max_samples"),
    )
    for timestamp, value in zip(data.get("timestamps", []), data.get("values", [])):
        store.append(float(timestamp), value)
    return store


def watch_record_to_dict(record: WatchRecord) -> dict:
    return {
        "user_id": record.user_id,
        "video_id": record.video_id,
        "category": record.category,
        "watch_duration_s": record.watch_duration_s,
        "video_duration_s": record.video_duration_s,
        "swiped": record.swiped,
        "timestamp_s": record.timestamp_s,
    }


def watch_record_from_dict(data: dict) -> WatchRecord:
    return WatchRecord(
        user_id=int(data["user_id"]),
        video_id=int(data["video_id"]),
        category=str(data["category"]),
        watch_duration_s=float(data["watch_duration_s"]),
        video_duration_s=float(data["video_duration_s"]),
        swiped=bool(data["swiped"]),
        timestamp_s=float(data.get("timestamp_s", 0.0)),
    )


# --------------------------------------------------------------------------- twins
def twin_to_dict(twin: UserDigitalTwin) -> dict:
    """Serialise one user digital twin (attributes, time series, watch records)."""
    return {
        "user_id": twin.user_id,
        "attributes": {name: attribute_to_dict(spec) for name, spec in twin.attributes.items()},
        "stores": {name: store_to_dict(twin.store(name)) for name in twin.attributes},
        "watch_records": [watch_record_to_dict(record) for record in twin.watch_records()],
    }


def twin_from_dict(data: dict) -> UserDigitalTwin:
    """Rebuild a user digital twin serialised by :func:`twin_to_dict`."""
    attributes = {
        name: attribute_from_dict(spec) for name, spec in data.get("attributes", {}).items()
    }
    twin = UserDigitalTwin(int(data["user_id"]), attributes=attributes)
    for name, store_data in data.get("stores", {}).items():
        restored = store_from_dict(store_data)
        target = twin.store(name)
        for timestamp, value in zip(restored.timestamps(), restored.values()):
            target.append(float(timestamp), value)
    # Watch records are re-attached directly (the mirrored watching-duration
    # series was already restored above, so bypass record_watch).
    twin._watch_records.extend(
        watch_record_from_dict(record) for record in data.get("watch_records", [])
    )
    return twin


# ------------------------------------------------------------------------- manager
def manager_to_dict(manager: DigitalTwinManager) -> dict:
    """Serialise a whole twin registry."""
    return {
        "attributes": {
            name: attribute_to_dict(spec) for name, spec in manager.attributes.items()
        },
        "twins": [manager_twin for manager_twin in (
            twin_to_dict(manager.twin(uid)) for uid in manager.user_ids()
        )],
    }


def manager_from_dict(data: dict) -> DigitalTwinManager:
    attributes = {
        name: attribute_from_dict(spec) for name, spec in data.get("attributes", {}).items()
    }
    manager = DigitalTwinManager(attributes=attributes or None)
    for twin_data in data.get("twins", []):
        twin = twin_from_dict(twin_data)
        manager._twins[twin.user_id] = twin
    return manager


def save_manager(manager: DigitalTwinManager, path: Union[str, Path]) -> Path:
    """Write a twin registry to a JSON file and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(manager_to_dict(manager), handle)
    return path


def load_manager(path: Union[str, Path]) -> DigitalTwinManager:
    """Load a twin registry previously written by :func:`save_manager`."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"twin snapshot {path} does not exist")
    with path.open("r", encoding="utf-8") as handle:
        return manager_from_dict(json.load(handle))
