"""User digital twin.

A :class:`UserDigitalTwin` bundles one time-series store per attribute for a
single user.  Besides raw collection, it exposes the two views the
prediction scheme needs:

* :meth:`feature_matrix` -- the attribute time series resampled onto a
  common grid and stacked into a ``(time, channels)`` matrix, the direct
  input of the 1D-CNN compressor, and
* :meth:`watch_records` -- the watch records collected during a window,
  which feed the swiping-probability abstraction.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.behavior.watching import WatchRecord
from repro.twin.attributes import (
    AttributeSpec,
    CHANNEL_CONDITION,
    DEFAULT_ATTRIBUTES,
    LOCATION,
    PREFERENCE,
    WATCHING_DURATION,
)
from repro.twin.timeseries import TimeSeriesStore


class UserDigitalTwin:
    """Edge-side digital twin of one user."""

    def __init__(
        self,
        user_id: int,
        attributes: Optional[Mapping[str, AttributeSpec]] = None,
        max_samples_per_attribute: Optional[int] = None,
    ) -> None:
        if user_id < 0:
            raise ValueError("user_id must be non-negative")
        self.user_id = user_id
        self.attributes: Dict[str, AttributeSpec] = dict(
            attributes if attributes is not None else DEFAULT_ATTRIBUTES
        )
        if not self.attributes:
            raise ValueError("a UDT needs at least one attribute")
        self._stores: Dict[str, TimeSeriesStore] = {
            name: TimeSeriesStore(spec.dimension, max_samples=max_samples_per_attribute)
            for name, spec in self.attributes.items()
        }
        self._watch_records: List[WatchRecord] = []

    # ------------------------------------------------------------ collection
    def store(self, attribute: str) -> TimeSeriesStore:
        if attribute not in self._stores:
            raise KeyError(f"UDT of user {self.user_id} has no attribute {attribute!r}")
        return self._stores[attribute]

    def record(self, attribute: str, timestamp_s: float, value) -> None:
        """Append one sample of ``attribute``."""
        self.store(attribute).append(timestamp_s, value)

    def record_batch(self, attribute: str, timestamps_s, values) -> int:
        """Append many samples of ``attribute`` at once (bulk buffer copy)."""
        return self.store(attribute).append_batch(timestamps_s, values)

    def record_watch(self, record: WatchRecord) -> None:
        """Store a watch record and mirror its duration into the time series."""
        if record.user_id != self.user_id:
            raise ValueError(
                f"watch record of user {record.user_id} pushed to UDT of user {self.user_id}"
            )
        self._watch_records.append(record)
        if WATCHING_DURATION in self._stores:
            store = self._stores[WATCHING_DURATION]
            timestamp = record.timestamp_s
            if len(store):
                timestamp = max(timestamp, store.latest_timestamp_s())
            store.append(timestamp, [record.watch_duration_s])

    def record_watches(self, records: Sequence[WatchRecord]) -> None:
        """Batch :meth:`record_watch`: one bulk append into the duration series."""
        for record in records:
            if record.user_id != self.user_id:
                raise ValueError(
                    f"watch record of user {record.user_id} pushed to UDT of user {self.user_id}"
                )
        if not records:
            return
        self._watch_records.extend(records)
        if WATCHING_DURATION in self._stores:
            store = self._stores[WATCHING_DURATION]
            timestamps = np.array([record.timestamp_s for record in records])
            if len(store):
                timestamps[0] = max(timestamps[0], store.latest_timestamp_s())
            # Running maximum = the per-record clamp record_watch applies.
            np.maximum.accumulate(timestamps, out=timestamps)
            durations = np.array([[record.watch_duration_s] for record in records])
            store.append_batch(timestamps, durations)

    # -------------------------------------------------------------- queries
    def staleness_s(self, attribute: str, now_s: float) -> float:
        return self.store(attribute).staleness_s(now_s)

    def max_staleness_s(self, now_s: float) -> float:
        """Worst staleness across attributes (``inf`` if any attribute is empty)."""
        return max(self.store(name).staleness_s(now_s) for name in self.attributes)

    def latest_status(self) -> Dict[str, np.ndarray]:
        """Newest value of every attribute (zeros for never-collected ones)."""
        return {name: self.store(name).latest_value() for name in self.attributes}

    def watch_records(
        self,
        start_s: Optional[float] = None,
        end_s: Optional[float] = None,
    ) -> List[WatchRecord]:
        """Watch records whose timestamps fall in ``[start_s, end_s)``."""
        records = self._watch_records
        if start_s is not None:
            records = [r for r in records if r.timestamp_s >= start_s]
        if end_s is not None:
            records = [r for r in records if r.timestamp_s < end_s]
        return list(records)

    def engagement_seconds(
        self,
        start_s: Optional[float] = None,
        end_s: Optional[float] = None,
    ) -> Dict[str, float]:
        """Total watch time per category over a window."""
        totals: Dict[str, float] = {}
        for record in self.watch_records(start_s, end_s):
            totals[record.category] = totals.get(record.category, 0.0) + record.watch_duration_s
        return totals

    # ------------------------------------------------------------- features
    def feature_matrix(
        self,
        start_s: float,
        end_s: float,
        num_steps: int = 32,
        attribute_order: Optional[Sequence[str]] = None,
    ) -> np.ndarray:
        """Resample all attributes onto a common grid and stack channels.

        The result has shape ``(num_steps, total_dimension)`` where
        ``total_dimension`` is the sum of attribute dimensions in
        ``attribute_order`` (default: insertion order).  This is the raw
        per-user input to the 1D-CNN compressor.
        """
        if end_s <= start_s:
            raise ValueError("end_s must be greater than start_s")
        if num_steps <= 0:
            raise ValueError("num_steps must be positive")
        times = np.linspace(start_s, end_s, num_steps, endpoint=False)
        return self.feature_rows(times, attribute_order)

    def feature_rows(
        self,
        times_s: np.ndarray,
        attribute_order: Optional[Sequence[str]] = None,
    ) -> np.ndarray:
        """Resample all attributes at arbitrary ``times_s`` and stack channels.

        The building block of :meth:`feature_matrix`; the manager's
        incremental feature cache calls it directly to recompute only the
        grid rows a sliding history window actually changed.
        """
        order = list(attribute_order) if attribute_order is not None else list(self.attributes)
        times = np.asarray(times_s, dtype=np.float64)
        stores = [self.store(name) for name in order]
        matrix = np.empty((times.shape[0], sum(store.dimension for store in stores)))
        column = 0
        for store in stores:
            store.resample_into(times, matrix[:, column : column + store.dimension])
            column += store.dimension
        return matrix

    def feature_dimension(self, attribute_order: Optional[Sequence[str]] = None) -> int:
        order = list(attribute_order) if attribute_order is not None else list(self.attributes)
        return int(sum(self.attributes[name].dimension for name in order))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        counts = {name: len(store) for name, store in self._stores.items()}
        return f"UserDigitalTwin(user_id={self.user_id}, samples={counts})"
