"""Digital-twin substrate: user digital twins (UDTs) and their management.

UDTs live on the edge server and store each user's status -- channel
condition, location, watching duration and preference -- with a different
collection frequency per attribute.  Everything the prediction scheme knows
about users it learns from these twins, so the twin layer also controls how
*stale* that knowledge can get (the DT-staleness ablation).

* :mod:`repro.twin.attributes` -- attribute specifications (name, dimension,
  collection period).
* :mod:`repro.twin.timeseries` -- per-attribute time-series stores with
  window queries and staleness accounting.
* :mod:`repro.twin.udt` -- :class:`UserDigitalTwin`.
* :mod:`repro.twin.collector` -- samples live user state into UDTs at each
  attribute's own frequency, with optional loss and delay.
* :mod:`repro.twin.manager` -- the edge-side registry of all UDTs plus
  group-level aggregation helpers.
"""

from repro.twin.attributes import (
    AttributeSpec,
    DEFAULT_ATTRIBUTES,
    STANDARD_ATTRIBUTE_NAMES,
    standard_attributes,
)
from repro.twin.timeseries import TimeSeriesStore, TimestampedValue
from repro.twin.udt import UserDigitalTwin
from repro.twin.collector import CollectionPolicy, StatusCollector
from repro.twin.manager import DigitalTwinManager
from repro.twin.persistence import (
    load_manager,
    manager_from_dict,
    manager_to_dict,
    save_manager,
    twin_from_dict,
    twin_to_dict,
)

__all__ = [
    "AttributeSpec",
    "CollectionPolicy",
    "DEFAULT_ATTRIBUTES",
    "DigitalTwinManager",
    "STANDARD_ATTRIBUTE_NAMES",
    "StatusCollector",
    "TimeSeriesStore",
    "TimestampedValue",
    "UserDigitalTwin",
    "load_manager",
    "manager_from_dict",
    "manager_to_dict",
    "save_manager",
    "standard_attributes",
    "twin_from_dict",
    "twin_to_dict",
]
