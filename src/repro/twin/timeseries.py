"""Time-series store for UDT attributes.

Each attribute of a user digital twin is an append-only sequence of
timestamped vectors.  The store supports window queries (everything
collected during a reservation interval), resampling onto a fixed grid (what
the 1D-CNN compressor consumes) and staleness queries (how old is the newest
sample), all of which the prediction pipeline relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class TimestampedValue:
    """One sample of an attribute."""

    timestamp_s: float
    value: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "value", np.atleast_1d(np.asarray(self.value, dtype=np.float64)))


class TimeSeriesStore:
    """Append-only store of timestamped vectors of a fixed dimension."""

    def __init__(self, dimension: int, max_samples: Optional[int] = None) -> None:
        if dimension <= 0:
            raise ValueError("dimension must be positive")
        if max_samples is not None and max_samples <= 0:
            raise ValueError("max_samples must be positive when given")
        self.dimension = dimension
        self.max_samples = max_samples
        self._samples: List[TimestampedValue] = []

    # ------------------------------------------------------------ mutation
    def append(self, timestamp_s: float, value) -> TimestampedValue:
        """Append a sample; timestamps must be non-decreasing."""
        value = np.atleast_1d(np.asarray(value, dtype=np.float64))
        if value.shape != (self.dimension,):
            raise ValueError(
                f"expected a value of dimension {self.dimension}, got shape {value.shape}"
            )
        if self._samples and timestamp_s < self._samples[-1].timestamp_s:
            raise ValueError("timestamps must be non-decreasing")
        sample = TimestampedValue(timestamp_s=float(timestamp_s), value=value)
        self._samples.append(sample)
        if self.max_samples is not None and len(self._samples) > self.max_samples:
            del self._samples[: len(self._samples) - self.max_samples]
        return sample

    def clear(self) -> None:
        self._samples.clear()

    # ------------------------------------------------------------ accessors
    def __len__(self) -> int:
        return len(self._samples)

    @property
    def is_empty(self) -> bool:
        return not self._samples

    def latest(self) -> TimestampedValue:
        if not self._samples:
            raise ValueError("store is empty")
        return self._samples[-1]

    def latest_value(self, default: Optional[np.ndarray] = None) -> np.ndarray:
        """Newest value, or ``default`` / zeros when the store is empty."""
        if self._samples:
            return self._samples[-1].value.copy()
        if default is not None:
            return np.atleast_1d(np.asarray(default, dtype=np.float64))
        return np.zeros(self.dimension)

    def staleness_s(self, now_s: float) -> float:
        """Age of the newest sample; ``inf`` when no sample exists."""
        if not self._samples:
            return float("inf")
        return float(now_s - self._samples[-1].timestamp_s)

    def timestamps(self) -> np.ndarray:
        return np.array([sample.timestamp_s for sample in self._samples])

    def values(self) -> np.ndarray:
        """All values stacked into shape ``(num_samples, dimension)``."""
        if not self._samples:
            return np.zeros((0, self.dimension))
        return np.vstack([sample.value for sample in self._samples])

    # --------------------------------------------------------------- queries
    def window(self, start_s: float, end_s: float) -> List[TimestampedValue]:
        """All samples with ``start_s <= timestamp < end_s``."""
        if end_s < start_s:
            raise ValueError("end_s must be >= start_s")
        return [s for s in self._samples if start_s <= s.timestamp_s < end_s]

    def window_values(self, start_s: float, end_s: float) -> np.ndarray:
        samples = self.window(start_s, end_s)
        if not samples:
            return np.zeros((0, self.dimension))
        return np.vstack([sample.value for sample in samples])

    def resample(self, times_s: Sequence[float]) -> np.ndarray:
        """Zero-order-hold resampling onto ``times_s`` (shape ``(len, dimension)``).

        Times before the first sample receive the first sample's value; an
        empty store resamples to zeros.
        """
        times = np.asarray(times_s, dtype=np.float64)
        if times.ndim != 1:
            raise ValueError("times_s must be one-dimensional")
        if not self._samples:
            return np.zeros((times.shape[0], self.dimension))
        sample_times = self.timestamps()
        values = self.values()
        indices = np.searchsorted(sample_times, times, side="right") - 1
        indices = np.clip(indices, 0, len(self._samples) - 1)
        return values[indices]

    def mean(self, start_s: Optional[float] = None, end_s: Optional[float] = None) -> np.ndarray:
        """Mean value over a window (whole history by default)."""
        if start_s is None and end_s is None:
            values = self.values()
        else:
            start = start_s if start_s is not None else -np.inf
            end = end_s if end_s is not None else np.inf
            values = self.window_values(start, end)
        if values.shape[0] == 0:
            return np.zeros(self.dimension)
        return values.mean(axis=0)
