"""Time-series store for UDT attributes.

Each attribute of a user digital twin is an append-only sequence of
timestamped vectors.  The store supports window queries (everything
collected during a reservation interval), resampling onto a fixed grid (what
the 1D-CNN compressor consumes) and staleness queries (how old is the newest
sample), all of which the prediction pipeline relies on.

Array-backed layout
-------------------
Samples live in two contiguous NumPy buffers — a ``(capacity,)`` float64
timestamp array and a ``(capacity, dimension)`` float64 value matrix — with
an active region ``[_start, _start + _size)``.  Appends write into the next
free row and double the capacity when it runs out, so a single append is
amortized O(1) and ``append_batch`` is O(batch).  The ``max_samples`` ring
behaviour slides ``_start`` forward instead of copying, compacting the
active region back to row zero only when the physical buffer is exhausted
(amortized O(1) per append as well).  Because timestamps are kept sorted
(appends enforce non-decreasing time), every window query —
:meth:`~TimeSeriesStore.window`, :meth:`~TimeSeriesStore.window_values`,
:meth:`~TimeSeriesStore.mean`, :meth:`~TimeSeriesStore.resample` — is a pair
of ``np.searchsorted`` binary searches plus one contiguous slice: O(log n +
result size) instead of the O(n) scan-and-``vstack`` of a list-of-objects
store.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

#: Initial physical capacity of a store's buffers.
_INITIAL_CAPACITY = 16


@dataclass(frozen=True)
class TimestampedValue:
    """One sample of an attribute."""

    timestamp_s: float
    value: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "value", np.atleast_1d(np.asarray(self.value, dtype=np.float64)))


class TimeSeriesStore:
    """Append-only store of timestamped vectors of a fixed dimension."""

    def __init__(self, dimension: int, max_samples: Optional[int] = None) -> None:
        if dimension <= 0:
            raise ValueError("dimension must be positive")
        if max_samples is not None and max_samples <= 0:
            raise ValueError("max_samples must be positive when given")
        self.dimension = dimension
        self.max_samples = max_samples
        capacity = _INITIAL_CAPACITY
        if max_samples is not None:
            capacity = min(capacity, max_samples * 2)
        self._times = np.empty(capacity, dtype=np.float64)
        self._values = np.empty((capacity, dimension), dtype=np.float64)
        self._start = 0
        self._size = 0
        #: Monotone counters consumed by incremental readers (the feature
        #: cache): how many samples were ever appended, and how many of them
        #: were discarded again (ring eviction or clear()).
        self._append_count = 0
        self._discard_count = 0

    # ---------------------------------------------------------- buffer admin
    def _active_times(self) -> np.ndarray:
        return self._times[self._start : self._start + self._size]

    def _active_values(self) -> np.ndarray:
        return self._values[self._start : self._start + self._size]

    def _ensure_room(self, count: int) -> None:
        """Make room for ``count`` more rows at the end of the active region."""
        capacity = self._times.shape[0]
        if self._start + self._size + count <= capacity:
            return
        if self._size + count <= capacity // 2:
            # Plenty of dead space at the front (ring behaviour slid _start
            # forward): compact in place instead of reallocating.
            self._times[: self._size] = self._active_times()
            self._values[: self._size] = self._active_values()
            self._start = 0
            return
        new_capacity = max(capacity * 2, self._size + count, _INITIAL_CAPACITY)
        new_times = np.empty(new_capacity, dtype=np.float64)
        new_values = np.empty((new_capacity, self.dimension), dtype=np.float64)
        new_times[: self._size] = self._active_times()
        new_values[: self._size] = self._active_values()
        self._times = new_times
        self._values = new_values
        self._start = 0

    def _enforce_ring(self) -> None:
        if self.max_samples is not None and self._size > self.max_samples:
            overflow = self._size - self.max_samples
            self._start += overflow
            self._size = self.max_samples
            self._discard_count += overflow

    # ------------------------------------------------------------ mutation
    def append(self, timestamp_s: float, value) -> TimestampedValue:
        """Append a sample; timestamps must be non-decreasing."""
        value = np.atleast_1d(np.asarray(value, dtype=np.float64))
        if value.shape != (self.dimension,):
            raise ValueError(
                f"expected a value of dimension {self.dimension}, got shape {value.shape}"
            )
        timestamp_s = float(timestamp_s)
        if self._size and timestamp_s < self._times[self._start + self._size - 1]:
            raise ValueError("timestamps must be non-decreasing")
        self._ensure_room(1)
        row = self._start + self._size
        self._times[row] = timestamp_s
        self._values[row] = value
        self._size += 1
        self._append_count += 1
        self._enforce_ring()
        return TimestampedValue(timestamp_s=timestamp_s, value=value)

    def append_batch(self, timestamps_s, values) -> int:
        """Append many samples at once (bulk copy into the buffers).

        ``timestamps_s`` must be non-decreasing and not precede the newest
        stored sample; ``values`` has shape ``(len(timestamps_s), dimension)``.
        Returns the number of samples appended.
        """
        timestamps = np.asarray(timestamps_s, dtype=np.float64).reshape(-1)
        values = np.atleast_2d(np.asarray(values, dtype=np.float64))
        if values.shape != (timestamps.shape[0], self.dimension):
            raise ValueError(
                f"expected values of shape ({timestamps.shape[0]}, {self.dimension}), "
                f"got {values.shape}"
            )
        count = int(timestamps.shape[0])
        if count == 0:
            return 0
        if count > 1 and np.any(timestamps[1:] < timestamps[:-1]):
            raise ValueError("timestamps must be non-decreasing")
        if self._size and timestamps[0] < self._times[self._start + self._size - 1]:
            raise ValueError("timestamps must be non-decreasing")
        self._ensure_room(count)
        row = self._start + self._size
        self._times[row : row + count] = timestamps
        self._values[row : row + count] = values
        self._size += count
        self._append_count += count
        self._enforce_ring()
        return count

    def clear(self) -> None:
        self._discard_count += self._size
        self._start = 0
        self._size = 0

    # --------------------------------------------------- incremental readers
    @property
    def append_count(self) -> int:
        """Total number of samples ever appended (never decreases)."""
        return self._append_count

    @property
    def discard_count(self) -> int:
        """Total number of appended samples since discarded (ring / clear)."""
        return self._discard_count

    def first_timestamp_appended_after(self, append_count: int) -> Optional[float]:
        """Timestamp of the first sample appended after ``append_count``.

        ``None`` when nothing was appended since that snapshot.  Only valid
        while all of those newer samples are still stored (callers must
        check :attr:`discard_count` against their snapshot first).
        """
        delta = self._append_count - append_count
        if delta <= 0:
            return None
        if delta > self._size:
            raise ValueError(
                "samples appended after the snapshot were already discarded"
            )
        return float(self._times[self._start + self._size - delta])

    # ------------------------------------------------------------ accessors
    def __len__(self) -> int:
        return self._size

    @property
    def is_empty(self) -> bool:
        return self._size == 0

    def latest(self) -> TimestampedValue:
        if not self._size:
            raise ValueError("store is empty")
        row = self._start + self._size - 1
        return TimestampedValue(
            timestamp_s=float(self._times[row]), value=self._values[row].copy()
        )

    def latest_timestamp_s(self) -> float:
        """Timestamp of the newest sample (raises when the store is empty)."""
        if not self._size:
            raise ValueError("store is empty")
        return float(self._times[self._start + self._size - 1])

    def latest_value(self, default: Optional[np.ndarray] = None) -> np.ndarray:
        """Newest value, or ``default`` / zeros when the store is empty."""
        if self._size:
            return self._values[self._start + self._size - 1].copy()
        if default is not None:
            return np.atleast_1d(np.asarray(default, dtype=np.float64))
        return np.zeros(self.dimension)

    def staleness_s(self, now_s: float) -> float:
        """Age of the newest sample; ``inf`` when no sample exists."""
        if not self._size:
            return float("inf")
        return float(now_s - self._times[self._start + self._size - 1])

    def timestamps(self) -> np.ndarray:
        return self._active_times().copy()

    def time_view(self) -> np.ndarray:
        """No-copy view of the active timestamps — treat as read-only.

        Batch readers (the manager's cross-user resample) stack many stores'
        buffers into one array; handing them a copy per store per query
        would defeat the point.
        """
        return self._active_times()

    def value_view(self) -> np.ndarray:
        """No-copy ``(num_samples, dimension)`` view — treat as read-only."""
        return self._active_values()

    def values(self) -> np.ndarray:
        """All values stacked into shape ``(num_samples, dimension)``."""
        if not self._size:
            return np.zeros((0, self.dimension))
        return self._active_values().copy()

    # --------------------------------------------------------------- queries
    def _window_slice(self, start_s: float, end_s: float) -> slice:
        """Row slice (relative to the active region) of ``start_s <= t < end_s``."""
        times = self._active_times()
        lo = int(times.searchsorted(start_s, side="left"))
        hi = int(times.searchsorted(end_s, side="left"))
        return slice(lo, hi)

    def window(self, start_s: float, end_s: float) -> List[TimestampedValue]:
        """All samples with ``start_s <= timestamp < end_s``."""
        if end_s < start_s:
            raise ValueError("end_s must be >= start_s")
        rows = self._window_slice(start_s, end_s)
        times = self._active_times()[rows]
        values = self._active_values()[rows]
        return [
            TimestampedValue(timestamp_s=float(t), value=v.copy())
            for t, v in zip(times, values)
        ]

    def window_values(self, start_s: float, end_s: float) -> np.ndarray:
        if end_s < start_s:
            raise ValueError("end_s must be >= start_s")
        rows = self._window_slice(start_s, end_s)
        if rows.start == rows.stop:
            return np.zeros((0, self.dimension))
        return self._active_values()[rows].copy()

    def resample(self, times_s: Sequence[float]) -> np.ndarray:
        """Zero-order-hold resampling onto ``times_s`` (shape ``(len, dimension)``).

        Times before the first sample receive the first sample's value; an
        empty store resamples to zeros.
        """
        times = np.asarray(times_s, dtype=np.float64)
        if times.ndim != 1:
            raise ValueError("times_s must be one-dimensional")
        if not self._size:
            return np.zeros((times.shape[0], self.dimension))
        indices = self._active_times().searchsorted(times, side="right") - 1
        # searchsorted never exceeds _size, so only the lower bound needs
        # clamping; the in-place ufunc avoids np.clip's dispatch overhead
        # (this runs once per attribute per user per feature query).
        np.maximum(indices, 0, out=indices)
        return self._active_values()[indices]

    def resample_into(self, times_s: np.ndarray, out: np.ndarray) -> None:
        """:meth:`resample` writing into a preallocated ``out`` slice.

        The feature hot path (one call per attribute per user per interval)
        assembles directly into the stacked feature matrix, skipping the
        input re-validation and the intermediate allocation of
        :meth:`resample`.  ``times_s`` must already be a sorted 1-D float
        array and ``out`` a ``(len(times_s), dimension)`` view.
        """
        if not self._size:
            out[:] = 0.0
            return
        indices = self._active_times().searchsorted(times_s, side="right") - 1
        np.maximum(indices, 0, out=indices)
        np.take(self._active_values(), indices, axis=0, out=out)

    def mean(self, start_s: Optional[float] = None, end_s: Optional[float] = None) -> np.ndarray:
        """Mean value over a window (whole history by default)."""
        if start_s is None and end_s is None:
            values = self._active_values()
        else:
            start = start_s if start_s is not None else -np.inf
            end = end_s if end_s is not None else np.inf
            if end < start:
                raise ValueError("end_s must be >= start_s")
            values = self._active_values()[self._window_slice(start, end)]
        if values.shape[0] == 0:
            return np.zeros(self.dimension)
        return values.mean(axis=0)
