"""Cluster-quality metrics.

These metrics feed two consumers:

* the DDQN reward, which trades off intra-group similarity (users in one
  multicast group should have similar channel conditions and preferences)
  against the number of groups (each group costs a separate multicast
  channel); and
* the evaluation harness, which compares grouping strategies.
"""

from __future__ import annotations

import numpy as np


def pairwise_euclidean(points: np.ndarray) -> np.ndarray:
    """Full pairwise Euclidean distance matrix of shape ``(n, n)``."""
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    squared = np.sum(points**2, axis=1)
    dist_sq = squared[:, None] + squared[None, :] - 2.0 * points @ points.T
    np.maximum(dist_sq, 0.0, out=dist_sq)
    return np.sqrt(dist_sq)


def inertia(points: np.ndarray, labels: np.ndarray, centroids: np.ndarray) -> float:
    """Within-cluster sum of squared distances to the assigned centroid."""
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    labels = np.asarray(labels, dtype=int)
    centroids = np.atleast_2d(np.asarray(centroids, dtype=np.float64))
    if labels.shape[0] != points.shape[0]:
        raise ValueError("labels and points must have the same length")
    return float(np.sum((points - centroids[labels]) ** 2))


def silhouette_score(points: np.ndarray, labels: np.ndarray) -> float:
    """Mean silhouette coefficient over all points.

    Returns 0.0 when there is a single cluster (the coefficient is undefined
    there); returns values in ``[-1, 1]`` otherwise.  Singleton clusters get
    a silhouette of 0 for their lone member, following scikit-learn.
    """
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    labels = np.asarray(labels, dtype=int)
    unique = np.unique(labels)
    if unique.shape[0] < 2:
        return 0.0
    distances = pairwise_euclidean(points)
    n = points.shape[0]
    scores = np.zeros(n, dtype=np.float64)
    for i in range(n):
        own = labels[i]
        own_mask = labels == own
        own_count = int(own_mask.sum())
        if own_count <= 1:
            scores[i] = 0.0
            continue
        a = distances[i, own_mask].sum() / (own_count - 1)
        b = np.inf
        for other in unique:
            if other == own:
                continue
            other_mask = labels == other
            b = min(b, float(distances[i, other_mask].mean()))
        denom = max(a, b)
        scores[i] = 0.0 if denom == 0 else (b - a) / denom
    return float(scores.mean())


def davies_bouldin_index(points: np.ndarray, labels: np.ndarray) -> float:
    """Davies-Bouldin index (lower is better); 0.0 for a single cluster."""
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    labels = np.asarray(labels, dtype=int)
    unique = np.unique(labels)
    k = unique.shape[0]
    if k < 2:
        return 0.0
    centroids = np.vstack([points[labels == c].mean(axis=0) for c in unique])
    scatters = np.array(
        [
            float(np.mean(np.linalg.norm(points[labels == c] - centroids[i], axis=1)))
            for i, c in enumerate(unique)
        ]
    )
    index = 0.0
    for i in range(k):
        worst = 0.0
        for j in range(k):
            if i == j:
                continue
            separation = float(np.linalg.norm(centroids[i] - centroids[j]))
            if separation == 0:
                ratio = np.inf
            else:
                ratio = (scatters[i] + scatters[j]) / separation
            worst = max(worst, ratio)
        index += worst
    return float(index / k)
