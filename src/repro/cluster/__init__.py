"""Clustering substrate: K-means++, quality metrics and baseline groupers.

The paper's two-step multicast group construction uses K-means++ for the
actual clustering once a DDQN agent has chosen the number of groups.  This
subpackage provides that K-means++ implementation plus the cluster-quality
metrics the DDQN reward is built from, and the baseline grouping strategies
the evaluation compares against.
"""

from repro.cluster.kmeans import KMeansPlusPlus, KMeansResult, kmeans_plus_plus_init
from repro.cluster.metrics import (
    davies_bouldin_index,
    inertia,
    pairwise_euclidean,
    silhouette_score,
)
from repro.cluster.baselines import (
    AgglomerativeGrouper,
    FixedKGrouper,
    RandomGrouper,
    SingleGroupGrouper,
)

__all__ = [
    "AgglomerativeGrouper",
    "FixedKGrouper",
    "KMeansPlusPlus",
    "KMeansResult",
    "RandomGrouper",
    "SingleGroupGrouper",
    "davies_bouldin_index",
    "inertia",
    "kmeans_plus_plus_init",
    "pairwise_euclidean",
    "silhouette_score",
]
