"""K-means++ clustering.

User similarity in the paper is the Euclidean distance between (compressed)
user-status vectors; K-means++ is used to partition users into the number of
multicast groups chosen by the DDQN agent.  The implementation below follows
Arthur & Vassilvitskii (2007): D^2-weighted seeding followed by Lloyd
iterations, with an optional number of restarts keeping the lowest-inertia
solution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.cluster.metrics import inertia


@dataclass
class KMeansResult:
    """Outcome of a K-means++ run."""

    labels: np.ndarray
    centroids: np.ndarray
    inertia: float
    iterations: int
    converged: bool

    @property
    def num_clusters(self) -> int:
        return int(self.centroids.shape[0])

    def cluster_sizes(self) -> np.ndarray:
        """Number of points assigned to each cluster."""
        return np.bincount(self.labels, minlength=self.num_clusters)


def kmeans_plus_plus_init(
    points: np.ndarray,
    num_clusters: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """D^2-weighted seeding: return ``num_clusters`` initial centroids."""
    points = np.asarray(points, dtype=np.float64)
    n = points.shape[0]
    if num_clusters > n:
        raise ValueError(f"cannot seed {num_clusters} clusters from {n} points")
    centroids = np.empty((num_clusters, points.shape[1]), dtype=np.float64)
    first = int(rng.integers(n))
    centroids[0] = points[first]
    closest_sq = np.sum((points - centroids[0]) ** 2, axis=1)
    for k in range(1, num_clusters):
        total = closest_sq.sum()
        if total <= 1e-15:
            # All remaining points coincide with an existing centroid; fall
            # back to uniform sampling so seeding still terminates.
            idx = int(rng.integers(n))
        else:
            probabilities = closest_sq / total
            idx = int(rng.choice(n, p=probabilities))
        centroids[k] = points[idx]
        dist_sq = np.sum((points - centroids[k]) ** 2, axis=1)
        closest_sq = np.minimum(closest_sq, dist_sq)
    return centroids


def _assign(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Assign each point to its nearest centroid (squared Euclidean)."""
    distances = np.sum((points[:, None, :] - centroids[None, :, :]) ** 2, axis=2)
    return distances.argmin(axis=1)


class KMeansPlusPlus:
    """K-means with K-means++ seeding and multiple restarts.

    Parameters
    ----------
    num_clusters:
        Number of clusters ``K``.
    max_iterations:
        Maximum Lloyd iterations per restart.
    tolerance:
        Convergence threshold on the total centroid movement.
    restarts:
        Number of independent seedings; the lowest-inertia run wins.
    """

    def __init__(
        self,
        num_clusters: int,
        max_iterations: int = 100,
        tolerance: float = 1e-6,
        restarts: int = 3,
    ) -> None:
        if num_clusters <= 0:
            raise ValueError("num_clusters must be positive")
        if max_iterations <= 0 or restarts <= 0:
            raise ValueError("max_iterations and restarts must be positive")
        self.num_clusters = num_clusters
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.restarts = restarts

    def fit(self, points: np.ndarray, rng: Optional[np.random.Generator] = None) -> KMeansResult:
        """Cluster ``points`` (shape ``(n, d)``) and return the best result.

        ``rng`` is required: seeding draws from it, and a silent default
        would hide the caller's reproducibility contract.
        """
        if rng is None:
            raise ValueError(
                "KMeansPlusPlus.fit requires an explicit rng; derive one from "
                "the repro.sim.rng registry (e.g. legacy_stream(0) for the "
                "historical default)"
            )
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if points.shape[0] < self.num_clusters:
            raise ValueError(
                f"cannot form {self.num_clusters} clusters from {points.shape[0]} points"
            )
        best: Optional[KMeansResult] = None
        for _ in range(self.restarts):
            result = self._single_run(points, rng)
            if best is None or result.inertia < best.inertia:
                best = result
        assert best is not None
        return best

    def _single_run(self, points: np.ndarray, rng: np.random.Generator) -> KMeansResult:
        centroids = kmeans_plus_plus_init(points, self.num_clusters, rng)
        labels = _assign(points, centroids)
        converged = False
        iteration = 0
        for _iteration in range(1, self.max_iterations + 1):
            new_centroids = centroids.copy()
            for k in range(self.num_clusters):
                members = points[labels == k]
                if members.shape[0] == 0:
                    # Re-seed empty clusters at the point farthest from its
                    # centroid, the standard remedy that keeps exactly K
                    # groups (the multicast scheduler requires all K groups
                    # to exist).
                    distances = np.sum((points - centroids[labels]) ** 2, axis=1)
                    new_centroids[k] = points[int(distances.argmax())]
                else:
                    new_centroids[k] = members.mean(axis=0)
            movement = float(np.sqrt(np.sum((new_centroids - centroids) ** 2)))
            centroids = new_centroids
            labels = _assign(points, centroids)
            if movement < self.tolerance:
                converged = True
                break
        return KMeansResult(
            labels=labels,
            centroids=centroids,
            inertia=inertia(points, labels, centroids),
            iterations=iteration,
            converged=converged,
        )
