"""Baseline multicast grouping strategies.

The paper's contribution is the *two-step* grouping (DDQN-chosen K followed
by K-means++).  To show its value the evaluation needs simpler comparators:

* :class:`SingleGroupGrouper` -- everyone shares one multicast channel, so
  the group rate collapses to the worst user's rate.
* :class:`RandomGrouper` -- a fixed number of groups with random membership.
* :class:`FixedKGrouper` -- K-means++ with a statically configured K (what an
  operator without the DDQN would deploy).
* :class:`AgglomerativeGrouper` -- average-linkage hierarchical clustering
  cut at K groups, a classical alternative to K-means.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cluster.kmeans import KMeansPlusPlus
from repro.cluster.metrics import pairwise_euclidean


class Grouper:
    """Common interface: map user feature vectors to group labels."""

    def group(self, points: np.ndarray, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        raise NotImplementedError


class SingleGroupGrouper(Grouper):
    """Put every user in multicast group 0."""

    def group(self, points: np.ndarray, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        return np.zeros(points.shape[0], dtype=int)


class RandomGrouper(Grouper):
    """Assign users to ``num_groups`` groups uniformly at random.

    Every group is guaranteed to be non-empty (required by the multicast
    scheduler) by first dealing one user to each group and then assigning
    the remainder randomly.
    """

    def __init__(self, num_groups: int) -> None:
        if num_groups <= 0:
            raise ValueError("num_groups must be positive")
        self.num_groups = num_groups

    def group(self, points: np.ndarray, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        n = points.shape[0]
        if n < self.num_groups:
            raise ValueError(f"cannot form {self.num_groups} groups from {n} users")
        if rng is None:
            raise ValueError(
                "RandomGrouper.group requires an explicit rng; derive one "
                "from the repro.sim.rng registry (e.g. legacy_stream(0) for "
                "the historical default)"
            )
        labels = np.empty(n, dtype=int)
        order = rng.permutation(n)
        labels[order[: self.num_groups]] = np.arange(self.num_groups)
        labels[order[self.num_groups :]] = rng.integers(
            0, self.num_groups, size=n - self.num_groups
        )
        return labels


class FixedKGrouper(Grouper):
    """K-means++ clustering with a statically configured number of groups."""

    def __init__(self, num_groups: int, restarts: int = 3) -> None:
        self.num_groups = num_groups
        self.restarts = restarts

    def group(self, points: np.ndarray, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        kmeans = KMeansPlusPlus(self.num_groups, restarts=self.restarts)
        return kmeans.fit(points, rng=rng).labels


class AgglomerativeGrouper(Grouper):
    """Average-linkage agglomerative clustering cut at ``num_groups`` clusters."""

    def __init__(self, num_groups: int) -> None:
        if num_groups <= 0:
            raise ValueError("num_groups must be positive")
        self.num_groups = num_groups

    def group(self, points: np.ndarray, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        del rng  # deterministic
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        n = points.shape[0]
        if n < self.num_groups:
            raise ValueError(f"cannot form {self.num_groups} groups from {n} users")
        # Start with every point in its own cluster and repeatedly merge the
        # two clusters with the smallest average pairwise distance.
        distances = pairwise_euclidean(points)
        clusters = {i: [i] for i in range(n)}
        while len(clusters) > self.num_groups:
            keys = sorted(clusters)
            best_pair = None
            best_distance = np.inf
            for a_pos, a in enumerate(keys):
                for b in keys[a_pos + 1 :]:
                    members_a = clusters[a]
                    members_b = clusters[b]
                    linkage = float(distances[np.ix_(members_a, members_b)].mean())
                    if linkage < best_distance:
                        best_distance = linkage
                        best_pair = (a, b)
            assert best_pair is not None
            a, b = best_pair
            clusters[a] = clusters[a] + clusters[b]
            del clusters[b]
        labels = np.empty(n, dtype=int)
        for new_label, key in enumerate(sorted(clusters)):
            labels[clusters[key]] = new_label
        return labels
