"""Experiment runners and result formatting.

The benchmark harnesses, the examples and the command-line interface all run
variations of the same experiments (the Fig. 3 scenario, the grouping /
staleness / predictor ablations).  This subpackage provides the reusable
runners that return structured results plus plain-text table formatting, so
downstream users can script parameter sweeps without copying benchmark code.
"""

from repro.analysis.experiments import (
    Fig3Result,
    GroupingAblationRow,
    PredictorComparisonResult,
    PredictorComparisonRow,
    StalenessAblationRow,
    run_fig3_experiment,
    run_grouping_ablation,
    run_predictor_comparison,
    run_staleness_ablation,
    select_news_group,
)
from repro.analysis.sweep import SweepPoint, SweepResult, sweep_population_sizes, sweep_scenarios
from repro.analysis.tables import format_table

__all__ = [
    "Fig3Result",
    "GroupingAblationRow",
    "PredictorComparisonResult",
    "PredictorComparisonRow",
    "StalenessAblationRow",
    "SweepPoint",
    "SweepResult",
    "format_table",
    "run_fig3_experiment",
    "run_grouping_ablation",
    "run_predictor_comparison",
    "run_staleness_ablation",
    "select_news_group",
    "sweep_population_sizes",
    "sweep_scenarios",
]
