"""Parameter sweeps over the prediction scheme.

A reproduction study usually wants to know how robust the headline accuracy
is to scenario knobs the paper does not vary (population size, reservation
interval length, number of Monte-Carlo rollouts, ...).  ``sweep_scenarios``
runs the end-to-end scheme for every requested configuration and collects
the accuracy summary per point, so such sensitivity figures are one function
call away.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.core import DTResourcePredictionScheme, SchemeConfig
from repro.sim import SimulationConfig, StreamingSimulator


@dataclass
class SweepPoint:
    """Result of one sweep configuration."""

    label: str
    sim_overrides: Dict[str, object]
    scheme_overrides: Dict[str, object]
    mean_radio_accuracy: float
    max_radio_accuracy: float
    mean_computing_accuracy: float
    mean_actual_blocks: float


@dataclass
class SweepResult:
    """All points of a sweep, in execution order."""

    points: List[SweepPoint] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.points)

    def best(self) -> SweepPoint:
        if not self.points:
            raise ValueError("sweep produced no points")
        return max(self.points, key=lambda point: point.mean_radio_accuracy)

    def as_rows(self) -> List[List]:
        return [
            [
                point.label,
                point.mean_radio_accuracy,
                point.max_radio_accuracy,
                point.mean_computing_accuracy,
                point.mean_actual_blocks,
            ]
            for point in self.points
        ]


def _run_point(
    label: str,
    sim_overrides: Mapping[str, object],
    scheme_overrides: Mapping[str, object],
    num_eval_intervals: int,
) -> SweepPoint:
    sim_options = dict(
        num_users=16,
        num_videos=60,
        num_intervals=num_eval_intervals + 2,
        interval_s=120.0,
        seed=29,
    )
    sim_options.update(sim_overrides)
    scheme_options = dict(
        warmup_intervals=2,
        cnn_epochs=4,
        ddqn_episodes=6,
        mc_rollouts=8,
        min_groups=2,
        max_groups=5,
        seed=0,
    )
    scheme_options.update(scheme_overrides)
    scheme = DTResourcePredictionScheme(
        StreamingSimulator(SimulationConfig(**sim_options)),
        SchemeConfig(**scheme_options),
    )
    result = scheme.run(num_intervals=num_eval_intervals)
    return SweepPoint(
        label=label,
        sim_overrides=dict(sim_overrides),
        scheme_overrides=dict(scheme_overrides),
        mean_radio_accuracy=float(result.mean_radio_accuracy()),
        max_radio_accuracy=float(result.max_radio_accuracy()),
        mean_computing_accuracy=float(result.mean_computing_accuracy()),
        mean_actual_blocks=float(result.actual_radio_series().mean()),
    )


def sweep_scenarios(
    scenarios: Mapping[str, Mapping[str, object]],
    scheme_overrides: Optional[Mapping[str, Mapping[str, object]]] = None,
    num_eval_intervals: int = 3,
) -> SweepResult:
    """Run the scheme once per named scenario and collect accuracy summaries.

    Parameters
    ----------
    scenarios:
        Mapping from a point label to the :class:`SimulationConfig` overrides
        of that point (e.g. ``{"20 users": {"num_users": 20}}``).
    scheme_overrides:
        Optional per-label :class:`SchemeConfig` overrides.
    num_eval_intervals:
        Evaluated intervals per point (after warm-up).
    """
    if not scenarios:
        raise ValueError("scenarios must not be empty")
    if num_eval_intervals <= 0:
        raise ValueError("num_eval_intervals must be positive")
    scheme_overrides = scheme_overrides or {}
    result = SweepResult()
    for label, overrides in scenarios.items():
        result.points.append(
            _run_point(
                label,
                overrides,
                scheme_overrides.get(label, {}),
                num_eval_intervals,
            )
        )
    return result


def sweep_population_sizes(
    sizes: Sequence[int],
    num_eval_intervals: int = 3,
) -> SweepResult:
    """Convenience sweep over the number of simulated users."""
    if not sizes:
        raise ValueError("sizes must not be empty")
    scenarios = {f"{size} users": {"num_users": int(size)} for size in sizes}
    return sweep_scenarios(scenarios, num_eval_intervals=num_eval_intervals)
