"""Plain-text table formatting for experiment results."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def _format_cell(value, width: int, numeric: bool) -> str:
    if isinstance(value, float):
        text = f"{value:.3f}"
    else:
        text = str(value)
    return text.rjust(width) if numeric else text.ljust(width)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    min_width: int = 6,
) -> str:
    """Render ``rows`` as an aligned plain-text table.

    Numeric columns (those whose every value is an int/float) are
    right-aligned; everything else is left-aligned.  Floats are printed with
    three decimals.
    """
    rows = [list(row) for row in rows]
    if any(len(row) != len(headers) for row in rows):
        raise ValueError("every row must have one cell per header")

    columns = len(headers)
    numeric = [
        all(isinstance(row[i], (int, float)) and not isinstance(row[i], bool) for row in rows)
        if rows
        else False
        for i in range(columns)
    ]
    widths: List[int] = []
    for i in range(columns):
        cells = [_format_cell(row[i], 0, numeric[i]).strip() for row in rows]
        width = max([len(headers[i])] + [len(cell) for cell in cells] + [min_width])
        widths.append(width)

    lines = []
    header_line = "  ".join(
        headers[i].rjust(widths[i]) if numeric[i] else headers[i].ljust(widths[i])
        for i in range(columns)
    )
    lines.append(header_line)
    lines.append("  ".join("-" * widths[i] for i in range(columns)))
    for row in rows:
        lines.append(
            "  ".join(_format_cell(row[i], widths[i], numeric[i]) for i in range(columns))
        )
    return "\n".join(lines)
