"""Reusable experiment runners, built on the declarative scenario API.

Each runner is now a thin wrapper over the one spec → compile → run
pipeline (:mod:`repro.scenario`): it takes the registered ``campus_fig3``
spec, applies the experiment's overrides, executes it through
:class:`~repro.scenario.runner.ScenarioRunner` and post-processes the
:class:`~repro.scenario.runner.RunResult` into the small result dataclasses
the CLI and user scripts consume.  The compiled configs are field-for-field
identical to the hand-wired ones these runners used to build, so all
recorded numbers are unchanged (pinned by the scenario golden tests).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core import SchemeConfig
from repro.core.accuracy import mean_prediction_accuracy
from repro.core.pipeline import EvaluationResult
from repro.core.swiping import GroupSwipingProfile
from repro.predict import (
    ARPredictor,
    EwmaPredictor,
    LastValuePredictor,
    LinearTrendPredictor,
    MovingAveragePredictor,
    PerUserDemandPredictor,
    SeriesPredictor,
)
from repro.scenario import ScenarioRunner, ScenarioSpec, compile_spec, get_scenario
from repro.scenario.runner import RunResult
from repro.twin.collector import CollectionPolicy


def _fig3_spec(seed: int, num_eval_intervals: int, **overrides) -> ScenarioSpec:
    """The ``campus_fig3`` registry spec, re-targeted for one experiment.

    ``overrides`` are dotted spec paths (``"population.num_users"``); the
    ablations run with ``spare_intervals=0`` and lighter scheme knobs, which
    they pass the same way.
    """
    options = {"seed": seed, "num_intervals": num_eval_intervals}
    options.update(overrides)
    return get_scenario("campus_fig3", options)


def _run_spec(
    spec: ScenarioSpec, scheme_config: Optional[SchemeConfig] = None
) -> RunResult:
    """Compile and run ``spec``, optionally swapping in a full scheme config."""
    compiled = compile_spec(spec)
    if scheme_config is not None:
        compiled = dataclasses.replace(compiled, scheme_config=scheme_config)
    return ScenarioRunner(compiled).run()


# ------------------------------------------------------------------ Fig. 3 scenario
@dataclass
class Fig3Result:
    """Outcome of the Fig. 3 scenario (both panels plus headline accuracy)."""

    evaluation: EvaluationResult
    news_group_profile: GroupSwipingProfile
    mean_radio_accuracy: float
    max_radio_accuracy: float
    mean_computing_accuracy: float

    def cumulative_swiping(self) -> Dict[str, float]:
        return dict(self.news_group_profile.cumulative_swiping)

    def to_dict(self) -> dict:
        """JSON-canonical export sharing ``EvaluationResult.to_dict``'s shape.

        ``evaluation`` is exactly the unified per-interval/summary payload
        (the same shape ``RunResult`` embeds); the Fig. 3(a) panel rides
        along under ``news_group_profile``.
        """
        profile = self.news_group_profile
        return {
            "evaluation": self.evaluation.to_dict(),
            "news_group_profile": {
                "group_id": int(profile.group_id),
                "member_ids": [int(uid) for uid in profile.member_ids],
                "cumulative_swiping": {
                    str(category): float(value)
                    for category, value in profile.cumulative_swiping.items()
                },
                "engagement_share": {
                    str(category): float(value)
                    for category, value in profile.engagement_share.items()
                },
                "swipe_probability": {
                    str(category): float(value)
                    for category, value in profile.swipe_probability.items()
                },
            },
        }

    def demand_rows(self) -> List[List]:
        """Fig. 3(b) table rows, derived from the unified per-interval records."""
        return [
            [
                record["interval_index"],
                record["num_groups"],
                round(record["predicted_radio_blocks"], 2),
                round(record["actual_radio_blocks"], 2),
                round(record["radio_accuracy"], 4),
            ]
            for record in (e.to_dict() for e in self.evaluation.intervals)
        ]


def select_news_group(profiles: Dict[int, GroupSwipingProfile]) -> int:
    """The paper's "multicast group 1": the largest News-dominated group."""
    news_groups = [
        gid
        for gid, profile in profiles.items()
        if profile.most_watched_category() == "News"
    ]
    candidates = news_groups if news_groups else list(profiles)
    return max(candidates, key=lambda gid: len(profiles[gid].member_ids))


def run_fig3_experiment(
    seed: int = 2023,
    num_users: int = 24,
    num_eval_intervals: int = 6,
    interval_s: float = 150.0,
    scheme_config: Optional[SchemeConfig] = None,
    channel_draw_mode: Optional[str] = None,
    playback_workers: int = 1,
) -> Fig3Result:
    """Run the paper's Fig. 3 scenario and return both panels' data.

    ``channel_draw_mode="fast"`` trades seed compatibility with the scalar
    -era generator streams for ~1.5x faster channel sampling; ``"grouped"``
    switches to the per-group RNG streams whose results are identical for
    any worker count.  The default ``None`` lets the config resolve the
    mode — ``"grouped"`` when ``playback_workers > 1``, else the historical
    ``"compat"`` (see :class:`repro.sim.config.SimulationConfig`).
    """
    spec = _fig3_spec(
        seed,
        num_eval_intervals,
        **{
            "interval_s": interval_s,
            "population.num_users": num_users,
            "engine.channel_draw_mode": channel_draw_mode,
            "engine.playback_workers": playback_workers,
        },
    )
    run = _run_spec(spec, scheme_config)
    result = run.evaluation

    last = result.intervals[-1]
    group_id = select_news_group(last.profiles)
    return Fig3Result(
        evaluation=result,
        news_group_profile=last.profiles[group_id],
        mean_radio_accuracy=result.mean_radio_accuracy(),
        max_radio_accuracy=result.max_radio_accuracy(),
        mean_computing_accuracy=result.mean_computing_accuracy(),
    )


# ------------------------------------------------------------- grouping ablation
@dataclass
class GroupingAblationRow:
    strategy: str
    mean_groups: float
    mean_silhouette: float
    mean_actual_blocks: float
    mean_accuracy: float


def run_grouping_ablation(
    seed: int = 77,
    num_eval_intervals: int = 4,
    fixed_ks: Optional[List[int]] = None,
) -> List[GroupingAblationRow]:
    """Compare DDQN-K, silhouette-sweep and fixed-K grouping on one scenario."""
    fixed_ks = fixed_ks if fixed_ks is not None else [2, 4, 6]
    plans = [("ddqn", None), ("silhouette", None)] + [("fixed", k) for k in fixed_ks]
    rows: List[GroupingAblationRow] = []
    for k_strategy, fixed_k in plans:
        spec = _fig3_spec(
            seed,
            num_eval_intervals,
            **{
                "spare_intervals": 0,
                "scheme.mc_rollouts": 8,
                "scheme.k_strategy": k_strategy,
                "scheme.fixed_k": fixed_k,
            },
        )
        result = ScenarioRunner(spec).run().evaluation
        label = k_strategy if fixed_k is None else f"fixed (K={fixed_k})"
        rows.append(
            GroupingAblationRow(
                strategy=label,
                mean_groups=float(np.mean([e.grouping.num_groups for e in result.intervals])),
                mean_silhouette=float(np.mean([e.grouping.silhouette for e in result.intervals])),
                mean_actual_blocks=float(result.actual_radio_series().mean()),
                mean_accuracy=float(result.mean_radio_accuracy()),
            )
        )
    return rows


# ------------------------------------------------------------ staleness ablation
@dataclass
class StalenessAblationRow:
    label: str
    period_multiplier: float
    drop_probability: float
    mean_accuracy: float


def run_staleness_ablation(
    seeds: Optional[List[int]] = None,
    num_eval_intervals: int = 4,
    policies: Optional[Dict[str, CollectionPolicy]] = None,
) -> List[StalenessAblationRow]:
    """Measure prediction accuracy as digital-twin collection degrades."""
    seeds = seeds if seeds is not None else [11, 12]
    if policies is None:
        policies = {
            "fresh": CollectionPolicy.perfect(),
            "2x period": CollectionPolicy(period_multiplier=2.0),
            "8x period + 30% loss": CollectionPolicy(period_multiplier=8.0, drop_probability=0.3),
            "20x period + 70% loss": CollectionPolicy(period_multiplier=20.0, drop_probability=0.7),
        }
    rows: List[StalenessAblationRow] = []
    for label, policy in policies.items():
        accuracies = []
        for seed in seeds:
            spec = _fig3_spec(
                seed,
                num_eval_intervals,
                **{
                    "spare_intervals": 0,
                    "scheme.mc_rollouts": 8,
                    "engine.collection_period_multiplier": policy.period_multiplier,
                    "engine.collection_drop_probability": policy.drop_probability,
                    "engine.collection_delay_s": policy.delay_s,
                },
            )
            result = ScenarioRunner(spec).run().evaluation
            accuracies.append(result.mean_radio_accuracy())
        rows.append(
            StalenessAblationRow(
                label=label,
                period_multiplier=policy.period_multiplier,
                drop_probability=policy.drop_probability,
                mean_accuracy=float(np.mean(accuracies)),
            )
        )
    return rows


# ---------------------------------------------------------- predictor comparison
@dataclass
class PredictorComparisonRow:
    name: str
    mean_accuracy: float


@dataclass
class PredictorComparisonResult:
    rows: List[PredictorComparisonRow] = field(default_factory=list)
    unicast_blocks: float = 0.0
    multicast_actual_blocks: float = 0.0

    @property
    def multicast_saving(self) -> float:
        if self.unicast_blocks <= 0:
            return 0.0
        return 1.0 - self.multicast_actual_blocks / self.unicast_blocks


def run_predictor_comparison(
    seed: int = 55,
    num_eval_intervals: int = 8,
    baselines: Optional[List[SeriesPredictor]] = None,
) -> PredictorComparisonResult:
    """Compare the DT-assisted scheme with history-only and per-user baselines."""
    baselines = (
        baselines
        if baselines is not None
        else [
            LastValuePredictor(),
            MovingAveragePredictor(window=3),
            EwmaPredictor(alpha=0.5),
            LinearTrendPredictor(window=4),
            ARPredictor(order=2),
        ]
    )
    spec = _fig3_spec(
        seed,
        num_eval_intervals,
        **{"spare_intervals": 0, "scheme.mc_rollouts": 10},
    )
    run = ScenarioRunner(spec).run()
    result = run.evaluation
    actual = result.actual_radio_series()

    comparison = PredictorComparisonResult()
    comparison.rows.append(
        PredictorComparisonRow("dt-assisted", float(result.mean_radio_accuracy()))
    )
    warmup = min(2, len(actual) - 1)
    for predictor in baselines:
        predictions = predictor.predict_series(actual, warmup=warmup)
        comparison.rows.append(
            PredictorComparisonRow(
                predictor.name,
                float(mean_prediction_accuracy(predictions, actual[warmup:])),
            )
        )

    simulator = run.simulator
    per_user = PerUserDemandPredictor(
        simulator.catalog,
        interval_s=simulator.config.interval_s,
        rb_bandwidth_hz=simulator.config.rb_bandwidth_hz,
        stream_bandwidth_hz=simulator.config.stream_bandwidth_hz,
        implementation_loss=simulator.config.implementation_loss,
        swipe_gap_s=simulator.config.swipe_gap_s,
    )
    window_end = simulator.clock.current_interval * simulator.config.interval_s
    window_start = window_end - simulator.config.interval_s
    comparison.unicast_blocks = per_user.total_resource_blocks(
        per_user.predict_all(simulator.twins, window_start, window_end)
    )
    comparison.multicast_actual_blocks = float(actual.mean())
    return comparison
