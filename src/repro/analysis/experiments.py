"""Reusable experiment runners.

Each runner builds the simulator and the DT-assisted prediction scheme from
a few scenario knobs, runs the experiment and returns a small result
dataclass.  The command-line interface and user scripts consume these; the
benchmark harnesses keep their own copies of the scenario so the recorded
numbers in EXPERIMENTS.md stay pinned to one configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core import DTResourcePredictionScheme, SchemeConfig
from repro.core.accuracy import mean_prediction_accuracy
from repro.core.pipeline import EvaluationResult
from repro.core.swiping import GroupSwipingProfile
from repro.predict import (
    ARPredictor,
    EwmaPredictor,
    LastValuePredictor,
    LinearTrendPredictor,
    MovingAveragePredictor,
    PerUserDemandPredictor,
    SeriesPredictor,
)
from repro.sim import SimulationConfig, StreamingSimulator
from repro.twin.collector import CollectionPolicy


def _default_sim_config(seed: int, num_intervals: int, **overrides) -> SimulationConfig:
    options = dict(
        num_users=24,
        num_videos=100,
        num_intervals=num_intervals,
        interval_s=150.0,
        favourite_category="News",
        favourite_user_fraction=0.8,
        favourite_boost=8.0,
        recommendation_popularity_weight=0.3,
        popularity_update_rate=0.05,
        seed=seed,
    )
    options.update(overrides)
    return SimulationConfig(**options)


def _default_scheme_config(seed: int = 0, **overrides) -> SchemeConfig:
    options = dict(
        warmup_intervals=2,
        cnn_epochs=6,
        ddqn_episodes=12,
        mc_rollouts=10,
        min_groups=2,
        max_groups=6,
        seed=seed,
    )
    options.update(overrides)
    return SchemeConfig(**options)


# ------------------------------------------------------------------ Fig. 3 scenario
@dataclass
class Fig3Result:
    """Outcome of the Fig. 3 scenario (both panels plus headline accuracy)."""

    evaluation: EvaluationResult
    news_group_profile: GroupSwipingProfile
    mean_radio_accuracy: float
    max_radio_accuracy: float
    mean_computing_accuracy: float

    def cumulative_swiping(self) -> Dict[str, float]:
        return dict(self.news_group_profile.cumulative_swiping)

    def demand_rows(self) -> List[List]:
        rows = []
        for evaluation in self.evaluation.intervals:
            rows.append(
                [
                    evaluation.interval_index,
                    evaluation.grouping.num_groups,
                    round(evaluation.predicted_radio_blocks, 2),
                    round(evaluation.actual_radio_blocks, 2),
                    round(evaluation.radio_accuracy, 4),
                ]
            )
        return rows


def run_fig3_experiment(
    seed: int = 2023,
    num_users: int = 24,
    num_eval_intervals: int = 6,
    interval_s: float = 150.0,
    scheme_config: Optional[SchemeConfig] = None,
    channel_draw_mode: Optional[str] = None,
    playback_workers: int = 1,
) -> Fig3Result:
    """Run the paper's Fig. 3 scenario and return both panels' data.

    ``channel_draw_mode="fast"`` trades seed compatibility with the scalar
    -era generator streams for ~1.5x faster channel sampling; ``"grouped"``
    switches to the per-group RNG streams whose results are identical for
    any worker count.  The default ``None`` lets the config resolve the
    mode — ``"grouped"`` when ``playback_workers > 1``, else the historical
    ``"compat"`` (see :class:`repro.sim.config.SimulationConfig`).
    """
    sim_config = _default_sim_config(
        seed,
        num_eval_intervals + 3,
        num_users=num_users,
        interval_s=interval_s,
        channel_draw_mode=channel_draw_mode,
        playback_workers=playback_workers,
    )
    with DTResourcePredictionScheme(
        StreamingSimulator(sim_config),
        scheme_config if scheme_config is not None else _default_scheme_config(),
    ) as scheme:
        result = scheme.run(num_intervals=num_eval_intervals)

    last = result.intervals[-1]
    news_groups = [
        gid
        for gid, profile in last.profiles.items()
        if profile.most_watched_category() == "News"
    ]
    candidates = news_groups if news_groups else list(last.profiles)
    group_id = max(candidates, key=lambda gid: len(last.profiles[gid].member_ids))

    return Fig3Result(
        evaluation=result,
        news_group_profile=last.profiles[group_id],
        mean_radio_accuracy=result.mean_radio_accuracy(),
        max_radio_accuracy=result.max_radio_accuracy(),
        mean_computing_accuracy=result.mean_computing_accuracy(),
    )


# ------------------------------------------------------------- grouping ablation
@dataclass
class GroupingAblationRow:
    strategy: str
    mean_groups: float
    mean_silhouette: float
    mean_actual_blocks: float
    mean_accuracy: float


def run_grouping_ablation(
    seed: int = 77,
    num_eval_intervals: int = 4,
    fixed_ks: Optional[List[int]] = None,
) -> List[GroupingAblationRow]:
    """Compare DDQN-K, silhouette-sweep and fixed-K grouping on one scenario."""
    fixed_ks = fixed_ks if fixed_ks is not None else [2, 4, 6]
    plans = [("ddqn", None), ("silhouette", None)] + [("fixed", k) for k in fixed_ks]
    rows: List[GroupingAblationRow] = []
    for k_strategy, fixed_k in plans:
        sim_config = _default_sim_config(seed, num_eval_intervals + 2)
        scheme = DTResourcePredictionScheme(
            StreamingSimulator(sim_config),
            _default_scheme_config(mc_rollouts=8),
            k_strategy=k_strategy,
        )
        scheme.fixed_k = fixed_k
        result = scheme.run(num_intervals=num_eval_intervals)
        label = k_strategy if fixed_k is None else f"fixed (K={fixed_k})"
        rows.append(
            GroupingAblationRow(
                strategy=label,
                mean_groups=float(np.mean([e.grouping.num_groups for e in result.intervals])),
                mean_silhouette=float(np.mean([e.grouping.silhouette for e in result.intervals])),
                mean_actual_blocks=float(result.actual_radio_series().mean()),
                mean_accuracy=float(result.mean_radio_accuracy()),
            )
        )
    return rows


# ------------------------------------------------------------ staleness ablation
@dataclass
class StalenessAblationRow:
    label: str
    period_multiplier: float
    drop_probability: float
    mean_accuracy: float


def run_staleness_ablation(
    seeds: Optional[List[int]] = None,
    num_eval_intervals: int = 4,
    policies: Optional[Dict[str, CollectionPolicy]] = None,
) -> List[StalenessAblationRow]:
    """Measure prediction accuracy as digital-twin collection degrades."""
    seeds = seeds if seeds is not None else [11, 12]
    if policies is None:
        policies = {
            "fresh": CollectionPolicy.perfect(),
            "2x period": CollectionPolicy(period_multiplier=2.0),
            "8x period + 30% loss": CollectionPolicy(period_multiplier=8.0, drop_probability=0.3),
            "20x period + 70% loss": CollectionPolicy(period_multiplier=20.0, drop_probability=0.7),
        }
    rows: List[StalenessAblationRow] = []
    for label, policy in policies.items():
        accuracies = []
        for seed in seeds:
            sim_config = _default_sim_config(
                seed, num_eval_intervals + 2, collection_policy=policy
            )
            scheme = DTResourcePredictionScheme(
                StreamingSimulator(sim_config), _default_scheme_config(mc_rollouts=8)
            )
            accuracies.append(scheme.run(num_intervals=num_eval_intervals).mean_radio_accuracy())
        rows.append(
            StalenessAblationRow(
                label=label,
                period_multiplier=policy.period_multiplier,
                drop_probability=policy.drop_probability,
                mean_accuracy=float(np.mean(accuracies)),
            )
        )
    return rows


# ---------------------------------------------------------- predictor comparison
@dataclass
class PredictorComparisonRow:
    name: str
    mean_accuracy: float


@dataclass
class PredictorComparisonResult:
    rows: List[PredictorComparisonRow] = field(default_factory=list)
    unicast_blocks: float = 0.0
    multicast_actual_blocks: float = 0.0

    @property
    def multicast_saving(self) -> float:
        if self.unicast_blocks <= 0:
            return 0.0
        return 1.0 - self.multicast_actual_blocks / self.unicast_blocks


def run_predictor_comparison(
    seed: int = 55,
    num_eval_intervals: int = 8,
    baselines: Optional[List[SeriesPredictor]] = None,
) -> PredictorComparisonResult:
    """Compare the DT-assisted scheme with history-only and per-user baselines."""
    baselines = (
        baselines
        if baselines is not None
        else [
            LastValuePredictor(),
            MovingAveragePredictor(window=3),
            EwmaPredictor(alpha=0.5),
            LinearTrendPredictor(window=4),
            ARPredictor(order=2),
        ]
    )
    sim_config = _default_sim_config(seed, num_eval_intervals + 2)
    scheme = DTResourcePredictionScheme(
        StreamingSimulator(sim_config), _default_scheme_config(mc_rollouts=10)
    )
    result = scheme.run(num_intervals=num_eval_intervals)
    actual = result.actual_radio_series()

    comparison = PredictorComparisonResult()
    comparison.rows.append(
        PredictorComparisonRow("dt-assisted", float(result.mean_radio_accuracy()))
    )
    warmup = min(2, len(actual) - 1)
    for predictor in baselines:
        predictions = predictor.predict_series(actual, warmup=warmup)
        comparison.rows.append(
            PredictorComparisonRow(
                predictor.name,
                float(mean_prediction_accuracy(predictions, actual[warmup:])),
            )
        )

    simulator = scheme.simulator
    per_user = PerUserDemandPredictor(
        simulator.catalog,
        interval_s=simulator.config.interval_s,
        rb_bandwidth_hz=simulator.config.rb_bandwidth_hz,
        stream_bandwidth_hz=simulator.config.stream_bandwidth_hz,
        implementation_loss=simulator.config.implementation_loss,
        swipe_gap_s=simulator.config.swipe_gap_s,
    )
    window_end = simulator.clock.current_interval * simulator.config.interval_s
    window_start = window_end - simulator.config.interval_s
    comparison.unicast_blocks = per_user.total_resource_blocks(
        per_user.predict_all(simulator.twins, window_start, window_end)
    )
    comparison.multicast_actual_blocks = float(actual.mean())
    return comparison
