"""Command-line interface.

Exposes the reproduction's experiments as subcommands so downstream users
can rerun them (and sweep their parameters) without writing Python::

    python -m repro scenarios                    # list the scenario registry
    python -m repro apps                         # list the controller apps
    python -m repro run multicell_campus         # run a named scenario
    python -m repro run campus_fig3 --intervals 3 --override population.num_users=40
    python -m repro run cell_outage_storm --override controller.apps=a3_handover,cell_scoping,greedy_rebalance
    python -m repro fig3 --users 30 --intervals 8
    python -m repro grouping-ablation
    python -m repro staleness-ablation
    python -m repro predictors
    python -m repro dataset --output challenge.json --users 40 --videos 150

``run`` and ``scenarios`` sit on the declarative scenario API
(:mod:`repro.scenario`): a registered :class:`~repro.scenario.spec.ScenarioSpec`
is compiled and executed, ``--override section.field=value`` rewrites any
spec leaf, and ``--json`` emits the scenario's JSON-canonical ``RunResult``.
Every subcommand prints a plain-text table and returns exit code 0 on
success.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, Optional, Sequence

from repro.analysis import (
    format_table,
    run_fig3_experiment,
    run_grouping_ablation,
    run_predictor_comparison,
    run_staleness_ablation,
)
from repro.dataset import ChallengeDatasetConfig, ChallengeDatasetGenerator, save_dataset
from repro.scenario import ScenarioRunner, get_scenario, scenario_names


def _add_fig3_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "fig3", help="reproduce the paper's Fig. 3 (swiping probability + radio demand)"
    )
    parser.add_argument("--seed", type=int, default=2023)
    parser.add_argument("--users", type=int, default=24, help="number of simulated users")
    parser.add_argument("--intervals", type=int, default=6, help="evaluated reservation intervals")
    parser.add_argument(
        "--interval-seconds", type=float, default=150.0, help="reservation interval length"
    )
    parser.add_argument(
        "--channel-draw-mode",
        choices=("compat", "fast", "grouped"),
        default=None,
        help=(
            "how channel randomness is drawn: 'compat' reproduces the scalar-era "
            "generator streams for a given seed, 'fast' is ~1.5x quicker but walks "
            "the generator differently (same statistics, different per-seed totals), "
            "'grouped' derives per-(interval, group) streams so results are "
            "order-independent and identical for any --playback-workers count. "
            "Default: 'grouped' when --playback-workers > 1, else 'compat'"
        ),
    )
    parser.add_argument(
        "--playback-workers",
        type=int,
        default=1,
        help=(
            "processes interval playback is sharded over (requires "
            "--channel-draw-mode grouped when > 1; results are identical to a "
            "single-worker run for the same seed)"
        ),
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write the unified Fig3Result.to_dict() JSON to PATH ('-' for stdout)",
    )


def _add_run_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "run",
        help="compile and run a registered scenario (see 'repro scenarios')",
        description=(
            "Compile a registered ScenarioSpec and drive it through the "
            "scenario runner.  Overrides rewrite any spec leaf by dotted "
            "path, e.g. --override population.num_users=100 "
            "--override engine.playback_workers=4"
        ),
    )
    parser.add_argument("scenario", help="registered scenario name")
    parser.add_argument(
        "--override",
        action="append",
        default=[],
        metavar="PATH=VALUE",
        help="spec override (repeatable); VALUE is parsed as JSON, else a string",
    )
    parser.add_argument(
        "--intervals",
        type=int,
        default=None,
        help="shorthand for --override num_intervals=N",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="shorthand for --override seed=N"
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write the RunResult JSON to PATH ('-' writes it to stdout, tables suppressed)",
    )


def _add_scenarios_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "scenarios", help="list the registered scenarios and their shapes"
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the registry as JSON on stdout"
    )


def _add_apps_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "apps",
        help="list the registered controller apps and their parameters",
        description=(
            "Controller apps are pluggable policies driven by the RAN "
            "controller's event bus; select a stack per run with "
            "--override controller.apps=name1,name2,... (see repro run)."
        ),
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the app registry as JSON on stdout"
    )


def _add_lint_parser(subparsers) -> None:
    # The heavy lifting (and the full flag set) lives in repro.lint.cli so
    # the analyzer stays usable as a library; this module only mounts it.
    from repro.lint.cli import add_lint_parser

    add_lint_parser(subparsers)


def _run_lint(args: argparse.Namespace) -> int:
    from repro.lint.cli import run_lint_command

    return run_lint_command(args)


def _add_simple_parser(subparsers, name: str, help_text: str) -> None:
    parser = subparsers.add_parser(name, help=help_text)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--intervals", type=int, default=4)


def _add_dataset_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "dataset", help="generate a synthetic short-video-streaming-challenge dataset"
    )
    parser.add_argument("--output", required=True, help="output JSON path")
    parser.add_argument("--users", type=int, default=40)
    parser.add_argument("--videos", type=int, default=150)
    parser.add_argument("--intervals", type=int, default=6)
    parser.add_argument("--seed", type=int, default=0)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Digital twin-assisted resource demand prediction for multicast short "
            "video streaming (ICDCS 2023) — experiment runner"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_run_parser(subparsers)
    _add_scenarios_parser(subparsers)
    _add_apps_parser(subparsers)
    _add_lint_parser(subparsers)
    _add_fig3_parser(subparsers)
    _add_simple_parser(subparsers, "grouping-ablation", "DDQN-K vs silhouette vs fixed-K grouping")
    _add_simple_parser(subparsers, "staleness-ablation", "accuracy vs digital-twin staleness")
    _add_simple_parser(subparsers, "predictors", "DT scheme vs history-only / per-user baselines")
    _add_dataset_parser(subparsers)
    return parser


# --------------------------------------------------------------- scenario API
def parse_overrides(pairs: Sequence[str]) -> Dict[str, Any]:
    """``PATH=VALUE`` strings → override mapping (values parsed as JSON)."""
    overrides: Dict[str, Any] = {}
    for pair in pairs:
        if "=" not in pair:
            raise ValueError(f"override {pair!r} is not of the form PATH=VALUE")
        path, raw = pair.split("=", 1)
        try:
            value = json.loads(raw)
        except json.JSONDecodeError:
            value = raw
        overrides[path.strip()] = value
    return overrides


def _emit_json(payload: dict, destination: Optional[str]) -> None:
    if destination is None:
        return
    text = json.dumps(payload, indent=2, sort_keys=True)
    if destination == "-":
        print(text)
    else:
        with open(destination, "w") as handle:
            handle.write(text + "\n")


def _run_scenario_command(args: argparse.Namespace) -> int:
    try:
        overrides = parse_overrides(args.override)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.intervals is not None:
        overrides["num_intervals"] = args.intervals
    if args.seed is not None:
        overrides["seed"] = args.seed
    try:
        spec = get_scenario(args.scenario, overrides)
    except (KeyError, ValueError, TypeError) as error:
        # Unknown scenario names, unknown override paths and bad override
        # values are routine user errors: one line, not a traceback.  The
        # run itself stays outside this handler, so genuine runtime defects
        # still surface with a full stack trace.
        message = error.args[0] if error.args else error
        print(f"error: {message}", file=sys.stderr)
        return 2
    result = ScenarioRunner(spec).run()
    _emit_json(result.to_dict(), args.json)
    if args.json == "-":
        return 0

    print(f"scenario {result.scenario} ({result.mode} mode, seed {result.seed}): "
          f"{result.num_intervals} intervals in {result.elapsed_s:.2f}s")
    if result.mode == "scheme":
        headers = ["interval", "users", "groups", "predicted RBs", "actual RBs", "accuracy"]
        rows = [
            [
                record["interval_index"],
                record["num_users"],
                record["num_groups"],
                round(record["predicted_radio_blocks"], 2),
                round(record["actual_radio_blocks"], 2),
                round(record["radio_accuracy"], 4),
            ]
            for record in result.intervals
        ]
    else:
        headers = ["interval", "users", "groups", "actual RBs", "handovers", "events"]
        rows = [
            [
                record["interval_index"],
                record["num_users"],
                record["num_groups"],
                round(record["actual_radio_blocks"], 2),
                record.get("num_handovers", 0),
                "; ".join(record["events_applied"]) or "-",
            ]
            for record in result.intervals
        ]
    print(format_table(headers, rows))
    if result.summary:
        print()
        for key in sorted(result.summary):
            value = result.summary[key]
            if isinstance(value, float):
                print(f"{key:<28s}: {value:.4f}")
            elif not isinstance(value, dict):
                print(f"{key:<28s}: {value}")
    return 0


def _scenarios_command(args: argparse.Namespace) -> int:
    entries = []
    for name in scenario_names():
        spec = get_scenario(name)
        entries.append(
            {
                "name": name,
                "mode": spec.mode,
                "num_users": spec.population.num_users,
                "num_cells": spec.topology.num_cells,
                "num_intervals": spec.num_intervals,
                "controller": spec.controller.mode,
                "timeline_events": len(spec.timeline),
                "description": spec.description,
            }
        )
    if args.json:
        print(json.dumps({"scenarios": entries}, indent=2, sort_keys=True))
        return 0
    print(
        format_table(
            ["name", "mode", "users", "cells", "intervals", "events", "description"],
            [
                [
                    entry["name"],
                    entry["mode"],
                    entry["num_users"],
                    entry["num_cells"],
                    entry["num_intervals"],
                    entry["timeline_events"],
                    entry["description"],
                ]
                for entry in entries
            ],
        )
    )
    return 0


def _apps_command(args: argparse.Namespace) -> int:
    from repro.net.apps import DEFAULT_APP_STACK, app_names, get_app_class

    entries = []
    for name in app_names():
        cls = get_app_class(name)
        doc = (cls.__doc__ or "").strip().splitlines()
        entries.append(
            {
                "name": name,
                "default": name in DEFAULT_APP_STACK,
                "params": {
                    key: value for key, value in sorted(cls.default_params.items())
                },
                "description": doc[0] if doc else "",
            }
        )
    if args.json:
        print(json.dumps({"apps": entries, "default_stack": list(DEFAULT_APP_STACK)},
                         indent=2, sort_keys=True))
        return 0
    print(
        format_table(
            ["name", "default", "params", "description"],
            [
                [
                    entry["name"],
                    "yes" if entry["default"] else "-",
                    ", ".join(
                        f"{key}={'inherit' if value is None else value}"
                        for key, value in entry["params"].items()
                    )
                    or "-",
                    entry["description"],
                ]
                for entry in entries
            ],
        )
    )
    print()
    print(f"default stack: {', '.join(DEFAULT_APP_STACK)}")
    return 0


# ------------------------------------------------------------------ subcommands
def _run_fig3(args: argparse.Namespace) -> int:
    result = run_fig3_experiment(
        seed=args.seed,
        num_users=args.users,
        num_eval_intervals=args.intervals,
        interval_s=args.interval_seconds,
        channel_draw_mode=args.channel_draw_mode,
        playback_workers=args.playback_workers,
    )
    _emit_json(result.to_dict(), args.json)
    if args.json == "-":
        return 0
    profile = result.news_group_profile
    print(f"Fig. 3(a) — cumulative swiping probability (group {profile.group_id}, "
          f"{len(profile.member_ids)} members)")
    print(
        format_table(
            ["category", "cumulative", "engagement share", "swipe prob"],
            [
                [category, value, profile.engagement_share[category], profile.swipe_probability[category]]
                for category, value in result.cumulative_swiping().items()
            ],
        )
    )
    print()
    print("Fig. 3(b) — predicted vs actual radio resource demand")
    print(
        format_table(
            ["interval", "groups", "predicted RBs", "actual RBs", "accuracy"],
            result.demand_rows(),
        )
    )
    print()
    print(f"mean radio accuracy     : {result.mean_radio_accuracy:.2%}")
    print(f"max  radio accuracy     : {result.max_radio_accuracy:.2%}")
    print(f"mean computing accuracy : {result.mean_computing_accuracy:.2%}")
    return 0


def _run_grouping(args: argparse.Namespace) -> int:
    rows = run_grouping_ablation(
        seed=args.seed if args.seed is not None else 77,
        num_eval_intervals=args.intervals,
    )
    print("Grouping-strategy ablation")
    print(
        format_table(
            ["strategy", "mean K", "silhouette", "actual RBs", "accuracy"],
            [
                [row.strategy, row.mean_groups, row.mean_silhouette, row.mean_actual_blocks, row.mean_accuracy]
                for row in rows
            ],
        )
    )
    return 0


def _run_staleness(args: argparse.Namespace) -> int:
    seeds = [args.seed] if args.seed is not None else None
    rows = run_staleness_ablation(seeds=seeds, num_eval_intervals=args.intervals)
    print("Digital-twin staleness ablation")
    print(
        format_table(
            ["collection policy", "period multiplier", "drop probability", "accuracy"],
            [
                [row.label, row.period_multiplier, row.drop_probability, row.mean_accuracy]
                for row in rows
            ],
        )
    )
    return 0


def _run_predictors(args: argparse.Namespace) -> int:
    result = run_predictor_comparison(
        seed=args.seed if args.seed is not None else 55,
        num_eval_intervals=max(args.intervals, 4),
    )
    print("Predictor comparison (mean radio-demand prediction accuracy)")
    print(
        format_table(
            ["predictor", "accuracy"],
            [[row.name, row.mean_accuracy] for row in result.rows],
        )
    )
    print()
    print(f"per-user (unicast) reservation : {result.unicast_blocks:.2f} resource blocks")
    print(f"multicast actual usage         : {result.multicast_actual_blocks:.2f} resource blocks")
    print(f"multicast saving               : {result.multicast_saving:.2%}")
    return 0


def _run_dataset(args: argparse.Namespace) -> int:
    config = ChallengeDatasetConfig(
        num_videos=args.videos,
        num_users=args.users,
        num_intervals=args.intervals,
        seed=args.seed,
    )
    bundle = ChallengeDatasetGenerator(config).generate()
    path = save_dataset(bundle, args.output)
    print(
        f"wrote {bundle.num_videos} videos, {bundle.num_users} users, "
        f"{bundle.num_traces} swipe traces to {path}"
    )
    return 0


_COMMANDS = {
    "run": _run_scenario_command,
    "scenarios": _scenarios_command,
    "apps": _apps_command,
    "lint": _run_lint,
    "fig3": _run_fig3,
    "grouping-ablation": _run_grouping,
    "staleness-ablation": _run_staleness,
    "predictors": _run_predictors,
    "dataset": _run_dataset,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point used by ``python -m repro`` and the ``repro`` console script."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    handler = _COMMANDS[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
