"""Command-line interface.

Exposes the reproduction's experiments as subcommands so downstream users
can rerun them (and sweep their parameters) without writing Python::

    python -m repro fig3 --users 30 --intervals 8
    python -m repro grouping-ablation
    python -m repro staleness-ablation
    python -m repro predictors
    python -m repro dataset --output challenge.json --users 40 --videos 150

Every subcommand prints a plain-text table and returns exit code 0 on
success.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.analysis import (
    format_table,
    run_fig3_experiment,
    run_grouping_ablation,
    run_predictor_comparison,
    run_staleness_ablation,
)
from repro.dataset import ChallengeDatasetConfig, ChallengeDatasetGenerator, save_dataset


def _add_fig3_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "fig3", help="reproduce the paper's Fig. 3 (swiping probability + radio demand)"
    )
    parser.add_argument("--seed", type=int, default=2023)
    parser.add_argument("--users", type=int, default=24, help="number of simulated users")
    parser.add_argument("--intervals", type=int, default=6, help="evaluated reservation intervals")
    parser.add_argument(
        "--interval-seconds", type=float, default=150.0, help="reservation interval length"
    )
    parser.add_argument(
        "--channel-draw-mode",
        choices=("compat", "fast", "grouped"),
        default=None,
        help=(
            "how channel randomness is drawn: 'compat' reproduces the scalar-era "
            "generator streams for a given seed, 'fast' is ~1.5x quicker but walks "
            "the generator differently (same statistics, different per-seed totals), "
            "'grouped' derives per-(interval, group) streams so results are "
            "order-independent and identical for any --playback-workers count. "
            "Default: 'grouped' when --playback-workers > 1, else 'compat'"
        ),
    )
    parser.add_argument(
        "--playback-workers",
        type=int,
        default=1,
        help=(
            "processes interval playback is sharded over (requires "
            "--channel-draw-mode grouped when > 1; results are identical to a "
            "single-worker run for the same seed)"
        ),
    )


def _add_simple_parser(subparsers, name: str, help_text: str) -> None:
    parser = subparsers.add_parser(name, help=help_text)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--intervals", type=int, default=4)


def _add_dataset_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "dataset", help="generate a synthetic short-video-streaming-challenge dataset"
    )
    parser.add_argument("--output", required=True, help="output JSON path")
    parser.add_argument("--users", type=int, default=40)
    parser.add_argument("--videos", type=int, default=150)
    parser.add_argument("--intervals", type=int, default=6)
    parser.add_argument("--seed", type=int, default=0)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Digital twin-assisted resource demand prediction for multicast short "
            "video streaming (ICDCS 2023) — experiment runner"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_fig3_parser(subparsers)
    _add_simple_parser(subparsers, "grouping-ablation", "DDQN-K vs silhouette vs fixed-K grouping")
    _add_simple_parser(subparsers, "staleness-ablation", "accuracy vs digital-twin staleness")
    _add_simple_parser(subparsers, "predictors", "DT scheme vs history-only / per-user baselines")
    _add_dataset_parser(subparsers)
    return parser


# ------------------------------------------------------------------ subcommands
def _run_fig3(args: argparse.Namespace) -> int:
    result = run_fig3_experiment(
        seed=args.seed,
        num_users=args.users,
        num_eval_intervals=args.intervals,
        interval_s=args.interval_seconds,
        channel_draw_mode=args.channel_draw_mode,
        playback_workers=args.playback_workers,
    )
    profile = result.news_group_profile
    print(f"Fig. 3(a) — cumulative swiping probability (group {profile.group_id}, "
          f"{len(profile.member_ids)} members)")
    print(
        format_table(
            ["category", "cumulative", "engagement share", "swipe prob"],
            [
                [category, value, profile.engagement_share[category], profile.swipe_probability[category]]
                for category, value in result.cumulative_swiping().items()
            ],
        )
    )
    print()
    print("Fig. 3(b) — predicted vs actual radio resource demand")
    print(
        format_table(
            ["interval", "groups", "predicted RBs", "actual RBs", "accuracy"],
            result.demand_rows(),
        )
    )
    print()
    print(f"mean radio accuracy     : {result.mean_radio_accuracy:.2%}")
    print(f"max  radio accuracy     : {result.max_radio_accuracy:.2%}")
    print(f"mean computing accuracy : {result.mean_computing_accuracy:.2%}")
    return 0


def _run_grouping(args: argparse.Namespace) -> int:
    rows = run_grouping_ablation(
        seed=args.seed if args.seed is not None else 77,
        num_eval_intervals=args.intervals,
    )
    print("Grouping-strategy ablation")
    print(
        format_table(
            ["strategy", "mean K", "silhouette", "actual RBs", "accuracy"],
            [
                [row.strategy, row.mean_groups, row.mean_silhouette, row.mean_actual_blocks, row.mean_accuracy]
                for row in rows
            ],
        )
    )
    return 0


def _run_staleness(args: argparse.Namespace) -> int:
    seeds = [args.seed] if args.seed is not None else None
    rows = run_staleness_ablation(seeds=seeds, num_eval_intervals=args.intervals)
    print("Digital-twin staleness ablation")
    print(
        format_table(
            ["collection policy", "period multiplier", "drop probability", "accuracy"],
            [
                [row.label, row.period_multiplier, row.drop_probability, row.mean_accuracy]
                for row in rows
            ],
        )
    )
    return 0


def _run_predictors(args: argparse.Namespace) -> int:
    result = run_predictor_comparison(
        seed=args.seed if args.seed is not None else 55,
        num_eval_intervals=max(args.intervals, 4),
    )
    print("Predictor comparison (mean radio-demand prediction accuracy)")
    print(
        format_table(
            ["predictor", "accuracy"],
            [[row.name, row.mean_accuracy] for row in result.rows],
        )
    )
    print()
    print(f"per-user (unicast) reservation : {result.unicast_blocks:.2f} resource blocks")
    print(f"multicast actual usage         : {result.multicast_actual_blocks:.2f} resource blocks")
    print(f"multicast saving               : {result.multicast_saving:.2%}")
    return 0


def _run_dataset(args: argparse.Namespace) -> int:
    config = ChallengeDatasetConfig(
        num_videos=args.videos,
        num_users=args.users,
        num_intervals=args.intervals,
        seed=args.seed,
    )
    bundle = ChallengeDatasetGenerator(config).generate()
    path = save_dataset(bundle, args.output)
    print(
        f"wrote {bundle.num_videos} videos, {bundle.num_users} users, "
        f"{bundle.num_traces} swipe traces to {path}"
    )
    return 0


_COMMANDS = {
    "fig3": _run_fig3,
    "grouping-ablation": _run_grouping,
    "staleness-ablation": _run_staleness,
    "predictors": _run_predictors,
    "dataset": _run_dataset,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point used by ``python -m repro`` and the ``repro`` console script."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    handler = _COMMANDS[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
