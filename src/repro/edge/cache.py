"""Edge video cache.

The cache stores videos at their highest representation (the only copy that
can be transcoded downwards).  Eviction is least-recently-used with an
optional popularity tiebreak, and capacity is expressed in bytes so cache
sizing can be reasoned about in storage terms.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, List

from repro.video.catalog import Video


@dataclass
class CacheEntry:
    """One cached video (always at the highest representation)."""

    video_id: int
    size_bytes: float
    last_access_time_s: float = 0.0

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError("size_bytes must be non-negative")


@dataclass
class CacheStats:
    """Hit/miss counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        if self.requests == 0:
            return 0.0
        return self.hits / self.requests


def video_size_bytes(video: Video) -> float:
    """Storage size of a video at its highest representation."""
    return float(video.sizes_for(video.ladder.highest).sum() / 8.0)


class VideoCache:
    """LRU cache of highest-representation videos with a byte capacity."""

    def __init__(self, capacity_bytes: float) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        self.capacity_bytes = float(capacity_bytes)
        self._entries: "OrderedDict[int, CacheEntry]" = OrderedDict()
        self.stats = CacheStats()

    # ------------------------------------------------------------ accessors
    def __contains__(self, video_id: int) -> bool:
        return video_id in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def used_bytes(self) -> float:
        return float(sum(entry.size_bytes for entry in self._entries.values()))

    @property
    def free_bytes(self) -> float:
        return self.capacity_bytes - self.used_bytes

    def cached_video_ids(self) -> List[int]:
        return list(self._entries.keys())

    # ------------------------------------------------------------ operations
    def access(self, video_id: int, time_s: float = 0.0) -> bool:
        """Record an access; returns True on hit, False on miss."""
        entry = self._entries.get(video_id)
        if entry is None:
            self.stats.misses += 1
            return False
        entry.last_access_time_s = time_s
        self._entries.move_to_end(video_id)
        self.stats.hits += 1
        return True

    def insert(self, video: Video, time_s: float = 0.0) -> bool:
        """Insert a video, evicting LRU entries as needed.

        Returns False when the video is larger than the whole cache and
        cannot be stored at all.
        """
        size = video_size_bytes(video)
        if size > self.capacity_bytes:
            return False
        if video.video_id in self._entries:
            self._entries[video.video_id].last_access_time_s = time_s
            self._entries.move_to_end(video.video_id)
            return True
        while self.used_bytes + size > self.capacity_bytes:
            self._evict_one()
        self._entries[video.video_id] = CacheEntry(
            video_id=video.video_id, size_bytes=size, last_access_time_s=time_s
        )
        return True

    def _evict_one(self) -> None:
        if not self._entries:
            raise RuntimeError("cache invariant violated: nothing to evict")
        self._entries.popitem(last=False)
        self.stats.evictions += 1

    def warm_with_popular(self, videos: Iterable[Video], time_s: float = 0.0) -> int:
        """Insert videos (given in popularity order) until the cache is full.

        Returns the number of videos actually cached.
        """
        cached = 0
        for video in videos:
            size = video_size_bytes(video)
            if size > self.free_bytes:
                continue
            if self.insert(video, time_s=time_s):
                cached += 1
        return cached
