"""Edge server: cache + transcoder + per-interval compute accounting.

The edge server receives, per reservation interval and per multicast group,
the list of videos that must be prepared at a given target representation
for a given (expected or actual) watched duration.  It answers with the CPU
cycles consumed, tracks cache hits/misses (a miss means the highest
representation must first be fetched from the remote CDN), and keeps a
history so computing demand can be compared against predictions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.edge.cache import VideoCache
from repro.edge.transcoding import TranscodingCostModel
from repro.video.catalog import Video, VideoCatalog
from repro.video.representations import Representation


@dataclass
class EdgeServerConfig:
    """Static parameters of the edge server."""

    cache_capacity_gbytes: float = 8.0
    cpu_capacity_cycles_per_s: float = 3.0e9 * 16  # 16 cores at 3 GHz
    cycles_per_pixel: float = 12.0
    remote_fetch_penalty_s: float = 0.2

    def __post_init__(self) -> None:
        if self.cache_capacity_gbytes <= 0:
            raise ValueError("cache_capacity_gbytes must be positive")
        if self.cpu_capacity_cycles_per_s <= 0:
            raise ValueError("cpu_capacity_cycles_per_s must be positive")
        if self.remote_fetch_penalty_s < 0:
            raise ValueError("remote_fetch_penalty_s must be non-negative")


@dataclass
class IntervalComputeUsage:
    """Computing usage of one reservation interval."""

    interval_index: int
    cycles_by_group: Dict[int, float] = field(default_factory=dict)
    cache_misses: int = 0

    @property
    def total_cycles(self) -> float:
        return float(sum(self.cycles_by_group.values()))

    def utilization(self, cpu_capacity_cycles_per_s: float, interval_s: float) -> float:
        """Fraction of the CPU budget the interval consumed."""
        if cpu_capacity_cycles_per_s <= 0 or interval_s <= 0:
            raise ValueError("capacity and interval must be positive")
        return self.total_cycles / (cpu_capacity_cycles_per_s * interval_s)


#: A transcoding request: (video, target representation, duration to prepare).
TranscodeRequest = Tuple[Video, Representation, float]


class EdgeServer:
    """Edge server performing cache lookups and transcoding for multicast groups."""

    def __init__(
        self,
        catalog: VideoCatalog,
        config: Optional[EdgeServerConfig] = None,
    ) -> None:
        self.catalog = catalog
        self.config = config if config is not None else EdgeServerConfig()
        self.cache = VideoCache(self.config.cache_capacity_gbytes * 1e9)
        self.transcoder = TranscodingCostModel(cycles_per_pixel=self.config.cycles_per_pixel)
        self.history: List[IntervalComputeUsage] = []

    # ------------------------------------------------------------- warm-up
    def warm_cache(self, top_videos: Optional[int] = None) -> int:
        """Pre-populate the cache with the most popular videos."""
        count = top_videos if top_videos is not None else len(self.catalog)
        popular = self.catalog.most_popular(min(count, len(self.catalog)))
        return self.cache.warm_with_popular(popular)

    # ------------------------------------------------------------ transcoding
    def process_interval(
        self,
        interval_index: int,
        group_requests: Mapping[int, Sequence[TranscodeRequest]],
        time_s: float = 0.0,
    ) -> IntervalComputeUsage:
        """Execute one interval's transcoding work and record its cost.

        ``group_requests`` maps group id to the list of (video, target
        representation, duration) tuples that must be prepared for that
        group.  Cache misses are counted; the miss penalty does not add
        cycles (fetching is I/O), but missed videos are inserted so later
        intervals hit.
        """
        usage = IntervalComputeUsage(interval_index=interval_index)
        for group_id, requests in group_requests.items():
            cycles = 0.0
            for video, target, duration_s in requests:
                if not self.cache.access(video.video_id, time_s=time_s):
                    usage.cache_misses += 1
                    self.cache.insert(video, time_s=time_s)
                cycles += self.transcoder.video_cycles(video, target, duration_s)
            usage.cycles_by_group[group_id] = cycles
        self.history.append(usage)
        return usage

    # ------------------------------------------------------------ reporting
    def total_cycles_history(self) -> np.ndarray:
        """Total cycles per recorded interval."""
        return np.array([usage.total_cycles for usage in self.history])

    def mean_utilization(self, interval_s: float) -> float:
        if not self.history:
            return 0.0
        utilizations = [
            usage.utilization(self.config.cpu_capacity_cycles_per_s, interval_s)
            for usage in self.history
        ]
        return float(np.mean(utilizations))
