"""Transcoding cost model.

Computing demand in the paper is the CPU load of transcoding the cached
highest-representation videos down to the representation each multicast
group can actually receive.  The cost model charges cycles proportionally to
the pixel rate of the *target* representation times the transcoded duration,
scaled by a codec complexity factor — the standard first-order model for
software transcoding load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.video.catalog import Video
from repro.video.representations import Representation


@dataclass(frozen=True)
class TranscodingJob:
    """Transcode ``duration_s`` seconds of one video to a target representation."""

    video_id: int
    source: Representation
    target: Representation
    duration_s: float

    def __post_init__(self) -> None:
        if self.duration_s < 0:
            raise ValueError("duration_s must be non-negative")
        if self.target.bitrate_kbps > self.source.bitrate_kbps:
            raise ValueError("can only transcode downwards (target above source representation)")


class TranscodingCostModel:
    """Cycles-per-pixel transcoding cost.

    ``cycles = cycles_per_pixel * target_pixel_rate * duration * codec_factor``
    with a small fixed per-job overhead.  Transcoding to the source
    representation itself costs only the overhead (pass-through).
    """

    def __init__(
        self,
        cycles_per_pixel: float = 12.0,
        codec_factor: float = 1.0,
        per_job_overhead_cycles: float = 5e7,
    ) -> None:
        if cycles_per_pixel <= 0:
            raise ValueError("cycles_per_pixel must be positive")
        if codec_factor <= 0:
            raise ValueError("codec_factor must be positive")
        if per_job_overhead_cycles < 0:
            raise ValueError("per_job_overhead_cycles must be non-negative")
        self.cycles_per_pixel = cycles_per_pixel
        self.codec_factor = codec_factor
        self.per_job_overhead_cycles = per_job_overhead_cycles

    def _transcode_cycles(self, source: Representation, target: Representation, duration_s: float) -> float:
        """The cost formula shared by :meth:`job_cycles` and :meth:`video_cycles`."""
        if duration_s == 0:
            return 0.0
        if target.name == source.name:
            return self.per_job_overhead_cycles
        work = self.cycles_per_pixel * target.pixel_rate * duration_s * self.codec_factor
        return float(work + self.per_job_overhead_cycles)

    def job_cycles(self, job: TranscodingJob) -> float:
        """CPU cycles needed for one transcoding job."""
        return self._transcode_cycles(job.source, job.target, job.duration_s)

    def video_cycles(
        self,
        video: Video,
        target: Representation,
        watched_duration_s: Optional[float] = None,
    ) -> float:
        """Cycles to transcode (the watched prefix of) ``video`` to ``target``.

        Skips constructing a :class:`TranscodingJob` per call (this sits on
        the hot path of both the simulator's edge accounting and the demand
        rollouts) but applies the same downward-transcode validation.
        """
        duration = video.duration_s if watched_duration_s is None else watched_duration_s
        duration = min(max(duration, 0.0), video.duration_s)
        source = video.ladder.highest
        if target.bitrate_kbps > source.bitrate_kbps:
            raise ValueError("can only transcode downwards (target above source representation)")
        return self._transcode_cycles(source, target, duration)

    def total_cycles(self, jobs: Iterable[TranscodingJob]) -> float:
        return float(sum(self.job_cycles(job) for job in jobs))
