"""Edge-server substrate: video cache, transcoding cost model, compute accounting.

The edge server in the paper "stores popular short videos with the highest
representation" and transcodes them to lower representations to adapt to
network dynamics; its computing (CPU-cycle) consumption is the second
resource the scheme predicts.

* :mod:`repro.edge.cache` -- popularity-aware / LRU video cache.
* :mod:`repro.edge.transcoding` -- cycles-per-segment transcoding cost model.
* :mod:`repro.edge.server` -- the edge server tying cache and transcoder
  together and accounting per-interval computing usage.
"""

from repro.edge.cache import CacheEntry, CacheStats, VideoCache
from repro.edge.transcoding import TranscodingCostModel, TranscodingJob
from repro.edge.server import EdgeServer, EdgeServerConfig, IntervalComputeUsage

__all__ = [
    "CacheEntry",
    "CacheStats",
    "EdgeServer",
    "EdgeServerConfig",
    "IntervalComputeUsage",
    "TranscodingCostModel",
    "TranscodingJob",
    "VideoCache",
]
