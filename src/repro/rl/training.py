"""Training loop utilities for the DDQN grouping-number selector."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.rl.ddqn import DDQNAgent
from repro.rl.env import Environment


@dataclass
class TrainingResult:
    """Per-episode returns and diagnostics collected by :func:`train_agent`."""

    episode_returns: List[float] = field(default_factory=list)
    episode_lengths: List[int] = field(default_factory=list)
    chosen_actions: List[int] = field(default_factory=list)

    @property
    def num_episodes(self) -> int:
        return len(self.episode_returns)

    def mean_return(self, last: Optional[int] = None) -> float:
        """Mean episodic return, optionally over only the ``last`` episodes."""
        if not self.episode_returns:
            return float("nan")
        returns = self.episode_returns if last is None else self.episode_returns[-last:]
        return float(np.mean(returns))

    def improved(self, window: int = 10) -> bool:
        """Whether the recent mean return beats the early mean return."""
        if len(self.episode_returns) < 2 * window:
            return False
        early = float(np.mean(self.episode_returns[:window]))
        late = float(np.mean(self.episode_returns[-window:]))
        return late >= early


def train_agent(
    agent: DDQNAgent,
    env: Environment,
    episodes: int = 50,
    max_steps_per_episode: int = 100,
    rng: Optional[np.random.Generator] = None,
    callback: Optional[Callable[[int, float], None]] = None,
) -> TrainingResult:
    """Train ``agent`` on ``env`` for a fixed number of episodes.

    Parameters
    ----------
    agent:
        The DDQN agent to train in-place.
    env:
        Any :class:`~repro.rl.env.Environment`; its ``state_dim`` and
        ``num_actions`` must match the agent's configuration.
    episodes:
        Number of episodes to run.
    max_steps_per_episode:
        Hard cap on episode length (protects against environments that
        never emit ``done``).
    callback:
        Optional ``callback(episode_index, episode_return)`` hook.
    """
    if episodes <= 0 or max_steps_per_episode <= 0:
        raise ValueError("episodes and max_steps_per_episode must be positive")
    if env.state_dim != agent.config.state_dim:
        raise ValueError(
            f"environment state_dim {env.state_dim} != agent state_dim {agent.config.state_dim}"
        )
    if env.num_actions != agent.config.num_actions:
        raise ValueError(
            f"environment num_actions {env.num_actions} != agent num_actions "
            f"{agent.config.num_actions}"
        )
    if rng is None:
        raise ValueError(
            "train_agent requires an explicit rng; derive one from the "
            "repro.sim.rng registry (e.g. legacy_stream(agent.config.seed) "
            "for the historical default)"
        )
    result = TrainingResult()
    for episode in range(episodes):
        state = env.reset(rng)
        episode_return = 0.0
        steps = 0
        for _ in range(max_steps_per_episode):
            action = agent.select_action(state)
            outcome = env.step(action)
            agent.observe(state, action, outcome.reward, outcome.state, outcome.done)
            result.chosen_actions.append(action)
            episode_return += outcome.reward
            state = outcome.state
            steps += 1
            if outcome.done:
                break
        result.episode_returns.append(episode_return)
        result.episode_lengths.append(steps)
        if callback is not None:
            callback(episode, episode_return)
    return result


def evaluate_agent(
    agent: DDQNAgent,
    env: Environment,
    episodes: int = 10,
    rng: Optional[np.random.Generator] = None,
    max_steps_per_episode: int = 100,
) -> TrainingResult:
    """Run the agent greedily (no exploration, no learning) and record returns."""
    if episodes <= 0:
        raise ValueError("episodes must be positive")
    if rng is None:
        raise ValueError(
            "evaluate_agent requires an explicit rng; derive one from the "
            "repro.sim.rng registry (e.g. "
            "legacy_stream(agent.config.seed + 1) for the historical default)"
        )
    result = TrainingResult()
    for _ in range(episodes):
        state = env.reset(rng)
        episode_return = 0.0
        steps = 0
        for _ in range(max_steps_per_episode):
            action = agent.select_action(state, greedy=True)
            outcome = env.step(action)
            result.chosen_actions.append(action)
            episode_return += outcome.reward
            state = outcome.state
            steps += 1
            if outcome.done:
                break
        result.episode_returns.append(episode_return)
        result.episode_lengths.append(steps)
    return result
