"""Exploration schedules for epsilon-greedy action selection."""

from __future__ import annotations


class EpsilonSchedule:
    """Base class: map a step counter to an exploration probability."""

    def value(self, step: int) -> float:
        raise NotImplementedError


class ConstantEpsilon(EpsilonSchedule):
    """A fixed exploration probability (useful for evaluation or tests)."""

    def __init__(self, epsilon: float) -> None:
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError("epsilon must be in [0, 1]")
        self.epsilon = float(epsilon)

    def value(self, step: int) -> float:
        del step
        return self.epsilon


class LinearEpsilonDecay(EpsilonSchedule):
    """Linear decay from ``start`` to ``end`` over ``decay_steps`` steps."""

    def __init__(self, start: float = 1.0, end: float = 0.05, decay_steps: int = 1000) -> None:
        if not 0.0 <= end <= start <= 1.0:
            raise ValueError("need 0 <= end <= start <= 1")
        if decay_steps <= 0:
            raise ValueError("decay_steps must be positive")
        self.start = float(start)
        self.end = float(end)
        self.decay_steps = int(decay_steps)

    def value(self, step: int) -> float:
        if step < 0:
            raise ValueError("step must be non-negative")
        fraction = min(1.0, step / self.decay_steps)
        return self.start + fraction * (self.end - self.start)


class ExponentialEpsilonDecay(EpsilonSchedule):
    """Exponential decay ``end + (start - end) * exp(-step / tau)``."""

    def __init__(self, start: float = 1.0, end: float = 0.05, tau: float = 300.0) -> None:
        if not 0.0 <= end <= start <= 1.0:
            raise ValueError("need 0 <= end <= start <= 1")
        if tau <= 0:
            raise ValueError("tau must be positive")
        self.start = float(start)
        self.end = float(end)
        self.tau = float(tau)

    def value(self, step: int) -> float:
        if step < 0:
            raise ValueError("step must be non-negative")
        import math

        return self.end + (self.start - self.end) * math.exp(-step / self.tau)
