"""Double deep Q-network (DDQN) agent.

The agent learns Q-values over a small discrete action space -- in the
reproduction the actions are candidate multicast grouping numbers
``K in {k_min, ..., k_max}`` -- from a continuous state summarising the
compressed user-status features of the current reservation interval.

Double Q-learning (van Hasselt et al., 2016) decouples action *selection*
(argmax over the online network) from action *evaluation* (target network),
which removes the overestimation bias of vanilla DQN; with the very small
action spaces used here that bias would otherwise make the agent latch onto
a single K early in training.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.ml.layers import Dense, ReLU
from repro.ml.losses import HuberLoss
from repro.ml.network import Sequential
from repro.ml.optim import Adam
from repro.rl.policy import EpsilonSchedule, LinearEpsilonDecay
from repro.rl.replay import ReplayBuffer


@dataclass
class DDQNConfig:
    """Hyper-parameters of the DDQN agent."""

    state_dim: int
    num_actions: int
    hidden_sizes: Sequence[int] = (64, 64)
    learning_rate: float = 1e-3
    discount: float = 0.9
    batch_size: int = 32
    replay_capacity: int = 5000
    target_update_interval: int = 50
    min_replay_size: int = 64
    grad_clip: float = 5.0
    double_q: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.state_dim <= 0 or self.num_actions <= 0:
            raise ValueError("state_dim and num_actions must be positive")
        if not 0.0 <= self.discount <= 1.0:
            raise ValueError("discount must be in [0, 1]")
        if self.batch_size <= 0 or self.replay_capacity <= 0:
            raise ValueError("batch_size and replay_capacity must be positive")
        if self.min_replay_size < self.batch_size:
            raise ValueError("min_replay_size must be at least batch_size")


def build_q_network(
    state_dim: int,
    num_actions: int,
    hidden_sizes: Sequence[int],
    rng: np.random.Generator,
) -> Sequential:
    """Build the MLP Q-network used for both online and target networks."""
    layers: List = []
    previous = state_dim
    for size in hidden_sizes:
        layers.append(Dense(previous, size, rng))
        layers.append(ReLU())
        previous = size
    layers.append(Dense(previous, num_actions, rng, weight_init="glorot"))
    return Sequential(layers)


@dataclass
class AgentDiagnostics:
    """Rolling training diagnostics exposed for the micro-benchmarks."""

    losses: List[float] = field(default_factory=list)
    epsilons: List[float] = field(default_factory=list)
    target_updates: int = 0

    def recent_loss(self, window: int = 50) -> float:
        if not self.losses:
            return float("nan")
        return float(np.mean(self.losses[-window:]))


class DDQNAgent:
    """Double DQN agent with epsilon-greedy exploration and a target network."""

    def __init__(
        self,
        config: DDQNConfig,
        epsilon_schedule: Optional[EpsilonSchedule] = None,
    ) -> None:
        self.config = config
        # Imported lazily: repro.sim pulls in modules that import this one.
        from repro.sim.rng import legacy_stream

        self.rng = legacy_stream(config.seed)
        self.online = build_q_network(
            config.state_dim, config.num_actions, config.hidden_sizes, self.rng
        )
        self.target = build_q_network(
            config.state_dim, config.num_actions, config.hidden_sizes, self.rng
        )
        self.target.copy_weights_from(self.online)
        self.optimizer = Adam(self.online.parameters(), learning_rate=config.learning_rate)
        self.loss = HuberLoss()
        self.replay = ReplayBuffer(config.replay_capacity)
        self.epsilon_schedule = (
            epsilon_schedule if epsilon_schedule is not None else LinearEpsilonDecay()
        )
        self.steps = 0
        self.diagnostics = AgentDiagnostics()

    # ----------------------------------------------------------- act / store
    def q_values(self, state: np.ndarray) -> np.ndarray:
        """Q-value estimates for one state (shape ``(num_actions,)``)."""
        state = np.asarray(state, dtype=np.float64).reshape(1, -1)
        if state.shape[1] != self.config.state_dim:
            raise ValueError(
                f"expected state of dimension {self.config.state_dim}, got {state.shape[1]}"
            )
        return self.online.predict(state)[0]

    def select_action(self, state: np.ndarray, greedy: bool = False) -> int:
        """Epsilon-greedy action selection; set ``greedy=True`` for evaluation."""
        epsilon = 0.0 if greedy else self.epsilon_schedule.value(self.steps)
        self.diagnostics.epsilons.append(epsilon)
        if not greedy and self.rng.random() < epsilon:
            return int(self.rng.integers(self.config.num_actions))
        values = self.q_values(state)
        return int(values.argmax())

    def observe(
        self,
        state: np.ndarray,
        action: int,
        reward: float,
        next_state: np.ndarray,
        done: bool,
    ) -> Optional[float]:
        """Store a transition and run one learning step when enough data exists.

        Returns the training loss for this step, or ``None`` when learning
        was skipped because the replay buffer is still warming up.
        """
        if not 0 <= action < self.config.num_actions:
            raise ValueError(f"action {action} outside [0, {self.config.num_actions})")
        self.replay.push(state, action, reward, next_state, done)
        self.steps += 1
        if len(self.replay) < self.config.min_replay_size:
            return None
        loss_value = self._learn()
        if self.steps % self.config.target_update_interval == 0:
            self.target.copy_weights_from(self.online)
            self.diagnostics.target_updates += 1
        return loss_value

    # --------------------------------------------------------------- learning
    def _learn(self) -> float:
        batch = self.replay.sample(self.config.batch_size, rng=self.rng)
        q_online = self.online.forward(batch.states, training=True)

        q_next_target = self.target.predict(batch.next_states)
        if self.config.double_q:
            q_next_online = self.online.predict(batch.next_states)
            best_actions = q_next_online.argmax(axis=1)
        else:
            best_actions = q_next_target.argmax(axis=1)
        next_values = q_next_target[np.arange(len(batch)), best_actions]
        targets_for_actions = batch.rewards + self.config.discount * next_values * (
            ~batch.dones
        ).astype(np.float64)

        # Only the taken action's Q-value receives a learning signal.
        targets = q_online.copy()
        targets[np.arange(len(batch)), batch.actions] = targets_for_actions

        loss_value = self.loss.value(q_online, targets)
        grad = self.loss.gradient(q_online, targets)
        self.optimizer.zero_grad()
        self.online.backward(grad)
        self.optimizer.clip_gradients(self.config.grad_clip)
        self.optimizer.step()
        self.diagnostics.losses.append(loss_value)
        return loss_value

    # ------------------------------------------------------------- utilities
    def greedy_policy(self) -> "GreedyPolicy":
        """Return a frozen greedy policy backed by the current online network."""
        return GreedyPolicy(self)


class GreedyPolicy:
    """Thin wrapper exposing only greedy action selection."""

    def __init__(self, agent: DDQNAgent) -> None:
        self._agent = agent

    def __call__(self, state: np.ndarray) -> int:
        return self._agent.select_action(state, greedy=True)
