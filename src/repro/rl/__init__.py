"""Reinforcement-learning substrate: replay buffer, schedules and DDQN.

The paper selects the multicast grouping number with a double deep Q-network
(DDQN) before running K-means++.  This subpackage provides:

* :mod:`repro.rl.replay` -- uniform experience replay buffer.
* :mod:`repro.rl.policy` -- epsilon-greedy exploration schedules.
* :mod:`repro.rl.ddqn` -- the DDQN agent (online + target Q-networks built
  on :mod:`repro.ml`).
* :mod:`repro.rl.env` -- the grouping environment whose action space is the
  number of multicast groups and whose reward trades off intra-group user
  similarity against the per-group multicast-channel cost.
"""

from repro.rl.ddqn import DDQNAgent, DDQNConfig
from repro.rl.env import (
    Environment,
    GroupingEnvConfig,
    GroupingEnvironment,
    SnapshotReplayEnvironment,
    StepResult,
    grouping_state,
)
from repro.rl.policy import ConstantEpsilon, EpsilonSchedule, ExponentialEpsilonDecay, LinearEpsilonDecay
from repro.rl.replay import ReplayBuffer, Transition
from repro.rl.training import TrainingResult, evaluate_agent, train_agent

__all__ = [
    "ConstantEpsilon",
    "DDQNAgent",
    "DDQNConfig",
    "Environment",
    "EpsilonSchedule",
    "ExponentialEpsilonDecay",
    "GroupingEnvConfig",
    "GroupingEnvironment",
    "LinearEpsilonDecay",
    "ReplayBuffer",
    "SnapshotReplayEnvironment",
    "StepResult",
    "TrainingResult",
    "Transition",
    "evaluate_agent",
    "grouping_state",
    "train_agent",
]
