"""Grouping environment for the DDQN grouping-number selector.

The paper's two-step multicast group construction first lets a double deep
Q-network choose *how many* multicast groups to form by "mining users'
similarities", and only then runs K-means++ with that number.  This module
casts the grouping-number choice as a small episodic reinforcement-learning
problem:

* **State** -- summary statistics of the compressed user-feature matrix
  (number of users, feature spread, mean/min/max pairwise distance and the
  quality of the previously chosen grouping).  The statistics are cheap to
  compute and invariant to user ordering, so the same trained agent can be
  reused across reservation intervals with different user populations.
* **Action** -- an index selecting the number of groups ``K`` in
  ``[min_groups, max_groups]``.
* **Reward** -- a clustering-quality term (silhouette score of the K-means++
  partition) minus a resource-cost term that grows with ``K``.  More groups
  always improve intra-group similarity but each extra group costs an extra
  multicast channel, which is exactly the trade-off the paper's DDQN is
  meant to resolve.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from repro.cluster import KMeansPlusPlus, silhouette_score

#: Dimensionality of the state vector produced by :func:`grouping_state`.
STATE_DIM = 8


@dataclass(frozen=True)
class StepResult:
    """Outcome of a single environment step."""

    state: np.ndarray
    reward: float
    done: bool
    info: dict


class Environment:
    """Minimal episodic environment interface used by :func:`train_agent`."""

    #: Dimensionality of the observation vector.
    state_dim: int
    #: Number of discrete actions.
    num_actions: int

    def reset(self, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Start a new episode and return the initial state."""
        raise NotImplementedError

    def step(self, action: int) -> StepResult:
        """Apply ``action`` and return the resulting transition."""
        raise NotImplementedError


def grouping_state(
    features: np.ndarray,
    previous_k: int,
    previous_quality: float,
    max_groups: int,
) -> np.ndarray:
    """Build the permutation-invariant state vector for a feature snapshot.

    Parameters
    ----------
    features:
        Compressed user-feature matrix of shape ``(num_users, dim)``.
    previous_k:
        Grouping number chosen at the previous step (0 if none yet).
    previous_quality:
        Silhouette score obtained with ``previous_k`` (0 if none yet).
    max_groups:
        Upper bound of the action space, used for normalisation.
    """
    features = np.atleast_2d(np.asarray(features, dtype=np.float64))
    num_users = features.shape[0]
    if num_users == 0:
        return np.zeros(STATE_DIM)
    centred = features - features.mean(axis=0, keepdims=True)
    spread = float(np.sqrt((centred**2).sum(axis=1)).mean())
    if num_users > 1:
        diffs = features[:, None, :] - features[None, :, :]
        distances = np.sqrt((diffs**2).sum(axis=-1))
        upper = distances[np.triu_indices(num_users, k=1)]
        mean_dist = float(upper.mean())
        min_dist = float(upper.min())
        max_dist = float(upper.max())
    else:
        mean_dist = min_dist = max_dist = 0.0
    return np.array(
        [
            num_users / 100.0,
            spread,
            mean_dist,
            min_dist,
            max_dist,
            previous_k / max(max_groups, 1),
            previous_quality,
            features.shape[1] / 64.0,
        ],
        dtype=np.float64,
    )


@dataclass
class GroupingEnvConfig:
    """Configuration of :class:`GroupingEnvironment`.

    ``reward = similarity_weight * silhouette(K) - resource_weight * K /
    max_groups``; ``invalid_penalty`` is returned instead when ``K`` exceeds
    the number of users in the snapshot.
    """

    min_groups: int = 2
    max_groups: int = 8
    similarity_weight: float = 1.0
    resource_weight: float = 0.35
    invalid_penalty: float = -1.0
    episode_length: int = 8
    kmeans_restarts: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        if self.min_groups < 1:
            raise ValueError("min_groups must be at least 1")
        if self.max_groups < self.min_groups:
            raise ValueError("max_groups must be >= min_groups")
        if self.episode_length <= 0:
            raise ValueError("episode_length must be positive")

    @property
    def num_actions(self) -> int:
        return self.max_groups - self.min_groups + 1

    def action_to_k(self, action: int) -> int:
        """Map a discrete action index to a grouping number."""
        if not 0 <= action < self.num_actions:
            raise ValueError(f"action {action} outside [0, {self.num_actions})")
        return self.min_groups + action


FeatureProvider = Callable[[np.random.Generator], np.ndarray]


def _default_feature_provider(rng: np.random.Generator) -> np.ndarray:
    """Sample a synthetic snapshot of compressed user features.

    Users are drawn around a random number of latent "interest centres",
    which mirrors what the 1D-CNN compressor produces for a population with
    a handful of distinct viewing profiles.
    """
    num_centres = int(rng.integers(2, 6))
    users_per_centre = int(rng.integers(5, 15))
    dim = 8
    centres = rng.normal(0.0, 3.0, size=(num_centres, dim))
    samples = []
    for centre in centres:
        samples.append(centre + rng.normal(0.0, 0.5, size=(users_per_centre, dim)))
    return np.vstack(samples)


class GroupingEnvironment(Environment):
    """Episodic environment whose action is the number of multicast groups.

    Each episode presents ``episode_length`` user-feature snapshots (drawn
    from ``feature_provider``); at every step the agent picks ``K``, the
    environment clusters the snapshot with K-means++ and rewards the agent
    with clustering quality minus multicast-channel cost.
    """

    def __init__(
        self,
        config: Optional[GroupingEnvConfig] = None,
        feature_provider: Optional[FeatureProvider] = None,
    ) -> None:
        self.config = config if config is not None else GroupingEnvConfig()
        self.feature_provider = (
            feature_provider if feature_provider is not None else _default_feature_provider
        )
        self.state_dim = STATE_DIM
        self.num_actions = self.config.num_actions
        # Imported lazily: repro.sim pulls in modules that import this one.
        from repro.sim.rng import legacy_stream

        self._rng = legacy_stream(self.config.seed)
        self._step_index = 0
        self._features: Optional[np.ndarray] = None
        self._previous_k = 0
        self._previous_quality = 0.0

    # ------------------------------------------------------------------ API
    def reset(self, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        if rng is not None:
            self._rng = rng
        self._step_index = 0
        self._previous_k = 0
        self._previous_quality = 0.0
        self._features = self.feature_provider(self._rng)
        return self._current_state()

    def step(self, action: int) -> StepResult:
        if self._features is None:
            raise RuntimeError("call reset() before step()")
        k = self.config.action_to_k(action)
        reward, quality = self._evaluate(self._features, k)
        self._previous_k = k
        self._previous_quality = quality
        self._step_index += 1
        done = self._step_index >= self.config.episode_length
        if not done:
            self._features = self.feature_provider(self._rng)
        state = self._current_state()
        return StepResult(state=state, reward=reward, done=done, info={"k": k, "quality": quality})

    # ------------------------------------------------------------ internals
    def _current_state(self) -> np.ndarray:
        assert self._features is not None
        return grouping_state(
            self._features, self._previous_k, self._previous_quality, self.config.max_groups
        )

    def _evaluate(self, features: np.ndarray, k: int) -> tuple:
        """Return ``(reward, silhouette)`` for clustering ``features`` into ``k`` groups."""
        num_users = features.shape[0]
        if k > num_users:
            return self.config.invalid_penalty, 0.0
        if k == 1:
            quality = 0.0
        else:
            result = KMeansPlusPlus(k, restarts=self.config.kmeans_restarts).fit(
                features, rng=self._rng
            )
            quality = silhouette_score(features, result.labels)
        cost = k / max(self.config.max_groups, 1)
        reward = self.config.similarity_weight * quality - self.config.resource_weight * cost
        return float(reward), float(quality)


@dataclass
class SnapshotReplayEnvironment(Environment):
    """Grouping environment that replays a fixed list of feature snapshots.

    Useful for training the DDQN on the exact user populations observed by
    the digital-twin manager rather than on synthetic snapshots.
    """

    snapshots: Sequence[np.ndarray]
    config: GroupingEnvConfig = field(default_factory=GroupingEnvConfig)

    def __post_init__(self) -> None:
        if not len(self.snapshots):
            raise ValueError("snapshots must not be empty")
        self.state_dim = STATE_DIM
        self.num_actions = self.config.num_actions
        self._cursor = 0
        self._inner = GroupingEnvironment(self.config, feature_provider=self._next_snapshot)

    def _next_snapshot(self, rng: np.random.Generator) -> np.ndarray:
        snapshot = np.asarray(self.snapshots[self._cursor % len(self.snapshots)])
        self._cursor += 1
        return snapshot

    def reset(self, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        return self._inner.reset(rng)

    def step(self, action: int) -> StepResult:
        return self._inner.step(action)
