"""Experience replay buffer for DDQN training."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np


@dataclass(frozen=True)
class Transition:
    """A single ``(s, a, r, s', done)`` tuple."""

    state: np.ndarray
    action: int
    reward: float
    next_state: np.ndarray
    done: bool


@dataclass
class TransitionBatch:
    """A column-oriented batch of transitions ready for vectorised training."""

    states: np.ndarray
    actions: np.ndarray
    rewards: np.ndarray
    next_states: np.ndarray
    dones: np.ndarray

    def __len__(self) -> int:
        return int(self.states.shape[0])


class ReplayBuffer:
    """Fixed-capacity FIFO replay buffer with uniform sampling.

    The buffer stores :class:`Transition` objects and evicts the oldest one
    when full.  Sampling is uniform without replacement when the buffer holds
    at least ``batch_size`` transitions, matching the vanilla DDQN recipe.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._storage: List[Transition] = []
        self._next_index = 0

    def __len__(self) -> int:
        return len(self._storage)

    @property
    def is_full(self) -> bool:
        return len(self._storage) == self.capacity

    def push(
        self,
        state: np.ndarray,
        action: int,
        reward: float,
        next_state: np.ndarray,
        done: bool,
    ) -> None:
        """Add a transition, evicting the oldest when at capacity."""
        transition = Transition(
            state=np.asarray(state, dtype=np.float64).copy(),
            action=int(action),
            reward=float(reward),
            next_state=np.asarray(next_state, dtype=np.float64).copy(),
            done=bool(done),
        )
        if len(self._storage) < self.capacity:
            self._storage.append(transition)
        else:
            self._storage[self._next_index] = transition
        self._next_index = (self._next_index + 1) % self.capacity

    def sample(self, batch_size: int, rng: Optional[np.random.Generator] = None) -> TransitionBatch:
        """Sample a batch uniformly; raises if the buffer is too small.

        ``rng`` is required — sampling must draw from the caller's stream
        so replayed runs stay bit-identical.
        """
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if len(self._storage) < batch_size:
            raise ValueError(
                f"buffer holds {len(self._storage)} transitions; cannot sample {batch_size}"
            )
        if rng is None:
            raise ValueError(
                "sample() requires an explicit rng; pass np.random.default_rng(0) "
                "to reproduce the former implicit sampling stream"
            )
        indices = rng.choice(len(self._storage), size=batch_size, replace=False)
        chosen = [self._storage[i] for i in indices]
        return TransitionBatch(
            states=np.stack([t.state for t in chosen]),
            actions=np.array([t.action for t in chosen], dtype=int),
            rewards=np.array([t.reward for t in chosen], dtype=np.float64),
            next_states=np.stack([t.next_state for t in chosen]),
            dones=np.array([t.done for t in chosen], dtype=bool),
        )

    def clear(self) -> None:
        self._storage.clear()
        self._next_index = 0
