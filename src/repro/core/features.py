"""1D-CNN compression of user-digital-twin time series.

The paper "first utilize[s] a one-dimensional convolution neural network
(1D-CNN) to compress the time-series UDTs' data" before clustering.  The
compressor below is a small convolutional encoder trained with a
self-supervised objective: predict per-channel summary statistics (mean,
standard deviation, minimum, maximum) of the input window from the
compressed representation.  A representation that can reproduce those
statistics necessarily encodes the user's channel quality, position range,
engagement level and preference profile — exactly the similarity signal the
multicast grouping needs — while being an order of magnitude smaller than
the raw window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.ml.layers import (
    Conv1D,
    Dense,
    Flatten,
    GlobalAveragePool1D,
    Layer,
    MaxPool1D,
    ReLU,
)
from repro.ml.losses import MSELoss
from repro.ml.network import TrainingHistory
from repro.ml.optim import Adam


@dataclass
class CompressorConfig:
    """Hyper-parameters of the 1D-CNN compressor."""

    num_steps: int = 32
    num_channels: int = 12
    compressed_dim: int = 8
    conv_channels: tuple = (16, 32)
    kernel_size: int = 3
    epochs: int = 12
    batch_size: int = 16
    learning_rate: float = 1e-3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_steps <= 0 or self.num_channels <= 0 or self.compressed_dim <= 0:
            raise ValueError("num_steps, num_channels and compressed_dim must be positive")
        if len(self.conv_channels) == 0:
            raise ValueError("need at least one convolutional layer")
        if self.kernel_size <= 0 or self.epochs <= 0 or self.batch_size <= 0:
            raise ValueError("kernel_size, epochs and batch_size must be positive")


def summary_targets(tensor: np.ndarray) -> np.ndarray:
    """Self-supervised targets: per-channel mean, std, min and max.

    ``tensor`` has shape ``(users, steps, channels)``; the result has shape
    ``(users, 4 * channels)``.
    """
    tensor = np.asarray(tensor, dtype=np.float64)
    if tensor.ndim != 3:
        raise ValueError("expected a tensor of shape (users, steps, channels)")
    stats = [
        tensor.mean(axis=1),
        tensor.std(axis=1),
        tensor.min(axis=1),
        tensor.max(axis=1),
    ]
    return np.concatenate(stats, axis=1)


class UDTFeatureCompressor:
    """Convolutional encoder from UDT time-series windows to feature vectors."""

    def __init__(self, config: Optional[CompressorConfig] = None) -> None:
        self.config = config if config is not None else CompressorConfig()
        # Imported lazily: repro.sim pulls in modules that import this one.
        from repro.sim.rng import legacy_stream

        rng = legacy_stream(self.config.seed)
        config = self.config

        encoder: List[Layer] = []
        in_channels = config.num_channels
        for out_channels in config.conv_channels:
            encoder.append(
                Conv1D(
                    in_channels,
                    out_channels,
                    kernel_size=config.kernel_size,
                    rng=rng,
                    padding=config.kernel_size // 2,
                )
            )
            encoder.append(ReLU())
            encoder.append(MaxPool1D(pool_size=2))
            in_channels = out_channels
        encoder.append(GlobalAveragePool1D())
        encoder.append(Dense(in_channels, config.compressed_dim, rng, weight_init="glorot"))
        self._encoder_layers = encoder

        target_dim = 4 * config.num_channels
        self._head_layers: List[Layer] = [
            ReLU(),
            Dense(config.compressed_dim, target_dim, rng, weight_init="glorot"),
        ]

        self._all_layers = self._encoder_layers + self._head_layers
        parameters = [p for layer in self._all_layers for p in layer.parameters()]
        self._optimizer = Adam(parameters, learning_rate=config.learning_rate)
        self._loss = MSELoss()
        self._rng = rng
        self._channel_mean: Optional[np.ndarray] = None
        self._channel_std: Optional[np.ndarray] = None
        self._target_mean: Optional[np.ndarray] = None
        self._target_std: Optional[np.ndarray] = None
        self.fitted = False

    # ------------------------------------------------------------ internals
    def _validate_tensor(self, tensor: np.ndarray) -> np.ndarray:
        tensor = np.asarray(tensor, dtype=np.float64)
        if tensor.ndim != 3:
            raise ValueError("expected a tensor of shape (users, steps, channels)")
        if tensor.shape[1] != self.config.num_steps:
            raise ValueError(
                f"expected {self.config.num_steps} time steps, got {tensor.shape[1]}"
            )
        if tensor.shape[2] != self.config.num_channels:
            raise ValueError(
                f"expected {self.config.num_channels} channels, got {tensor.shape[2]}"
            )
        return tensor

    def _normalise(self, tensor: np.ndarray) -> np.ndarray:
        if self._channel_mean is None or self._channel_std is None:
            return tensor
        return (tensor - self._channel_mean) / self._channel_std

    def _forward(self, x: np.ndarray, layers: List[Layer], training: bool) -> np.ndarray:
        out = x
        for layer in layers:
            out = layer.forward(out, training=training)
        return out

    def _backward(self, grad: np.ndarray, layers: List[Layer]) -> np.ndarray:
        out = grad
        for layer in reversed(layers):
            out = layer.backward(out)
        return out

    # -------------------------------------------------------------- training
    def fit(self, tensor: np.ndarray) -> TrainingHistory:
        """Train the compressor on a population feature tensor.

        ``tensor`` has shape ``(users, steps, channels)`` — typically the
        output of :meth:`repro.twin.manager.DigitalTwinManager.feature_tensor`
        over one or more reservation intervals.
        """
        tensor = self._validate_tensor(tensor)
        config = self.config

        # Channel-wise normalisation of inputs and standardised targets.
        self._channel_mean = tensor.mean(axis=(0, 1), keepdims=True)
        self._channel_std = tensor.std(axis=(0, 1), keepdims=True) + 1e-8
        normalised = self._normalise(tensor)
        targets = summary_targets(normalised)
        self._target_mean = targets.mean(axis=0, keepdims=True)
        self._target_std = targets.std(axis=0, keepdims=True) + 1e-8
        targets = (targets - self._target_mean) / self._target_std

        history = TrainingHistory()
        num_users = normalised.shape[0]
        for _ in range(config.epochs):
            order = self._rng.permutation(num_users)
            epoch_losses = []
            for start in range(0, num_users, config.batch_size):
                batch_idx = order[start : start + config.batch_size]
                x = normalised[batch_idx]
                y = targets[batch_idx]
                self._optimizer.zero_grad()
                prediction = self._forward(x, self._all_layers, training=True)
                loss_value = self._loss.value(prediction, y)
                grad = self._loss.gradient(prediction, y)
                self._backward(grad, self._all_layers)
                self._optimizer.clip_gradients(5.0)
                self._optimizer.step()
                epoch_losses.append(loss_value)
            history.train_loss.append(float(np.mean(epoch_losses)))
        self.fitted = True
        return history

    # ------------------------------------------------------------ inference
    def compress(self, tensor: np.ndarray) -> np.ndarray:
        """Compress a feature tensor into per-user feature vectors.

        Returns an array of shape ``(users, compressed_dim)``.  An unfitted
        compressor falls back to normalised per-channel statistics projected
        onto the first ``compressed_dim`` components, so the pipeline stays
        usable before / without training.
        """
        tensor = self._validate_tensor(tensor)
        if not self.fitted:
            stats = summary_targets(tensor)
            return stats[:, : self.config.compressed_dim]
        normalised = self._normalise(tensor)
        return self._forward(normalised, self._encoder_layers, training=False)

    def reconstruction_error(self, tensor: np.ndarray) -> float:
        """MSE of the summary-statistics head on ``tensor`` (lower is better)."""
        tensor = self._validate_tensor(tensor)
        if not self.fitted:
            raise RuntimeError("compressor must be fitted before computing reconstruction error")
        normalised = self._normalise(tensor)
        targets = summary_targets(normalised)
        targets = (targets - self._target_mean) / self._target_std
        prediction = self._forward(normalised, self._all_layers, training=False)
        return float(self._loss.value(prediction, targets))

    @property
    def compression_ratio(self) -> float:
        """Raw window size divided by the compressed dimension."""
        raw = self.config.num_steps * self.config.num_channels
        return raw / self.config.compressed_dim
