"""The paper's contribution: DT-assisted resource demand prediction.

The pipeline mirrors Fig. 2 of the paper:

1. :mod:`repro.core.features` -- a 1D-CNN compresses each user's
   digital-twin time series into a compact feature vector.
2. :mod:`repro.core.grouping` -- a DDQN agent chooses the number of
   multicast groups and K-means++ clusters the compressed features
   (two-step multicast group construction).
3. :mod:`repro.core.swiping` -- each group's swiping-probability
   distribution is abstracted from the watching durations in the UDTs.
4. :mod:`repro.core.recommendation` -- recommended videos per group from
   popularity and group preference.
5. :mod:`repro.core.demand` -- group-level radio (resource blocks) and
   computing (CPU cycles) demand prediction from the abstracted
   information.
6. :mod:`repro.core.pipeline` -- the end-to-end
   :class:`DTResourcePredictionScheme` that runs the whole loop against the
   simulator and evaluates prediction accuracy
   (:mod:`repro.core.accuracy`).
"""

from repro.core.accuracy import (
    mean_absolute_percentage_error,
    mean_prediction_accuracy,
    prediction_accuracy,
    prediction_accuracy_series,
    root_mean_squared_error,
)
from repro.core.config import SchemeConfig
from repro.core.features import CompressorConfig, UDTFeatureCompressor
from repro.core.grouping import GroupingResult, MulticastGroupConstructor
from repro.core.swiping import GroupSwipingProfile, abstract_group_swiping
from repro.core.recommendation import GroupRecommendation, VideoRecommender
from repro.core.demand import GroupDemandPrediction, GroupDemandPredictor
from repro.core.pipeline import (
    DTResourcePredictionScheme,
    EvaluationResult,
    IntervalEvaluation,
)
from repro.core.reservation import (
    AdmissionController,
    AdmissionResult,
    ReservationPlanner,
    ReservationPolicy,
    ReservationReport,
)

__all__ = [
    "AdmissionController",
    "AdmissionResult",
    "CompressorConfig",
    "DTResourcePredictionScheme",
    "ReservationPlanner",
    "ReservationPolicy",
    "ReservationReport",
    "EvaluationResult",
    "GroupDemandPrediction",
    "GroupDemandPredictor",
    "GroupRecommendation",
    "GroupSwipingProfile",
    "GroupingResult",
    "IntervalEvaluation",
    "MulticastGroupConstructor",
    "SchemeConfig",
    "UDTFeatureCompressor",
    "VideoRecommender",
    "abstract_group_swiping",
    "mean_absolute_percentage_error",
    "mean_prediction_accuracy",
    "prediction_accuracy",
    "prediction_accuracy_series",
    "root_mean_squared_error",
]
