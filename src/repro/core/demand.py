"""Group-based radio and computing resource demand prediction.

From each multicast group's abstracted information — swiping-probability
distribution, mean watched fractions, mean preference, recent channel
conditions — the predictor estimates what the group will consume in the
*next* reservation interval:

* **Radio demand**: expected multicast traffic (bits) divided by what one
  resource block carries at the group's predicted spectral efficiency.
* **Computing demand**: CPU cycles to transcode the expected stream down to
  the representation the group can sustain.

The expectation is computed by Monte-Carlo rollout of the group's shared
stream using only the abstracted group-level statistics (never the
individual users' ground-truth behaviour models), which is the paper's
"analyze multicast groups' average engagement time, video traffic, and
computing consumption" step made concrete.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.core.recommendation import VideoRecommender
from repro.core.swiping import GroupSwipingProfile, abstract_group_swiping
from repro.edge.transcoding import TranscodingCostModel
from repro.net.mcs import spectral_efficiency
from repro.net.multicast import resource_blocks_for_traffic
from repro.sim.rng import derive_stream, window_token
from repro.twin.attributes import CHANNEL_CONDITION
from repro.twin.manager import DigitalTwinManager
from repro.video.catalog import VideoCatalog
from repro.video.popularity import sample_index, sampling_cdf


@dataclass
class GroupDemandPrediction:
    """Predicted next-interval demand of one multicast group."""

    group_id: int
    member_ids: List[int]
    expected_traffic_bits: float
    expected_engagement_s: float
    expected_videos: float
    radio_resource_blocks: float
    computing_cycles: float
    efficiency_bps_hz: float
    representation_name: str


@dataclass
class DemandPredictorConfig:
    """Parameters of the group demand predictor (defaults match the simulator)."""

    interval_s: float = 300.0
    rb_bandwidth_hz: float = 180e3
    stream_bandwidth_hz: float = 1.8e6
    implementation_loss: float = 0.9
    swipe_gap_s: float = 0.5
    recommendation_popularity_weight: float = 0.5
    cycles_per_pixel: float = 12.0
    mc_rollouts: int = 12
    beta_concentration: float = 4.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.interval_s <= 0 or self.rb_bandwidth_hz <= 0 or self.stream_bandwidth_hz <= 0:
            raise ValueError("interval and bandwidths must be positive")
        if self.mc_rollouts <= 0:
            raise ValueError("mc_rollouts must be positive")
        if self.beta_concentration <= 0:
            raise ValueError("beta_concentration must be positive")


class GroupDemandPredictor:
    """Predicts per-group radio and computing demand from abstracted group info."""

    def __init__(
        self,
        catalog: VideoCatalog,
        config: Optional[DemandPredictorConfig] = None,
    ) -> None:
        self.catalog = catalog
        self.config = config if config is not None else DemandPredictorConfig()
        self.recommender = VideoRecommender(
            catalog, popularity_weight=self.config.recommendation_popularity_weight
        )
        self.transcoder = TranscodingCostModel(cycles_per_pixel=self.config.cycles_per_pixel)

    def _rollout_rng(
        self, group_id: int, window_start_s: Optional[float]
    ) -> np.random.Generator:
        """Deterministic per-call generator derived from ``(seed, group, window)``.

        Drawing every group's rollouts from one shared generator would make a
        group's prediction depend on how many groups were predicted before
        it; a per-call generator keyed on the group and window makes
        predictions order-independent and reproducible.  The derivation
        goes through :mod:`repro.sim.rng` — the same canonical
        ``SeedSequence`` registry the grouped simulation engine keys its
        playback streams from — with the historical ``(seed, group,
        window)`` entropy preserved word-for-word, so existing rollout
        streams are unchanged.
        """
        return derive_stream(
            (self.config.seed, group_id, window_token(window_start_s))
        )

    # ---------------------------------------------------------- link state
    def predict_link_state(
        self,
        member_ids: Sequence[int],
        twins: DigitalTwinManager,
        start_s: Optional[float],
        end_s: Optional[float],
    ) -> tuple:
        """``(efficiency, representation)`` predicted from recent channel conditions."""
        member_means = []
        for uid in member_ids:
            store = twins.twin(uid).store(CHANNEL_CONDITION)
            if start_s is None or end_s is None:
                values = store.values()
            else:
                values = store.window_values(start_s, end_s)
            if values.size == 0:
                values = store.values()
            member_means.append(float(values.mean()) if values.size else 0.0)
        worst = min(member_means) if member_means else 0.0
        efficiency = spectral_efficiency(
            worst, implementation_loss=self.config.implementation_loss
        )
        ladder = self.catalog.reference_ladder()
        representation = ladder.best_fitting(efficiency * self.config.stream_bandwidth_hz)
        return efficiency, representation

    # ----------------------------------------------------------- behaviour
    def _swiped_fraction_mean(self, profile: GroupSwipingProfile, category: str) -> float:
        """Mean watched fraction conditioned on swiping, derived from the profile.

        The profile stores the overall mean fraction ``f`` and the swipe
        probability ``p``; since completed viewings have fraction 1,
        ``f = (1 - p) + p * f_swiped`` and therefore
        ``f_swiped = (f - (1 - p)) / p``.
        """
        p = profile.swipe_probability.get(category, 0.5)
        f = profile.mean_watched_fraction.get(category, 0.5)
        if p <= 1e-6:
            return 0.5
        swiped = (f - (1.0 - p)) / p
        return float(min(max(swiped, 0.05), 0.95))

    def _rollout(
        self,
        profile: GroupSwipingProfile,
        video_ids: np.ndarray,
        cumulative_probabilities: np.ndarray,
        representation,
        rng: np.random.Generator,
    ) -> tuple:
        """One Monte-Carlo rollout of the group's shared stream for one interval."""
        config = self.config
        group_size = len(profile.member_ids)
        kappa = config.beta_concentration

        now = 0.0
        traffic = 0.0
        cycles = 0.0
        engagement = 0.0
        videos = 0
        while now < config.interval_s:
            # Inverse-CDF draw against the precomputed cumulative distribution
            # (rng.choice re-validates the probability vector on every call).
            video = self.catalog.get(int(video_ids[sample_index(cumulative_probabilities, rng)]))
            category = video.category
            p_swipe = profile.swipe_probability.get(category, 0.5)
            swiped_mean = self._swiped_fraction_mean(profile, category)
            alpha = swiped_mean * kappa
            beta = (1.0 - swiped_mean) * kappa
            fractions = np.where(
                rng.random(group_size) < p_swipe,
                rng.beta(alpha, beta, size=group_size),
                1.0,
            )
            remaining = config.interval_s - now
            transmitted = min(float(fractions.max()) * video.duration_s, remaining)
            traffic += video.bits_watched(representation, transmitted)
            cycles += self.transcoder.video_cycles(video, representation, transmitted)
            engagement += float(
                np.minimum(fractions * video.duration_s, remaining).sum()
            )
            videos += 1
            now += transmitted + config.swipe_gap_s
        return traffic, cycles, engagement, videos

    # ------------------------------------------------------------ prediction
    def predict_group(
        self,
        profile: GroupSwipingProfile,
        twins: DigitalTwinManager,
        window_start_s: Optional[float] = None,
        window_end_s: Optional[float] = None,
    ) -> GroupDemandPrediction:
        """Predict one group's next-interval demand from its abstracted profile."""
        config = self.config
        efficiency, representation = self.predict_link_state(
            profile.member_ids, twins, window_start_s, window_end_s
        )
        video_ids, probabilities = self.recommender.sampling_probabilities(
            profile.mean_preference
        )
        cumulative = sampling_cdf(probabilities)

        rng = self._rollout_rng(profile.group_id, window_start_s)
        totals = np.zeros(4)
        for _ in range(config.mc_rollouts):
            totals += np.array(
                self._rollout(profile, video_ids, cumulative, representation, rng)
            )
        traffic, cycles, engagement, videos = totals / config.mc_rollouts

        blocks = resource_blocks_for_traffic(
            traffic,
            efficiency,
            rb_bandwidth_hz=config.rb_bandwidth_hz,
            interval_s=config.interval_s,
        )
        return GroupDemandPrediction(
            group_id=profile.group_id,
            member_ids=list(profile.member_ids),
            expected_traffic_bits=float(traffic),
            expected_engagement_s=float(engagement),
            expected_videos=float(videos),
            radio_resource_blocks=float(blocks),
            computing_cycles=float(cycles),
            efficiency_bps_hz=float(efficiency),
            representation_name=representation.name,
        )

    def predict_groups(
        self,
        grouping: Mapping[int, Sequence[int]],
        twins: DigitalTwinManager,
        categories: Sequence[str],
        window_start_s: Optional[float] = None,
        window_end_s: Optional[float] = None,
        laplace_smoothing: float = 1.0,
    ) -> Dict[int, GroupDemandPrediction]:
        """Abstract every group's profile and predict its demand."""
        predictions: Dict[int, GroupDemandPrediction] = {}
        for group_id, member_ids in grouping.items():
            profile = abstract_group_swiping(
                group_id,
                member_ids,
                twins,
                categories,
                start_s=window_start_s,
                end_s=window_end_s,
                laplace_smoothing=laplace_smoothing,
            )
            predictions[group_id] = self.predict_group(
                profile, twins, window_start_s, window_end_s
            )
        return predictions

    @staticmethod
    def outage_groups(predictions: Mapping[int, GroupDemandPrediction]) -> List[int]:
        """Groups predicted to be in outage (infinite resource-block demand).

        A zero predicted spectral efficiency with non-zero expected traffic
        yields ``radio_resource_blocks == inf``; such groups cannot be served
        by any finite reservation and are surfaced here instead of being
        folded into :meth:`total_radio_blocks`.
        """
        return sorted(
            group_id
            for group_id, p in predictions.items()
            if not np.isfinite(p.radio_resource_blocks)
        )

    @staticmethod
    def total_radio_blocks(predictions: Mapping[int, GroupDemandPrediction]) -> float:
        """Sum of predicted resource blocks over groups with *finite* demand.

        Convention: outage groups (``radio_resource_blocks == inf``) are
        excluded so the total stays a schedulable quantity; they are reported
        separately via :meth:`outage_groups` rather than silently dropped.
        """
        finite = [
            p.radio_resource_blocks
            for p in predictions.values()
            if np.isfinite(p.radio_resource_blocks)
        ]
        return float(sum(finite))

    @staticmethod
    def total_computing_cycles(predictions: Mapping[int, GroupDemandPrediction]) -> float:
        return float(sum(p.computing_cycles for p in predictions.values()))

    @staticmethod
    def radio_blocks_by_cell(
        predictions: Mapping[int, GroupDemandPrediction],
        cell_of_group: Mapping[int, int],
    ) -> Dict[int, float]:
        """Finite predicted resource blocks summed per serving cell.

        ``cell_of_group`` maps scoped group ids to cells (the RAN
        controller's :meth:`~repro.net.controller.RanController.preview_scope`
        output); predictions for groups without a cell mapping — e.g. in
        boundary mode — are skipped, as are predicted-outage groups
        (infinite block demand), mirroring
        :meth:`IntervalResult.rb_demand_by_cell` on the actual side.
        """
        totals: Dict[int, float] = {}
        for group_id, prediction in predictions.items():
            cell_id = cell_of_group.get(group_id)
            if cell_id is not None and np.isfinite(prediction.radio_resource_blocks):
                totals[cell_id] = totals.get(cell_id, 0.0) + prediction.radio_resource_blocks
        return totals
