"""Group-based radio and computing resource demand prediction.

From each multicast group's abstracted information — swiping-probability
distribution, mean watched fractions, mean preference, recent channel
conditions — the predictor estimates what the group will consume in the
*next* reservation interval:

* **Radio demand**: expected multicast traffic (bits) divided by what one
  resource block carries at the group's predicted spectral efficiency.
* **Computing demand**: CPU cycles to transcode the expected stream down to
  the representation the group can sustain.

The expectation is computed by Monte-Carlo rollout of the group's shared
stream using only the abstracted group-level statistics (never the
individual users' ground-truth behaviour models), which is the paper's
"analyze multicast groups' average engagement time, video traffic, and
computing consumption" step made concrete.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.core.recommendation import VideoRecommender
from repro.core.swiping import GroupSwipingProfile, abstract_group_swiping
from repro.edge.transcoding import TranscodingCostModel
from repro.net.mcs import spectral_efficiency
from repro.net.multicast import resource_blocks_for_traffic
from repro.twin.attributes import CHANNEL_CONDITION
from repro.twin.manager import DigitalTwinManager
from repro.video.catalog import VideoCatalog


@dataclass
class GroupDemandPrediction:
    """Predicted next-interval demand of one multicast group."""

    group_id: int
    member_ids: List[int]
    expected_traffic_bits: float
    expected_engagement_s: float
    expected_videos: float
    radio_resource_blocks: float
    computing_cycles: float
    efficiency_bps_hz: float
    representation_name: str


@dataclass
class DemandPredictorConfig:
    """Parameters of the group demand predictor (defaults match the simulator)."""

    interval_s: float = 300.0
    rb_bandwidth_hz: float = 180e3
    stream_bandwidth_hz: float = 1.8e6
    implementation_loss: float = 0.9
    swipe_gap_s: float = 0.5
    recommendation_popularity_weight: float = 0.5
    cycles_per_pixel: float = 12.0
    mc_rollouts: int = 12
    beta_concentration: float = 4.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.interval_s <= 0 or self.rb_bandwidth_hz <= 0 or self.stream_bandwidth_hz <= 0:
            raise ValueError("interval and bandwidths must be positive")
        if self.mc_rollouts <= 0:
            raise ValueError("mc_rollouts must be positive")
        if self.beta_concentration <= 0:
            raise ValueError("beta_concentration must be positive")


class GroupDemandPredictor:
    """Predicts per-group radio and computing demand from abstracted group info."""

    def __init__(
        self,
        catalog: VideoCatalog,
        config: Optional[DemandPredictorConfig] = None,
    ) -> None:
        self.catalog = catalog
        self.config = config if config is not None else DemandPredictorConfig()
        self.recommender = VideoRecommender(
            catalog, popularity_weight=self.config.recommendation_popularity_weight
        )
        self.transcoder = TranscodingCostModel(cycles_per_pixel=self.config.cycles_per_pixel)
        self._rng = np.random.default_rng(self.config.seed)

    # ---------------------------------------------------------- link state
    def predict_link_state(
        self,
        member_ids: Sequence[int],
        twins: DigitalTwinManager,
        start_s: Optional[float],
        end_s: Optional[float],
    ) -> tuple:
        """``(efficiency, representation)`` predicted from recent channel conditions."""
        member_means = []
        for uid in member_ids:
            store = twins.twin(uid).store(CHANNEL_CONDITION)
            if start_s is None or end_s is None:
                values = store.values()
            else:
                values = store.window_values(start_s, end_s)
            if values.size == 0:
                values = store.values()
            member_means.append(float(values.mean()) if values.size else 0.0)
        worst = min(member_means) if member_means else 0.0
        efficiency = spectral_efficiency(
            worst, implementation_loss=self.config.implementation_loss
        )
        ladder = self.catalog.get(self.catalog.video_ids()[0]).ladder
        representation = ladder.best_fitting(efficiency * self.config.stream_bandwidth_hz)
        return efficiency, representation

    # ----------------------------------------------------------- behaviour
    def _swiped_fraction_mean(self, profile: GroupSwipingProfile, category: str) -> float:
        """Mean watched fraction conditioned on swiping, derived from the profile.

        The profile stores the overall mean fraction ``f`` and the swipe
        probability ``p``; since completed viewings have fraction 1,
        ``f = (1 - p) + p * f_swiped`` and therefore
        ``f_swiped = (f - (1 - p)) / p``.
        """
        p = profile.swipe_probability.get(category, 0.5)
        f = profile.mean_watched_fraction.get(category, 0.5)
        if p <= 1e-6:
            return 0.5
        swiped = (f - (1.0 - p)) / p
        return float(min(max(swiped, 0.05), 0.95))

    def _rollout(
        self,
        profile: GroupSwipingProfile,
        sampling: Dict[int, float],
        representation,
        rng: np.random.Generator,
    ) -> tuple:
        """One Monte-Carlo rollout of the group's shared stream for one interval."""
        config = self.config
        video_ids = np.array(list(sampling.keys()))
        probabilities = np.array(list(sampling.values()))
        group_size = len(profile.member_ids)
        kappa = config.beta_concentration

        now = 0.0
        traffic = 0.0
        cycles = 0.0
        engagement = 0.0
        videos = 0
        while now < config.interval_s:
            video = self.catalog.get(int(rng.choice(video_ids, p=probabilities)))
            category = video.category
            p_swipe = profile.swipe_probability.get(category, 0.5)
            swiped_mean = self._swiped_fraction_mean(profile, category)
            alpha = swiped_mean * kappa
            beta = (1.0 - swiped_mean) * kappa
            fractions = np.where(
                rng.random(group_size) < p_swipe,
                rng.beta(alpha, beta, size=group_size),
                1.0,
            )
            remaining = config.interval_s - now
            transmitted = min(float(fractions.max()) * video.duration_s, remaining)
            traffic += video.bits_watched(representation, transmitted)
            cycles += self.transcoder.video_cycles(video, representation, transmitted)
            engagement += float(
                np.minimum(fractions * video.duration_s, remaining).sum()
            )
            videos += 1
            now += transmitted + config.swipe_gap_s
        return traffic, cycles, engagement, videos

    # ------------------------------------------------------------ prediction
    def predict_group(
        self,
        profile: GroupSwipingProfile,
        twins: DigitalTwinManager,
        window_start_s: Optional[float] = None,
        window_end_s: Optional[float] = None,
    ) -> GroupDemandPrediction:
        """Predict one group's next-interval demand from its abstracted profile."""
        config = self.config
        efficiency, representation = self.predict_link_state(
            profile.member_ids, twins, window_start_s, window_end_s
        )
        sampling = self.recommender.sampling_distribution(profile.mean_preference)

        totals = np.zeros(4)
        for _ in range(config.mc_rollouts):
            totals += np.array(
                self._rollout(profile, sampling, representation, self._rng)
            )
        traffic, cycles, engagement, videos = totals / config.mc_rollouts

        blocks = resource_blocks_for_traffic(
            traffic,
            efficiency,
            rb_bandwidth_hz=config.rb_bandwidth_hz,
            interval_s=config.interval_s,
        )
        return GroupDemandPrediction(
            group_id=profile.group_id,
            member_ids=list(profile.member_ids),
            expected_traffic_bits=float(traffic),
            expected_engagement_s=float(engagement),
            expected_videos=float(videos),
            radio_resource_blocks=float(blocks),
            computing_cycles=float(cycles),
            efficiency_bps_hz=float(efficiency),
            representation_name=representation.name,
        )

    def predict_groups(
        self,
        grouping: Mapping[int, Sequence[int]],
        twins: DigitalTwinManager,
        categories: Sequence[str],
        window_start_s: Optional[float] = None,
        window_end_s: Optional[float] = None,
        laplace_smoothing: float = 1.0,
    ) -> Dict[int, GroupDemandPrediction]:
        """Abstract every group's profile and predict its demand."""
        predictions: Dict[int, GroupDemandPrediction] = {}
        for group_id, member_ids in grouping.items():
            profile = abstract_group_swiping(
                group_id,
                member_ids,
                twins,
                categories,
                start_s=window_start_s,
                end_s=window_end_s,
                laplace_smoothing=laplace_smoothing,
            )
            predictions[group_id] = self.predict_group(
                profile, twins, window_start_s, window_end_s
            )
        return predictions

    @staticmethod
    def total_radio_blocks(predictions: Mapping[int, GroupDemandPrediction]) -> float:
        finite = [
            p.radio_resource_blocks
            for p in predictions.values()
            if np.isfinite(p.radio_resource_blocks)
        ]
        return float(sum(finite))

    @staticmethod
    def total_computing_cycles(predictions: Mapping[int, GroupDemandPrediction]) -> float:
        return float(sum(p.computing_cycles for p in predictions.values()))
