"""Prediction accuracy metrics.

The paper reports "a high prediction accuracy up to 95.04 % on radio
resource demand".  We interpret accuracy the usual way for demand
prediction: ``1 - |predicted - actual| / actual`` per reservation interval
(clamped to ``[0, 1]``), and report both the per-interval series and its
mean/maximum.  MAPE and RMSE are provided for completeness.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def prediction_accuracy(predicted: float, actual: float) -> float:
    """Accuracy of a single prediction: ``1 - |error| / actual``, clamped to [0, 1].

    A zero actual with a zero prediction counts as perfectly accurate; a
    zero actual with a non-zero prediction counts as zero accuracy.
    """
    predicted = float(predicted)
    actual = float(actual)
    if not np.isfinite(predicted) or not np.isfinite(actual):
        return 0.0
    if actual == 0.0:
        return 1.0 if predicted == 0.0 else 0.0
    relative_error = abs(predicted - actual) / abs(actual)
    return float(min(max(1.0 - relative_error, 0.0), 1.0))


def prediction_accuracy_series(
    predicted: Sequence[float], actual: Sequence[float]
) -> np.ndarray:
    """Per-element accuracy for aligned prediction/actual series."""
    predicted = np.asarray(predicted, dtype=np.float64)
    actual = np.asarray(actual, dtype=np.float64)
    if predicted.shape != actual.shape:
        raise ValueError("predicted and actual must have the same shape")
    return np.array([prediction_accuracy(p, a) for p, a in zip(predicted, actual)])


def mean_prediction_accuracy(predicted: Sequence[float], actual: Sequence[float]) -> float:
    """Mean of the per-interval accuracies (the paper's headline style metric)."""
    series = prediction_accuracy_series(predicted, actual)
    if series.size == 0:
        raise ValueError("need at least one prediction")
    return float(series.mean())


def mean_absolute_percentage_error(
    predicted: Sequence[float], actual: Sequence[float]
) -> float:
    """MAPE over elements with non-zero actuals (fraction, not percent)."""
    predicted = np.asarray(predicted, dtype=np.float64)
    actual = np.asarray(actual, dtype=np.float64)
    if predicted.shape != actual.shape:
        raise ValueError("predicted and actual must have the same shape")
    mask = actual != 0
    if not mask.any():
        raise ValueError("MAPE undefined when every actual value is zero")
    return float(np.mean(np.abs(predicted[mask] - actual[mask]) / np.abs(actual[mask])))


def root_mean_squared_error(predicted: Sequence[float], actual: Sequence[float]) -> float:
    predicted = np.asarray(predicted, dtype=np.float64)
    actual = np.asarray(actual, dtype=np.float64)
    if predicted.shape != actual.shape:
        raise ValueError("predicted and actual must have the same shape")
    if predicted.size == 0:
        raise ValueError("need at least one prediction")
    return float(np.sqrt(np.mean((predicted - actual) ** 2)))
