"""Group-level swiping-probability abstraction.

"We abstract multicast groups' swiping probabilities from the watching
duration stored in UDTs" — this module does exactly that: it gathers the
watch records that a group's members accumulated in their digital twins
over a history window and summarises them into a
:class:`GroupSwipingProfile` (per-category swipe probability, mean watched
fraction, engagement share, cumulative swiping distribution and mean
preference), which is everything the demand predictor needs to know about
the group's behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.behavior.preference import PreferenceVector
from repro.behavior.swiping import SwipeProbabilityEstimator
from repro.twin.attributes import PREFERENCE
from repro.twin.manager import DigitalTwinManager


@dataclass
class GroupSwipingProfile:
    """Abstracted behaviour of one multicast group."""

    group_id: int
    member_ids: List[int]
    swipe_probability: Dict[str, float]
    mean_watched_fraction: Dict[str, float]
    engagement_share: Dict[str, float]
    cumulative_swiping: Dict[str, float]
    mean_preference: PreferenceVector
    mean_watch_duration_s: float
    num_observations: int

    @property
    def categories(self) -> List[str]:
        return list(self.swipe_probability.keys())

    def most_watched_category(self) -> str:
        """Category with the highest engagement share (News in the paper's Fig. 3a)."""
        return max(self.engagement_share, key=self.engagement_share.get)

    def least_watched_category(self) -> str:
        return min(self.engagement_share, key=self.engagement_share.get)


def abstract_group_swiping(
    group_id: int,
    member_ids: Sequence[int],
    twins: DigitalTwinManager,
    categories: Sequence[str],
    start_s: Optional[float] = None,
    end_s: Optional[float] = None,
    laplace_smoothing: float = 1.0,
) -> GroupSwipingProfile:
    """Abstract a group's swiping profile from its members' digital twins.

    Parameters
    ----------
    group_id, member_ids:
        The multicast group to abstract.
    twins:
        The digital-twin manager holding every member's UDT.
    categories:
        The category taxonomy the profile is expressed over.
    start_s, end_s:
        History window; ``None`` means "all recorded history".
    """
    member_ids = list(member_ids)
    if not member_ids:
        raise ValueError("a group needs at least one member")
    estimator = SwipeProbabilityEstimator(categories, laplace_smoothing=laplace_smoothing)
    records = twins.watch_records(member_ids, start_s, end_s)
    estimator.observe_many(records)

    if records:
        mean_watch = float(np.mean([record.watch_duration_s for record in records]))
    else:
        mean_watch = 10.0

    # Mean of the members' latest preference snapshots.
    vectors = []
    for uid in member_ids:
        store = twins.twin(uid).store(PREFERENCE)
        vectors.append(store.latest_value())
    mean_vector = np.mean(np.vstack(vectors), axis=0)
    if mean_vector.shape[0] != len(categories) or not np.any(mean_vector):
        mean_vector = np.ones(len(categories))
    mean_preference = PreferenceVector(
        dict(zip(categories, mean_vector)), categories=tuple(categories)
    )

    return GroupSwipingProfile(
        group_id=group_id,
        member_ids=member_ids,
        swipe_probability=estimator.swipe_distribution(),
        mean_watched_fraction=estimator.watched_fraction_distribution(),
        engagement_share=estimator.category_watch_share(),
        cumulative_swiping=estimator.cumulative_distribution(),
        mean_preference=mean_preference,
        mean_watch_duration_s=mean_watch,
        num_observations=len(records),
    )
