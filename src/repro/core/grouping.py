"""Two-step multicast group construction (DDQN + K-means++).

Step one: a DDQN agent looks at permutation-invariant statistics of the
compressed user features and chooses the number of multicast groups ``K``
(trading intra-group similarity against per-group multicast-channel cost).
Step two: K-means++ partitions the users into those ``K`` groups.

The constructor also exposes fallback K-selection strategies (silhouette
sweep, fixed K) so the DDQN choice can be ablated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.cluster import KMeansPlusPlus, silhouette_score
from repro.rl.ddqn import DDQNAgent, DDQNConfig
from repro.rl.env import (
    GroupingEnvConfig,
    GroupingEnvironment,
    SnapshotReplayEnvironment,
    STATE_DIM,
    grouping_state,
)
from repro.rl.training import TrainingResult, train_agent


@dataclass
class GroupingResult:
    """A multicast grouping of a user population."""

    user_ids: List[int]
    labels: np.ndarray
    centroids: np.ndarray
    num_groups: int
    silhouette: float
    k_source: str = "ddqn"

    def __post_init__(self) -> None:
        self.labels = np.asarray(self.labels, dtype=int)
        if len(self.user_ids) != self.labels.shape[0]:
            raise ValueError("user_ids and labels must have the same length")

    def groups(self) -> Dict[int, List[int]]:
        """Mapping ``group_id -> member user ids``."""
        grouping: Dict[int, List[int]] = {}
        for user_id, label in zip(self.user_ids, self.labels):
            grouping.setdefault(int(label), []).append(user_id)
        return grouping

    def group_of(self, user_id: int) -> int:
        index = self.user_ids.index(user_id)
        return int(self.labels[index])

    def group_sizes(self) -> Dict[int, int]:
        return {gid: len(members) for gid, members in self.groups().items()}


class MulticastGroupConstructor:
    """Builds multicast groups from compressed user features."""

    def __init__(
        self,
        min_groups: int = 2,
        max_groups: int = 6,
        kmeans_restarts: int = 3,
        ddqn_hidden_sizes: Sequence[int] = (32, 32),
        similarity_weight: float = 1.0,
        resource_weight: float = 0.35,
        seed: int = 0,
    ) -> None:
        if min_groups < 1 or max_groups < min_groups:
            raise ValueError("invalid group-number range")
        self.env_config = GroupingEnvConfig(
            min_groups=min_groups,
            max_groups=max_groups,
            similarity_weight=similarity_weight,
            resource_weight=resource_weight,
            kmeans_restarts=max(kmeans_restarts - 1, 1),
            seed=seed,
        )
        self.kmeans_restarts = kmeans_restarts
        self.seed = seed
        self.agent = DDQNAgent(
            DDQNConfig(
                state_dim=STATE_DIM,
                num_actions=self.env_config.num_actions,
                hidden_sizes=tuple(ddqn_hidden_sizes),
                min_replay_size=32,
                batch_size=32,
                seed=seed,
            )
        )
        self.trained = False
        # Imported lazily: repro.sim pulls in modules that import this one.
        from repro.sim.rng import legacy_stream

        self._rng = legacy_stream(seed)
        self._last_k = 0
        self._last_quality = 0.0

    # -------------------------------------------------------------- training
    def train(
        self,
        snapshots: Optional[Sequence[np.ndarray]] = None,
        episodes: int = 25,
    ) -> TrainingResult:
        """Train the DDQN grouping-number selector.

        ``snapshots`` are compressed-feature matrices observed in past
        reservation intervals; when omitted, the synthetic snapshot
        generator of :class:`GroupingEnvironment` is used.
        """
        if snapshots is not None and len(snapshots):
            env = SnapshotReplayEnvironment(snapshots=list(snapshots), config=self.env_config)
        else:
            env = GroupingEnvironment(self.env_config)
        result = train_agent(self.agent, env, episodes=episodes, rng=self._rng)
        self.trained = True
        return result

    # ----------------------------------------------------------- K selection
    def select_k_ddqn(self, features: np.ndarray) -> int:
        """Grouping number chosen by the (trained) DDQN agent."""
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        state = grouping_state(
            features, self._last_k, self._last_quality, self.env_config.max_groups
        )
        action = self.agent.select_action(state, greedy=True)
        k = self.env_config.action_to_k(action)
        return min(k, features.shape[0])

    def select_k_silhouette(self, features: np.ndarray) -> int:
        """Exhaustive silhouette sweep over the allowed K range (fallback/ablation)."""
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        best_k = self.env_config.min_groups
        best_score = -np.inf
        for k in range(self.env_config.min_groups, self.env_config.max_groups + 1):
            if k > features.shape[0]:
                break
            if k == 1:
                score = 0.0
            else:
                result = KMeansPlusPlus(k, restarts=self.kmeans_restarts).fit(
                    features, rng=self._rng
                )
                score = silhouette_score(features, result.labels)
            cost = self.env_config.resource_weight * k / self.env_config.max_groups
            score = self.env_config.similarity_weight * score - cost
            if score > best_score:
                best_score = score
                best_k = k
        return best_k

    # ---------------------------------------------------------- construction
    def construct(
        self,
        features: np.ndarray,
        user_ids: Sequence[int],
        num_groups: Optional[int] = None,
        k_strategy: str = "ddqn",
    ) -> GroupingResult:
        """Cluster ``features`` (aligned with ``user_ids``) into multicast groups.

        ``k_strategy`` selects how the grouping number is chosen:
        ``"ddqn"`` (the paper's method), ``"silhouette"`` (sweep), or
        ``"fixed"`` (requires ``num_groups``).
        """
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        user_ids = list(user_ids)
        if features.shape[0] != len(user_ids):
            raise ValueError("features and user_ids must have the same length")
        if k_strategy not in ("ddqn", "silhouette", "fixed"):
            raise ValueError("k_strategy must be 'ddqn', 'silhouette' or 'fixed'")

        if k_strategy == "fixed":
            if num_groups is None:
                raise ValueError("num_groups is required when k_strategy='fixed'")
            k = num_groups
        elif k_strategy == "silhouette":
            k = self.select_k_silhouette(features)
        else:
            k = self.select_k_ddqn(features)
        k = int(min(max(k, 1), features.shape[0]))

        if k == 1:
            labels = np.zeros(features.shape[0], dtype=int)
            centroids = features.mean(axis=0, keepdims=True)
            quality = 0.0
        else:
            result = KMeansPlusPlus(k, restarts=self.kmeans_restarts).fit(features, rng=self._rng)
            labels = result.labels
            centroids = result.centroids
            quality = silhouette_score(features, labels)

        self._last_k = k
        self._last_quality = quality
        return GroupingResult(
            user_ids=user_ids,
            labels=labels,
            centroids=centroids,
            num_groups=k,
            silhouette=float(quality),
            k_source=k_strategy,
        )
