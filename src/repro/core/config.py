"""Configuration of the DT-assisted prediction scheme."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class SchemeConfig:
    """Hyper-parameters of the end-to-end prediction scheme.

    The defaults are sized so the full pipeline (CNN training, DDQN
    training, per-interval prediction) runs in a few seconds in the test
    suite while still exercising every component the paper describes.
    """

    # 1D-CNN feature compression.
    feature_steps: int = 32
    compressed_dim: int = 8
    cnn_epochs: int = 12
    cnn_learning_rate: float = 1e-3

    # Two-step multicast group construction.
    min_groups: int = 2
    max_groups: int = 6
    ddqn_episodes: int = 25
    ddqn_hidden_sizes: tuple = (32, 32)
    kmeans_restarts: int = 3

    # Group-based demand prediction.
    mc_rollouts: int = 12
    recommendation_size: int = 10
    history_intervals: int = 1
    swipe_laplace_smoothing: float = 1.0

    # Warm-up before the scheme starts predicting.
    warmup_intervals: int = 2

    seed: int = 0

    def __post_init__(self) -> None:
        if self.feature_steps <= 0 or self.compressed_dim <= 0:
            raise ValueError("feature_steps and compressed_dim must be positive")
        if self.cnn_epochs <= 0:
            raise ValueError("cnn_epochs must be positive")
        if self.min_groups < 1 or self.max_groups < self.min_groups:
            raise ValueError("invalid group-number range")
        if self.ddqn_episodes <= 0:
            raise ValueError("ddqn_episodes must be positive")
        if self.mc_rollouts <= 0:
            raise ValueError("mc_rollouts must be positive")
        if self.recommendation_size <= 0:
            raise ValueError("recommendation_size must be positive")
        if self.history_intervals <= 0 or self.warmup_intervals <= 0:
            raise ValueError("history_intervals and warmup_intervals must be positive")
