"""End-to-end DT-assisted resource demand prediction scheme.

:class:`DTResourcePredictionScheme` wires the whole pipeline of Fig. 2
together and drives it against the ground-truth simulator, interval by
interval:

1. a short warm-up phase fills the digital twins and trains the 1D-CNN
   compressor and the DDQN grouping-number selector on the collected data,
2. before every subsequent reservation interval the scheme compresses the
   twins' time series, constructs multicast groups, abstracts each group's
   swiping profile and predicts its radio and computing demand,
3. the simulator then plays the interval out under that grouping, and the
   predicted demand is scored against the actual usage.

The per-interval records and the accuracy summary are what the benchmark
harnesses print (Fig. 3(b) and the headline 95.04 % figure).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.core.accuracy import (
    mean_prediction_accuracy,
    prediction_accuracy,
    prediction_accuracy_series,
)
from repro.core.config import SchemeConfig
from repro.core.demand import DemandPredictorConfig, GroupDemandPrediction, GroupDemandPredictor
from repro.core.features import CompressorConfig, UDTFeatureCompressor
from repro.core.grouping import GroupingResult, MulticastGroupConstructor
from repro.core.swiping import GroupSwipingProfile, abstract_group_swiping
from repro.sim.simulator import IntervalResult, StreamingSimulator


@dataclass
class IntervalEvaluation:
    """Prediction versus actual usage for one reservation interval."""

    interval_index: int
    grouping: GroupingResult
    profiles: Dict[int, GroupSwipingProfile]
    predictions: Dict[int, GroupDemandPrediction]
    actual: IntervalResult
    predicted_radio_blocks: float
    actual_radio_blocks: float
    predicted_computing_cycles: float
    actual_computing_cycles: float
    #: Per-cell predicted/actual radio demand (handover mode only; empty in
    #: boundary mode).  ``profiles`` / ``predictions`` are keyed by the
    #: controller's scoped (per-cell) group ids there, and ``cell_of_group``
    #: maps those ids to serving cells.
    predicted_radio_by_cell: Dict[int, float] = field(default_factory=dict)
    actual_radio_by_cell: Dict[int, float] = field(default_factory=dict)
    cell_of_group: Dict[int, int] = field(default_factory=dict)

    @property
    def radio_accuracy(self) -> float:
        return prediction_accuracy(self.predicted_radio_blocks, self.actual_radio_blocks)

    @property
    def computing_accuracy(self) -> float:
        return prediction_accuracy(
            self.predicted_computing_cycles, self.actual_computing_cycles
        )

    @property
    def radio_accuracy_by_cell(self) -> Dict[int, float]:
        """Per-cell prediction accuracy over this interval (handover mode)."""
        cells = set(self.predicted_radio_by_cell) | set(self.actual_radio_by_cell)
        return {
            cell_id: prediction_accuracy(
                self.predicted_radio_by_cell.get(cell_id, 0.0),
                self.actual_radio_by_cell.get(cell_id, 0.0),
            )
            for cell_id in sorted(cells)
        }

    def to_dict(self) -> dict:
        """JSON-canonical export of this interval's prediction-vs-actual record.

        The one per-interval shape every exporter shares:
        :meth:`EvaluationResult.to_dict`, the analysis runners'
        ``Fig3Result.to_dict`` / ``demand_rows`` and the scenario runner's
        ``RunResult`` all consume it, so a record written by any entry point
        compares equal to the same interval written by any other.  Mapping
        keys are strings and every value a plain Python scalar/container, so
        ``json.loads(json.dumps(d)) == d`` holds.
        """
        return {
            "interval_index": int(self.interval_index),
            "num_groups": int(self.grouping.num_groups),
            "group_sizes": {
                str(gid): int(size)
                for gid, size in sorted(self.grouping.group_sizes().items())
            },
            "predicted_radio_blocks": float(self.predicted_radio_blocks),
            "actual_radio_blocks": float(self.actual_radio_blocks),
            "radio_accuracy": float(self.radio_accuracy),
            "predicted_computing_cycles": float(self.predicted_computing_cycles),
            "actual_computing_cycles": float(self.actual_computing_cycles),
            "computing_accuracy": float(self.computing_accuracy),
            "predicted_radio_by_cell": {
                str(cell): float(value)
                for cell, value in sorted(self.predicted_radio_by_cell.items())
            },
            "actual_radio_by_cell": {
                str(cell): float(value)
                for cell, value in sorted(self.actual_radio_by_cell.items())
            },
        }


@dataclass
class EvaluationResult:
    """Aggregate outcome of running the scheme over several intervals."""

    intervals: List[IntervalEvaluation] = field(default_factory=list)

    @property
    def num_intervals(self) -> int:
        return len(self.intervals)

    def to_dict(self) -> dict:
        """Plain-dictionary export (per-interval series plus summary) for JSON dumps.

        Per-interval records are exactly :meth:`IntervalEvaluation.to_dict`
        and the whole payload is JSON-canonical (string mapping keys, plain
        scalars): ``json.loads(json.dumps(d)) == d``.
        """
        return {
            "intervals": [e.to_dict() for e in self.intervals],
            "summary": (
                {
                    "mean_radio_accuracy": float(self.mean_radio_accuracy()),
                    "max_radio_accuracy": float(self.max_radio_accuracy()),
                    "mean_computing_accuracy": float(self.mean_computing_accuracy()),
                    "mean_radio_accuracy_by_cell": {
                        str(cell): float(value)
                        for cell, value in sorted(self.mean_radio_accuracy_by_cell().items())
                    },
                }
                if self.intervals
                else {}
            ),
        }

    def predicted_radio_series(self) -> np.ndarray:
        return np.array([e.predicted_radio_blocks for e in self.intervals])

    def actual_radio_series(self) -> np.ndarray:
        return np.array([e.actual_radio_blocks for e in self.intervals])

    def predicted_computing_series(self) -> np.ndarray:
        return np.array([e.predicted_computing_cycles for e in self.intervals])

    def actual_computing_series(self) -> np.ndarray:
        return np.array([e.actual_computing_cycles for e in self.intervals])

    def radio_accuracy_series(self) -> np.ndarray:
        return np.array([e.radio_accuracy for e in self.intervals])

    # --------------------------------------------------- per-cell series
    def cells(self) -> List[int]:
        """Cells that carried predicted or actual demand (handover mode)."""
        cell_ids: set = set()
        for e in self.intervals:
            cell_ids.update(e.predicted_radio_by_cell)
            cell_ids.update(e.actual_radio_by_cell)
        return sorted(cell_ids)

    def predicted_radio_series_by_cell(self) -> Dict[int, np.ndarray]:
        """Per-cell predicted radio demand, one aligned series per cell."""
        return {
            cell_id: np.array(
                [e.predicted_radio_by_cell.get(cell_id, 0.0) for e in self.intervals]
            )
            for cell_id in self.cells()
        }

    def actual_radio_series_by_cell(self) -> Dict[int, np.ndarray]:
        """Per-cell actual radio demand, one aligned series per cell."""
        return {
            cell_id: np.array(
                [e.actual_radio_by_cell.get(cell_id, 0.0) for e in self.intervals]
            )
            for cell_id in self.cells()
        }

    def radio_accuracy_series_by_cell(self) -> Dict[int, np.ndarray]:
        """Per-cell predicted-vs-actual accuracy series (handover mode)."""
        predicted = self.predicted_radio_series_by_cell()
        actual = self.actual_radio_series_by_cell()
        return {
            cell_id: prediction_accuracy_series(predicted[cell_id], actual[cell_id])
            for cell_id in predicted
        }

    def mean_radio_accuracy_by_cell(self) -> Dict[int, float]:
        return {
            cell_id: float(series.mean())
            for cell_id, series in self.radio_accuracy_series_by_cell().items()
        }

    def computing_accuracy_series(self) -> np.ndarray:
        return np.array([e.computing_accuracy for e in self.intervals])

    def mean_radio_accuracy(self) -> float:
        if not self.intervals:
            raise ValueError("no intervals evaluated")
        return mean_prediction_accuracy(
            self.predicted_radio_series(), self.actual_radio_series()
        )

    def max_radio_accuracy(self) -> float:
        if not self.intervals:
            raise ValueError("no intervals evaluated")
        return float(self.radio_accuracy_series().max())

    def mean_computing_accuracy(self) -> float:
        if not self.intervals:
            raise ValueError("no intervals evaluated")
        return mean_prediction_accuracy(
            self.predicted_computing_series(), self.actual_computing_series()
        )


class DTResourcePredictionScheme:
    """The paper's DT-assisted resource demand prediction scheme, end to end."""

    def __init__(
        self,
        simulator: StreamingSimulator,
        config: Optional[SchemeConfig] = None,
        k_strategy: str = "ddqn",
    ) -> None:
        if k_strategy not in ("ddqn", "silhouette", "fixed"):
            raise ValueError("k_strategy must be 'ddqn', 'silhouette' or 'fixed'")
        self.simulator = simulator
        self.config = config if config is not None else SchemeConfig()
        self.k_strategy = k_strategy
        sim_config = simulator.config

        num_channels = sum(
            spec.dimension for spec in simulator.twins.attributes.values()
        )
        self.compressor = UDTFeatureCompressor(
            CompressorConfig(
                num_steps=self.config.feature_steps,
                num_channels=num_channels,
                compressed_dim=self.config.compressed_dim,
                epochs=self.config.cnn_epochs,
                learning_rate=self.config.cnn_learning_rate,
                seed=self.config.seed,
            )
        )
        # Small populations cannot support the configured group-number range;
        # clamp it so the scheme still works down to a single user.
        max_groups = max(min(self.config.max_groups, sim_config.num_users), 1)
        min_groups = min(self.config.min_groups, max_groups)
        self.constructor = MulticastGroupConstructor(
            min_groups=min_groups,
            max_groups=max_groups,
            kmeans_restarts=self.config.kmeans_restarts,
            ddqn_hidden_sizes=self.config.ddqn_hidden_sizes,
            seed=self.config.seed,
        )
        self.demand_predictor = GroupDemandPredictor(
            simulator.catalog,
            DemandPredictorConfig(
                interval_s=sim_config.interval_s,
                rb_bandwidth_hz=sim_config.rb_bandwidth_hz,
                stream_bandwidth_hz=sim_config.stream_bandwidth_hz,
                implementation_loss=sim_config.implementation_loss,
                swipe_gap_s=sim_config.swipe_gap_s,
                recommendation_popularity_weight=sim_config.recommendation_popularity_weight,
                cycles_per_pixel=sim_config.cycles_per_pixel,
                mc_rollouts=self.config.mc_rollouts,
                seed=self.config.seed,
            ),
        )
        self.fixed_k: Optional[int] = None
        self.warmed_up = False
        self._warmup_snapshots: List[np.ndarray] = []
        #: Whether this scheme owns the simulator's worker-pool lifetime
        #: (set when the scheme is used as a context manager).
        self._owns_simulator = False
        #: Scoped-group → cell map of the most recent prediction (written by
        #: predict_next_interval, consumed by step; empty in boundary mode).
        self._last_cell_of_group: Dict[int, int] = {}
        #: Accumulated wall-time of the prediction pipeline (warm-up twin
        #: tensors + per-step predictions), exported by the scenario runner
        #: as ``RunResult.timing["predict_s"]``.
        self.timing: Dict[str, float] = {"predict_s": 0.0}

    # ------------------------------------------------------------- lifecycle
    def __enter__(self) -> "DTResourcePredictionScheme":
        """Context-manager entry: the scheme adopts the simulator's lifetime.

        Under ``channel_draw_mode="grouped"`` with ``playback_workers > 1``
        the ground-truth simulator lazily starts a process pool; running the
        scheme inside a ``with`` block guarantees the pool is shut down when
        the evaluation finishes::

            with DTResourcePredictionScheme(simulator, config) as scheme:
                result = scheme.run(num_intervals=5)
        """
        self._owns_simulator = True
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        if self._owns_simulator:
            self.simulator.close()
            self._owns_simulator = False

    # --------------------------------------------------------------- warm-up
    def _round_robin_grouping(self, num_groups: int) -> Dict[int, List[int]]:
        user_ids = self.simulator.user_ids()
        num_groups = min(max(num_groups, 1), len(user_ids))
        grouping: Dict[int, List[int]] = {gid: [] for gid in range(num_groups)}
        for index, uid in enumerate(user_ids):
            grouping[index % num_groups].append(uid)
        return grouping

    def _history_window(self) -> tuple:
        """``(start_s, end_s)`` of the twin-data window used for the next prediction."""
        interval_s = self.simulator.config.interval_s
        end_s = self.simulator.clock.current_interval * interval_s
        start_s = max(end_s - self.config.history_intervals * interval_s, 0.0)
        return start_s, end_s

    def warm_up(self) -> None:
        """Fill the digital twins and train the learning components.

        Runs ``warmup_intervals`` reservation intervals under a simple
        round-robin grouping, then fits the 1D-CNN compressor on the
        collected twin data and trains the DDQN grouping-number selector on
        the compressed snapshots.
        """
        if self.warmed_up:
            return
        interval_s = self.simulator.config.interval_s
        for _ in range(self.config.warmup_intervals):
            grouping = self._round_robin_grouping(self.config.min_groups)
            self.simulator.run_interval(grouping)
            end_s = self.simulator.clock.current_interval * interval_s
            start_s = end_s - interval_s
            # Fresh one-interval windows: served by the hybrid batched
            # resample (feature_tensor's default path), which batches every
            # row the per-user cache cannot prove unchanged.
            tensor_started = time.perf_counter()
            tensor = self.simulator.twins.feature_tensor(
                start_s,
                end_s,
                num_steps=self.config.feature_steps,
                user_ids=self.simulator.user_ids(),
            )
            self.timing["predict_s"] += time.perf_counter() - tensor_started
            self._warmup_snapshots.append(tensor)

        training_tensor = np.concatenate(self._warmup_snapshots, axis=0)
        self.compressor.fit(training_tensor)
        compressed_snapshots = [
            self.compressor.compress(tensor) for tensor in self._warmup_snapshots
        ]
        if self.k_strategy == "ddqn":
            self.constructor.train(
                snapshots=compressed_snapshots, episodes=self.config.ddqn_episodes
            )
        self.warmed_up = True

    # ------------------------------------------------------------ prediction
    def predict_next_interval(self) -> tuple:
        """Construct groups and predict their demand for the upcoming interval.

        Returns ``(grouping_result, profiles, predictions)`` without running
        the simulator, so callers can inspect the prediction before the
        interval plays out.

        Under ``controller_mode="handover"`` the logical groups are first
        mapped through the controller's current associations
        (:meth:`~repro.sim.simulator.StreamingSimulator.preview_scoped_grouping`),
        and ``profiles`` / ``predictions`` are keyed by the *scoped*
        (per-cell) group ids the simulator will actually play — a multicast
        channel, and hence the worst-member rule the demand prediction
        models, spans a single base station.  In boundary mode the scoped
        ids equal the logical ids and nothing changes.
        """
        if not self.warmed_up:
            raise RuntimeError("call warm_up() before predicting")
        start_s, end_s = self._history_window()
        user_ids = self.simulator.user_ids()
        tensor = self.simulator.twins.feature_tensor(
            start_s, end_s, num_steps=self.config.feature_steps, user_ids=user_ids
        )
        features = self.compressor.compress(tensor)
        grouping = self.constructor.construct(
            features,
            user_ids,
            num_groups=self.fixed_k,
            k_strategy=self.k_strategy,
        )
        scoped_groups, cell_of_group = self.simulator.preview_scoped_grouping(
            grouping.groups()
        )
        # Stashed for step(): associations only change through handover
        # events applied at the end of the next interval, so this preview is
        # exactly the scoping run_interval will play.
        self._last_cell_of_group = cell_of_group
        categories = list(self.simulator.config.categories)
        profiles: Dict[int, GroupSwipingProfile] = {}
        predictions: Dict[int, GroupDemandPrediction] = {}
        for group_id, member_ids in scoped_groups.items():
            profile = abstract_group_swiping(
                group_id,
                member_ids,
                self.simulator.twins,
                categories,
                start_s=start_s,
                end_s=end_s,
                laplace_smoothing=self.config.swipe_laplace_smoothing,
            )
            profiles[group_id] = profile
            predictions[group_id] = self.demand_predictor.predict_group(
                profile, self.simulator.twins, start_s, end_s
            )
        return grouping, profiles, predictions

    def step(self) -> IntervalEvaluation:
        """Predict, run one interval, and score the prediction.

        In handover mode the per-cell split of the prediction (scoped group
        → serving cell) is captured before the interval runs, and the
        evaluation carries per-cell predicted/actual radio demand alongside
        the population totals.
        """
        predict_started = time.perf_counter()
        grouping, profiles, predictions = self.predict_next_interval()
        self.timing["predict_s"] += time.perf_counter() - predict_started
        cell_of_group = self._last_cell_of_group
        if self.simulator.placement is not None:
            # Predictive placement packs against exactly the per-group
            # computing demand the twin predicted for this interval
            # (predictions are keyed by the scoped group ids the interval
            # will play).
            self.simulator.placement.set_forecast(
                {gid: p.computing_cycles for gid, p in predictions.items()}
            )
        actual = self.simulator.run_interval(grouping.groups())
        predicted_radio = GroupDemandPredictor.total_radio_blocks(predictions)
        predicted_compute = GroupDemandPredictor.total_computing_cycles(predictions)
        return IntervalEvaluation(
            interval_index=actual.interval_index,
            grouping=grouping,
            profiles=profiles,
            predictions=predictions,
            actual=actual,
            predicted_radio_blocks=predicted_radio,
            actual_radio_blocks=actual.total_resource_blocks,
            predicted_computing_cycles=predicted_compute,
            actual_computing_cycles=actual.total_computing_cycles,
            predicted_radio_by_cell=GroupDemandPredictor.radio_blocks_by_cell(
                predictions, cell_of_group
            ),
            actual_radio_by_cell=dict(actual.rb_demand_by_cell),
            cell_of_group=cell_of_group,
        )

    def run(self, num_intervals: Optional[int] = None) -> EvaluationResult:
        """Warm up (if needed) and evaluate the scheme over ``num_intervals``."""
        self.warm_up()
        remaining = (
            num_intervals
            if num_intervals is not None
            else self.simulator.config.num_intervals - self.config.warmup_intervals
        )
        if remaining <= 0:
            raise ValueError("no intervals left to evaluate after warm-up")
        result = EvaluationResult()
        for _ in range(remaining):
            result.intervals.append(self.step())
        return result
