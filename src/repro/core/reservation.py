"""Resource reservation from predicted demand.

The paper closes with: "For future work, we will investigate how to
effectively reserve radio and computing resources based on the predicted
multicast groups' resource demand."  This module implements that step so the
prediction scheme can actually drive a reservation loop:

* a :class:`ReservationPolicy` turns a per-group demand prediction into a
  reservation request (head-room margins, quantisation to whole resource
  blocks, per-group floors),
* an :class:`AdmissionController` fits the requests into the base station's
  resource-block budget (proportional scale-down when oversubscribed), and
* a :class:`ReservationPlanner` runs the loop against the simulator and
  audits over-/under-provisioning per interval.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.core.demand import GroupDemandPrediction
from repro.net.resources import IntervalUsage, ResourceGrid


@dataclass
class ReservationPolicy:
    """Turns predicted demand into reservation requests.

    ``margin`` is multiplicative head-room above the prediction (1.1 = +10 %),
    ``floor_blocks`` is the minimum reservation per active multicast group
    (a group always needs a control channel), and ``quantise`` rounds the
    request up to whole resource blocks, matching how schedulers allocate.
    """

    margin: float = 1.1
    floor_blocks: float = 1.0
    quantise: bool = True

    def __post_init__(self) -> None:
        if self.margin < 1.0:
            raise ValueError("margin must be at least 1.0 (no negative head-room)")
        if self.floor_blocks < 0.0:
            raise ValueError("floor_blocks must be non-negative")

    def blocks_request(self, blocks: float) -> float:
        """Apply margin / floor / quantisation to a raw block demand.

        Shared by :meth:`radio_request` (per-group predictions) and the
        horizon reservation planner (per-cell aggregate demand).
        """
        if not np.isfinite(blocks):
            # Predicted outage: reserve the floor and let the scheduler
            # fall back to the lowest representation.
            blocks = self.floor_blocks
        request = max(blocks * self.margin, self.floor_blocks)
        if self.quantise:
            request = float(math.ceil(request))
        return request

    def radio_request(self, prediction: GroupDemandPrediction) -> float:
        """Resource blocks to reserve for one group."""
        return self.blocks_request(prediction.radio_resource_blocks)

    def compute_request(self, prediction: GroupDemandPrediction) -> float:
        """CPU cycles to reserve for one group's transcoding."""
        return prediction.computing_cycles * self.margin

    def radio_requests(
        self, predictions: Mapping[int, GroupDemandPrediction]
    ) -> Dict[int, float]:
        return {gid: self.radio_request(p) for gid, p in predictions.items()}

    def compute_requests(
        self, predictions: Mapping[int, GroupDemandPrediction]
    ) -> Dict[int, float]:
        return {gid: self.compute_request(p) for gid, p in predictions.items()}


@dataclass
class AdmissionResult:
    """Outcome of fitting reservation requests into a budget."""

    granted: Dict[int, float]
    requested: Dict[int, float]
    scaled_down: bool

    @property
    def total_granted(self) -> float:
        return float(sum(self.granted.values()))

    @property
    def total_requested(self) -> float:
        return float(sum(self.requested.values()))


class AdmissionController:
    """Fits per-group reservation requests into a fixed resource-block budget.

    When the total request exceeds the budget, every group is scaled down
    proportionally (never below zero); otherwise requests are granted as-is.
    """

    def __init__(self, total_blocks: float) -> None:
        if total_blocks <= 0:
            raise ValueError("total_blocks must be positive")
        self.total_blocks = float(total_blocks)

    def admit(self, requests: Mapping[int, float]) -> AdmissionResult:
        requests = {gid: max(float(blocks), 0.0) for gid, blocks in requests.items()}
        total = sum(requests.values())
        if total <= self.total_blocks or total == 0.0:
            return AdmissionResult(granted=dict(requests), requested=dict(requests), scaled_down=False)
        scale = self.total_blocks / total
        granted = {gid: blocks * scale for gid, blocks in requests.items()}
        return AdmissionResult(granted=granted, requested=dict(requests), scaled_down=True)


@dataclass
class ReservationReport:
    """Audit of a reservation run."""

    intervals: List[IntervalUsage] = field(default_factory=list)
    scaled_down_intervals: int = 0

    @property
    def num_intervals(self) -> int:
        return len(self.intervals)

    def mean_over_provisioning(self) -> float:
        if not self.intervals:
            return 0.0
        return float(np.mean([usage.over_provisioned_blocks() for usage in self.intervals]))

    def mean_under_provisioning(self) -> float:
        if not self.intervals:
            return 0.0
        return float(np.mean([usage.under_provisioned_blocks() for usage in self.intervals]))

    def under_provisioned_fraction(self) -> float:
        """Fraction of intervals with any under-provisioned group."""
        if not self.intervals:
            return 0.0
        shortfalls = [usage.under_provisioned_blocks() > 1e-9 for usage in self.intervals]
        return float(np.mean(shortfalls))


class ReservationPlanner:
    """Runs the predict → reserve → observe → audit loop against the simulator.

    The planner drives a warmed-up
    :class:`~repro.core.pipeline.DTResourcePredictionScheme`: each interval it
    predicts per-group demand, applies the reservation policy, admits the
    requests against the base-station budget, lets the simulator play the
    interval out under the predicted grouping, and records reserved-versus-
    used resource blocks.
    """

    def __init__(
        self,
        scheme,
        policy: Optional[ReservationPolicy] = None,
        total_blocks: Optional[float] = None,
    ) -> None:
        self.scheme = scheme
        self.policy = policy if policy is not None else ReservationPolicy()
        budget = (
            total_blocks
            if total_blocks is not None
            else float(scheme.simulator.config.num_resource_blocks)
        )
        self.admission = AdmissionController(budget)
        self.grid = ResourceGrid(budget)

    def run(self, num_intervals: int) -> ReservationReport:
        """Run the reservation loop for ``num_intervals`` reservation intervals."""
        if num_intervals <= 0:
            raise ValueError("num_intervals must be positive")
        self.scheme.warm_up()
        report = ReservationReport()
        for _ in range(num_intervals):
            grouping, _, predictions = self.scheme.predict_next_interval()
            requests = self.policy.radio_requests(predictions)
            admitted = self.admission.admit(requests)
            if admitted.scaled_down:
                report.scaled_down_intervals += 1

            actual = self.scheme.simulator.run_interval(grouping.groups())
            used = {
                gid: usage.resource_blocks
                for gid, usage in actual.usage_by_group.items()
                if np.isfinite(usage.resource_blocks)
            }
            usage_record = self.grid.record_interval(
                actual.interval_index, admitted.granted, used
            )
            report.intervals.append(usage_record)
        return report
