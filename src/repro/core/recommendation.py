"""Per-group video recommendation.

"The recommended videos are updated based on video popularity and users'
preferences."  The recommender scores every catalog video as a convex
combination of its global popularity and the group's preference for its
category, and returns the top-N per group.  The same popularity-preference
mixture also defines the sampling distribution the demand predictor rolls
its Monte-Carlo futures from, so recommendation and demand prediction stay
consistent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.behavior.preference import PreferenceVector
from repro.video.catalog import VideoCatalog


@dataclass
class GroupRecommendation:
    """Recommended videos for one multicast group."""

    group_id: int
    video_ids: List[int]
    scores: Dict[int, float]

    def top(self, count: int) -> List[int]:
        if count <= 0:
            raise ValueError("count must be positive")
        return self.video_ids[:count]


class VideoRecommender:
    """Popularity-and-preference video recommendation."""

    def __init__(
        self,
        catalog: VideoCatalog,
        popularity_weight: float = 0.5,
    ) -> None:
        if not 0.0 <= popularity_weight <= 1.0:
            raise ValueError("popularity_weight must be in [0, 1]")
        self.catalog = catalog
        self.popularity_weight = popularity_weight

    def sampling_probabilities(self, preference: PreferenceVector) -> tuple:
        """``(video_ids, probabilities)`` aligned arrays for one group.

        The per-video popularity/category arrays come from the catalog's
        version-keyed cache (:meth:`VideoCatalog.sampling_arrays`), shared
        with the ground-truth simulator.
        """
        video_ids, pop, category_indices, categories = self.catalog.sampling_arrays()
        weights = np.array([preference.weight(category) for category in categories])
        pref = weights[category_indices]
        if pref.sum() > 0:
            pref = pref / pref.sum()
        mixture = self.popularity_weight * pop + (1.0 - self.popularity_weight) * pref
        total = mixture.sum()
        if total <= 0:
            mixture = np.ones(video_ids.shape[0]) / video_ids.shape[0]
        else:
            mixture = mixture / total
        return video_ids, mixture

    def sampling_distribution(self, preference: PreferenceVector) -> Dict[int, float]:
        """Probability of each catalog video being served to a group.

        The distribution mixes global popularity with the group's category
        preference; it always sums to one.
        """
        video_ids, mixture = self.sampling_probabilities(preference)
        return dict(zip(video_ids.tolist(), mixture))

    def recommend(
        self,
        group_id: int,
        preference: PreferenceVector,
        count: int = 10,
    ) -> GroupRecommendation:
        """Top-``count`` recommended videos for a group."""
        if count <= 0:
            raise ValueError("count must be positive")
        scores = self.sampling_distribution(preference)
        ordered = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
        video_ids = [vid for vid, _ in ordered[:count]]
        return GroupRecommendation(
            group_id=group_id,
            video_ids=video_ids,
            scores={vid: float(scores[vid]) for vid in video_ids},
        )

    def recommend_for_groups(
        self,
        preferences: Dict[int, PreferenceVector],
        count: int = 10,
    ) -> Dict[int, GroupRecommendation]:
        return {
            group_id: self.recommend(group_id, preference, count)
            for group_id, preference in preferences.items()
        }
