"""Declarative scenario specifications.

A :class:`ScenarioSpec` is a frozen dataclass tree describing *what* a
workload looks like — topology (cell grid and budgets), population (size
and churn phases), content catalog, mobility, controller/handover knobs,
engine selection and a timeline of scripted :class:`ScenarioEvent`\\ s —
without saying anything about *how* to run it.  The spec is pure data:

* :func:`repro.scenario.compiler.compile_spec` lowers it deterministically
  to a :class:`~repro.sim.config.SimulationConfig` (plus, for scheme-mode
  scenarios, a :class:`~repro.core.config.SchemeConfig`), and
* :class:`repro.scenario.runner.ScenarioRunner` drives the compiled
  scenario and returns a typed, JSON-serializable ``RunResult``.

Every entry point (CLI, examples, benchmarks, analysis runners) builds on
this one spec → compile → run pipeline; named specs live in
:mod:`repro.scenario.registry`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, fields
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from repro.video.categories import DEFAULT_CATEGORIES


# ------------------------------------------------------------------ sub-specs
@dataclass(frozen=True)
class TopologySpec:
    """Cell grid, per-cell radio budgets and the area they cover."""

    num_cells: int = 2
    area_width_m: float = 1000.0
    area_height_m: float = 800.0
    tx_power_dbm: float = 43.0
    rb_budget_blocks: int = 100
    rb_bandwidth_hz: float = 180e3
    stream_bandwidth_hz: float = 1.8e6
    implementation_loss: float = 0.9
    channel_sample_period_s: float = 5.0


@dataclass(frozen=True)
class ChurnPhase:
    """Scripted arrivals/departures applied over a range of run steps.

    Active for run steps ``start_interval <= step < end_interval`` (0-based
    indices into the evaluated/played intervals).  Departing users are
    picked by a dedicated scenario stream derived from the spec seed, so a
    phase is a pure function of the spec.
    """

    start_interval: int
    end_interval: int
    arrivals_per_interval: int = 0
    departures_per_interval: int = 0
    arrival_favourite: Optional[str] = None


@dataclass(frozen=True)
class PopulationSpec:
    """Who is on the campus: size, preference skew and churn phases."""

    num_users: int = 30
    favourite_category: Optional[str] = "News"
    favourite_user_fraction: float = 0.6
    favourite_boost: float = 3.0
    preference_concentration: float = 0.7
    preference_learning_rate: float = 0.2
    churn_phases: Tuple[ChurnPhase, ...] = ()


@dataclass(frozen=True)
class CatalogSpec:
    """The short-video catalog and its popularity dynamics."""

    num_videos: int = 120
    categories: Tuple[str, ...] = DEFAULT_CATEGORIES
    zipf_exponent: float = 1.0
    recommendation_popularity_weight: float = 0.5
    popularity_update_rate: float = 0.1
    swipe_gap_s: float = 0.5


@dataclass(frozen=True)
class MobilitySpec:
    """Campus map the trajectory mobility model walks."""

    num_buildings: int = 18


@dataclass(frozen=True)
class ControllerAppSpec:
    """One controller app in :attr:`ControllerSpec.apps`.

    ``name`` is the app's registry key (see :func:`repro.net.apps.app_names`)
    and ``params`` its per-app knobs; unknown names or params fail fast at
    spec construction / app build time.
    """

    name: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", dict(self.params))


@dataclass(frozen=True)
class ControllerSpec:
    """RAN-controller mode, handover / load-balancing knobs and app stack.

    ``apps`` selects the controller-app stack for ``mode="handover"`` (see
    :mod:`repro.net.apps`): a tuple of :class:`ControllerAppSpec` entries
    (bare names and ``{"name", "params"}`` mappings are coerced).  The
    default empty tuple compiles to the built-in default stack
    (``a3_handover``, ``cell_scoping``, ``prorata_rebalance``), which is
    bit-identical to the historical monolithic controller.  The
    ``handover_*`` knobs are the ``a3_handover`` app's inherited defaults
    and the ``cell_*`` knobs those of the rebalance apps; per-app
    ``params`` override them.
    """

    mode: str = "boundary"
    handover_hysteresis_db: float = 3.0
    handover_time_to_trigger_s: float = 10.0
    handover_sample_period_s: float = 5.0
    #: Load-aware handover: overloaded cells are discounted by this many dB
    #: in the A3 rule (0.0 keeps handover pure-SNR).
    handover_load_bias_db: float = 0.0
    cell_overload_threshold: float = 0.9
    cell_underload_threshold: float = 0.5
    cell_rebalance_fraction: float = 0.25
    apps: Tuple[ControllerAppSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "apps", tuple(_coerce_app_spec(entry) for entry in self.apps)
        )


def _coerce_app_spec(entry: Any) -> ControllerAppSpec:
    if isinstance(entry, ControllerAppSpec):
        return entry
    if isinstance(entry, str):
        return ControllerAppSpec(name=entry)
    if isinstance(entry, Mapping):
        extra = set(entry) - {"name", "params"}
        if "name" not in entry or extra:
            raise ValueError(
                f"app entry mapping needs 'name' (+ optional 'params'), got {dict(entry)!r}"
            )
        return ControllerAppSpec(name=str(entry["name"]), params=entry.get("params") or {})
    raise TypeError(
        f"controller app entry must be a name, mapping or ControllerAppSpec, got {entry!r}"
    )


@dataclass(frozen=True)
class EdgeSpec:
    """The edge-server fleet: how many servers, and each server's build.

    Defaults equal the historical single hard-wired
    :class:`~repro.edge.server.EdgeServerConfig`, so a default spec
    compiles (and runs) bit-for-bit like the pre-fleet simulator.
    """

    num_servers: int = 1
    cache_capacity_gbytes: float = 8.0
    cpu_capacity_cycles_per_s: float = 3.0e9 * 16
    cycles_per_pixel: float = 12.0
    remote_fetch_penalty_s: float = 0.2

    def __post_init__(self) -> None:
        if self.num_servers < 1:
            raise ValueError("edge.num_servers must be at least 1")
        if self.cache_capacity_gbytes <= 0 or self.cpu_capacity_cycles_per_s <= 0:
            raise ValueError("edge cache and CPU capacities must be positive")
        if self.remote_fetch_penalty_s < 0:
            raise ValueError("edge.remote_fetch_penalty_s must be non-negative")


@dataclass(frozen=True)
class PlacementSpec:
    """Predictive placement + horizon reservation (see :mod:`repro.placement`).

    ``strategy=None`` (default) disables placement entirely: every group
    runs on edge server 0, exactly the pre-fleet behaviour.  ``"drr"``
    packs jobs by dominant remaining resource against forecast demand and
    fires mispredict :class:`~repro.placement.manager.ReprovisionEvent`\\ s;
    ``"first_fit"`` is the naive A/B baseline.
    ``reservation_lead_intervals > 0`` additionally books per-cell radio
    blocks that many intervals ahead of the scripted timeline
    (:class:`~repro.placement.horizon.HorizonReservationPlanner`).
    """

    strategy: Optional[str] = None
    horizon_intervals: int = 3
    mispredict_threshold: float = 0.5
    reprovision: bool = True
    reservation_lead_intervals: int = 0
    reservation_margin: float = 1.1

    def __post_init__(self) -> None:
        if self.strategy is not None:
            # Imported lazily, like the controller-app check: the spec layer
            # must stay importable on its own.
            from repro.placement.planner import PLACEMENT_STRATEGIES

            if self.strategy not in PLACEMENT_STRATEGIES:
                raise ValueError(
                    f"placement.strategy must be one of "
                    f"{', '.join(PLACEMENT_STRATEGIES)} (or None to disable), "
                    f"got {self.strategy!r}"
                )
        if self.horizon_intervals < 1:
            raise ValueError("placement.horizon_intervals must be at least 1")
        if self.mispredict_threshold <= 0:
            raise ValueError("placement.mispredict_threshold must be positive")
        if self.reservation_lead_intervals < 0:
            raise ValueError(
                "placement.reservation_lead_intervals must be non-negative"
            )
        if self.reservation_margin < 1.0:
            raise ValueError("placement.reservation_margin must be at least 1.0")


@dataclass(frozen=True)
class EngineSpec:
    """Per-interval engine selection and twin-collection imperfections.

    ``channel_draw_mode`` / ``playback_workers`` select the interval engine
    (see :class:`~repro.sim.config.SimulationConfig`); the ``collection_*``
    knobs degrade digital-twin status collection (the staleness ablation's
    axis): a period multiplier (slower twins), a drop probability (lossy
    uplink) and a reporting delay.
    """

    channel_draw_mode: Optional[str] = None
    playback_workers: int = 1
    #: Which stages run on the worker pool: ``"playback"`` (stage 2 only),
    #: ``"full"`` (whole interval, grouped mode only) or ``None`` for the
    #: mode default (see :class:`~repro.sim.config.SimulationConfig`).
    shard_stages: Optional[str] = None
    #: Back the full-shard interval plan with shared-memory segments
    #: (``False``: pickle the plan arrays instead, identical results).
    shared_memory_buffers: bool = True
    feature_steps: int = 32
    collection_period_multiplier: float = 1.0
    collection_drop_probability: float = 0.0
    collection_delay_s: float = 0.0


@dataclass(frozen=True)
class SchemeSpec:
    """DT-assisted prediction scheme hyper-parameters (``mode="scheme"``)."""

    warmup_intervals: int = 2
    cnn_epochs: int = 6
    ddqn_episodes: int = 12
    mc_rollouts: int = 10
    min_groups: int = 2
    max_groups: int = 6
    k_strategy: str = "ddqn"
    #: Group count pinned when ``k_strategy="fixed"`` (``None`` otherwise).
    fixed_k: Optional[int] = None
    seed: int = 0


@dataclass(frozen=True)
class GroupingSpec:
    """How raw-playback scenarios build multicast groups (``mode="playback"``).

    ``policy`` is one of ``"preference"`` (group by each user's strongest
    preference category, modulo ``num_groups``), ``"round_robin"`` (user
    order striped over ``num_groups``) or ``"singleton"`` (the unicast
    baseline: one group per user).
    """

    policy: str = "preference"
    num_groups: int = 4


# ------------------------------------------------------------ timeline events
@dataclass(frozen=True)
class ScenarioEvent:
    """Base of all scripted timeline events.

    ``interval`` is the 0-based run step (evaluated interval in scheme
    mode, played interval in playback mode) at whose *start* the event is
    applied, before that interval's grouping/prediction happens.
    """

    interval: int


@dataclass(frozen=True)
class CellOutage(ScenarioEvent):
    """A cell loses (most of) its resource-block budget, as in a site outage.

    ``cell`` is a concrete cell id or ``"busiest"`` (resolved at run time to
    the cell serving the most users).  Requires the handover controller.
    """

    cell: Union[int, str] = "busiest"
    budget_blocks: float = 0.0


@dataclass(frozen=True)
class BudgetChange(ScenarioEvent):
    """Operator override of one cell's resource-block budget."""

    cell: Union[int, str] = 0
    budget_blocks: float = 100.0


@dataclass(frozen=True)
class FlashCrowd(ScenarioEvent):
    """A burst of ``arrivals`` users joins at once (e.g. an event lets out)."""

    arrivals: int = 10
    favourite: Optional[str] = None


@dataclass(frozen=True)
class MassDeparture(ScenarioEvent):
    """``departures`` users leave at once (picked by the scenario stream)."""

    departures: int = 10


#: Event-type registry used by ``ScenarioSpec.to_dict`` round-trips.
EVENT_TYPES: Dict[str, type] = {
    "cell_outage": CellOutage,
    "budget_change": BudgetChange,
    "flash_crowd": FlashCrowd,
    "mass_departure": MassDeparture,
}
_EVENT_NAMES = {cls: name for name, cls in EVENT_TYPES.items()}


# ------------------------------------------------------------- top-level spec
@dataclass(frozen=True)
class ScenarioSpec:
    """One complete, declarative scenario description."""

    name: str
    description: str = ""
    seed: int = 0
    #: Run steps the runner executes: evaluated intervals in scheme mode,
    #: played intervals in playback mode (scheme warm-up is extra).
    num_intervals: int = 8
    interval_s: float = 300.0
    #: Extra interval capacity compiled into ``SimulationConfig`` beyond
    #: warm-up + evaluated intervals (the hand-wired Fig. 3 runner sized its
    #: config one interval larger than it ever played; keeping that here
    #: makes the compiled config equal the historical one field-for-field).
    spare_intervals: int = 0
    #: ``"scheme"`` runs the DT predict-then-observe loop; ``"playback"``
    #: plays raw ground-truth intervals under a grouping policy.
    mode: str = "playback"
    topology: TopologySpec = field(default_factory=TopologySpec)
    population: PopulationSpec = field(default_factory=PopulationSpec)
    catalog: CatalogSpec = field(default_factory=CatalogSpec)
    mobility: MobilitySpec = field(default_factory=MobilitySpec)
    controller: ControllerSpec = field(default_factory=ControllerSpec)
    engine: EngineSpec = field(default_factory=EngineSpec)
    scheme: SchemeSpec = field(default_factory=SchemeSpec)
    grouping: GroupingSpec = field(default_factory=GroupingSpec)
    edge: EdgeSpec = field(default_factory=EdgeSpec)
    placement: PlacementSpec = field(default_factory=PlacementSpec)
    timeline: Tuple[ScenarioEvent, ...] = ()

    def __post_init__(self) -> None:
        if self.mode not in ("scheme", "playback"):
            raise ValueError("mode must be 'scheme' or 'playback'")
        if self.num_intervals <= 0:
            raise ValueError("num_intervals must be positive")
        if self.interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if self.spare_intervals < 0:
            raise ValueError("spare_intervals must be non-negative")
        for event in self.timeline:
            if event.interval < 0:
                raise ValueError("timeline event intervals must be non-negative")
            if (
                isinstance(event, (CellOutage, BudgetChange))
                and self.controller.mode != "handover"
            ):
                raise ValueError(
                    f"{type(event).__name__} events need controller.mode='handover'"
                )
        for phase in self.population.churn_phases:
            if phase.start_interval < 0 or phase.end_interval <= phase.start_interval:
                raise ValueError("churn phases need 0 <= start_interval < end_interval")
        if self.placement.strategy is None and self.edge.num_servers > 1:
            raise ValueError(
                "edge.num_servers > 1 requires a placement.strategy: without "
                "one every group runs on server 0 and the extra servers sit idle"
            )
        if self.controller.apps:
            if self.controller.mode != "handover":
                raise ValueError("controller.apps requires controller.mode='handover'")
            # Imported lazily: repro.net.apps pulls in the controller module,
            # and the spec layer must stay importable on its own.
            from repro.net.apps import app_names, get_app_class

            known = set(app_names())
            for app in self.controller.apps:
                if app.name not in known:
                    raise ValueError(
                        f"unknown controller app {app.name!r} (registered: "
                        f"{', '.join(sorted(known))})"
                    )
                unknown = set(app.params) - set(get_app_class(app.name).default_params)
                if unknown:
                    raise ValueError(
                        f"unknown params for controller app {app.name!r}: "
                        f"{', '.join(sorted(unknown))}"
                    )

    # ------------------------------------------------------------- overrides
    def with_overrides(self, overrides: Mapping[str, Any]) -> "ScenarioSpec":
        """A copy of this spec with dotted-path field overrides applied.

        ``overrides`` maps paths like ``"population.num_users"`` or
        top-level fields like ``"seed"`` to new values — the mechanism
        behind the CLI's ``--override key=value``.  List-valued fields
        (``catalog.categories``, ``controller.apps``) accept a JSON list
        or a comma-separated string (``controller.apps=a3_handover,
        cell_scoping``).  Unknown paths raise ``KeyError``; event-
        structured fields (``timeline``, ``population.churn_phases``)
        are not reachable this way, replace them with
        :func:`dataclasses.replace` instead.
        """
        spec = self
        for path, value in overrides.items():
            parts = path.split(".")
            spec = _replace_path(spec, parts, value)
        return spec

    # ---------------------------------------------------------------- export
    def to_dict(self) -> dict:
        """JSON-canonical dictionary form (used by ``RunResult`` exports)."""

        def convert(obj: Any) -> Any:
            if isinstance(obj, ScenarioEvent):
                payload = {"type": _EVENT_NAMES[type(obj)]}
                payload.update(
                    {str(f.name): convert(getattr(obj, f.name)) for f in fields(obj)}
                )
                return payload
            if dataclasses.is_dataclass(obj):
                return {str(f.name): convert(getattr(obj, f.name)) for f in fields(obj)}
            if isinstance(obj, Mapping):
                return {str(key): convert(val) for key, val in obj.items()}
            if isinstance(obj, tuple):
                return [convert(item) for item in obj]
            return obj

        return convert(self)


def _replace_path(node: Any, parts, value: Any) -> Any:
    name = parts[0]
    if not dataclasses.is_dataclass(node) or name not in {
        f.name for f in fields(node)
    }:
        raise KeyError(f"unknown spec field {name!r}")
    if len(parts) == 1:
        current = getattr(node, name)
        if isinstance(current, tuple):
            return dataclasses.replace(
                node, **{name: _coerce_tuple_override(node, name, current, value)}
            )
        if dataclasses.is_dataclass(current):
            raise KeyError(
                f"field {name!r} is structured; override its leaves instead"
            )
        if isinstance(current, bool):
            value = bool(value)
        elif isinstance(current, int) and not isinstance(value, bool) and value is not None:
            if isinstance(value, float) and not value.is_integer():
                raise ValueError(
                    f"field {name!r} is an integer; got {value!r}"
                )
            value = int(value)
        elif isinstance(current, float) and value is not None:
            value = float(value)
        return dataclasses.replace(node, **{name: value})
    return dataclasses.replace(
        node, **{name: _replace_path(getattr(node, name), parts[1:], value)}
    )


#: Tuple fields whose elements are event/phase dataclasses; overriding them
#: from a flat string would bypass their constructors, so they stay
#: replace()-only.
_STRUCTURED_TUPLE_FIELDS = {"timeline", "churn_phases"}


def _coerce_tuple_override(node: Any, name: str, current: tuple, value: Any) -> tuple:
    """Coerce an override value for a tuple-valued leaf field.

    Accepts a JSON list (already parsed by the caller) or a comma-separated
    string.  ``controller.apps`` entries pass through untouched —
    :class:`ControllerSpec` coerces names/mappings to
    :class:`ControllerAppSpec` — while scalar tuples (e.g.
    ``catalog.categories``) have elements coerced to the current element
    type.
    """
    if name in _STRUCTURED_TUPLE_FIELDS or (
        current and dataclasses.is_dataclass(current[0]) and not isinstance(node, ControllerSpec)
    ):
        raise KeyError(
            f"field {name!r} is structured; replace it with dataclasses.replace instead"
        )
    if isinstance(value, str):
        items = tuple(part.strip() for part in value.split(",") if part.strip())
    elif isinstance(value, (list, tuple)):
        items = tuple(value)
    else:
        raise ValueError(
            f"field {name!r} is list-valued; pass a JSON list or comma-separated string"
        )
    if isinstance(node, ControllerSpec) and name == "apps":
        return items
    if current:
        elem = current[0]
        if isinstance(elem, bool):
            items = tuple(bool(item) for item in items)
        elif isinstance(elem, int):
            items = tuple(int(item) for item in items)
        elif isinstance(elem, float):
            items = tuple(float(item) for item in items)
    return items
