"""Declarative scenario API: one spec → compile → run pipeline.

Describe a workload as a :class:`ScenarioSpec` (topology, population,
catalog, mobility, controller, engine, timeline), lower it with
:func:`compile_spec`, and execute it with :class:`ScenarioRunner` — or go
through the registry of named scenarios::

    from repro.scenario import run_scenario

    result = run_scenario("campus_fig3", {"num_intervals": 3})
    print(result.summary["mean_radio_accuracy"])

The CLI mirrors this: ``repro scenarios`` lists the registry and
``repro run <name> [--override key=value]`` executes one entry.
"""

from repro.scenario.compiler import CompiledScenario, compile_spec
from repro.scenario.registry import (
    compile_scenario,
    get_scenario,
    register_scenario,
    run_scenario,
    scenario_names,
)
from repro.scenario.runner import RunResult, ScenarioRunner, run_spec
from repro.scenario.spec import (
    BudgetChange,
    CatalogSpec,
    CellOutage,
    ChurnPhase,
    ControllerAppSpec,
    ControllerSpec,
    EdgeSpec,
    EngineSpec,
    FlashCrowd,
    GroupingSpec,
    MassDeparture,
    MobilitySpec,
    PlacementSpec,
    PopulationSpec,
    ScenarioEvent,
    ScenarioSpec,
    SchemeSpec,
    TopologySpec,
)

__all__ = [
    "BudgetChange",
    "CatalogSpec",
    "CellOutage",
    "ChurnPhase",
    "CompiledScenario",
    "ControllerAppSpec",
    "ControllerSpec",
    "EdgeSpec",
    "EngineSpec",
    "FlashCrowd",
    "GroupingSpec",
    "MassDeparture",
    "MobilitySpec",
    "PlacementSpec",
    "PopulationSpec",
    "RunResult",
    "ScenarioEvent",
    "ScenarioRunner",
    "ScenarioSpec",
    "SchemeSpec",
    "TopologySpec",
    "compile_scenario",
    "compile_spec",
    "get_scenario",
    "register_scenario",
    "run_scenario",
    "run_spec",
    "scenario_names",
]
