"""Scenario execution: compiled spec → :class:`RunResult`.

:class:`ScenarioRunner` drives a compiled scenario end to end.  Scheme-mode
scenarios run the DT-assisted predict-then-observe loop
(:class:`~repro.core.pipeline.DTResourcePredictionScheme`); playback-mode
scenarios play raw ground-truth intervals under the spec's grouping policy.
Either way the runner applies the spec's timeline events and churn phases
at the start of each run step, and returns a typed, JSON-serializable
:class:`RunResult` carrying per-interval records, per-cell series, the
accuracy summary (scheme mode) and wall-clock timing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

import numpy as np

from repro.core import DTResourcePredictionScheme
from repro.core.pipeline import EvaluationResult
from repro.core.reservation import ReservationPolicy
from repro.placement.horizon import DemandShock, HorizonReservationPlanner
from repro.scenario.compiler import CompiledScenario, compile_spec
from repro.scenario.spec import (
    BudgetChange,
    CellOutage,
    FlashCrowd,
    MassDeparture,
    ScenarioEvent,
    ScenarioSpec,
)
from repro.sim import StreamingSimulator
from repro.sim.rng import derive_stream
from repro.sim.simulator import IntervalResult, singleton_grouping

#: Purpose tag of the scenario runner's churn streams.  Appended as the
#: *last* key word — ``(seed, step, tag)`` — like every other purpose tag in
#: :mod:`repro.sim.rng`, so equal-length keys (e.g. the per-user preference
#: streams ``(seed, user_id, PREFERENCE_STREAM)``) can never collide with
#: it: the tag value is distinct from every registry stream tag.
SCENARIO_CHURN_STREAM = 101

#: Departures never shrink the population below this floor, so groupings
#: (which need at least one non-empty group) always remain constructible.
MIN_POPULATION = 2


def timeline_demand_shocks(timeline) -> tuple:
    """Translate a spec timeline into placement-layer :class:`DemandShock`\\ s.

    The horizon reservation planner lives below the scenario layer and
    must not import spec event types; this is the one place the two
    vocabularies meet.  ``"busiest"`` cell targets cannot be resolved from
    the spec alone and translate to ``cell=None`` (demand displacement is
    still anticipated, the budget change is not).
    """
    shocks = []
    for event in timeline:
        if isinstance(event, FlashCrowd):
            shocks.append(
                DemandShock(
                    interval=event.interval,
                    kind="flash_crowd",
                    magnitude=float(event.arrivals),
                )
            )
        elif isinstance(event, MassDeparture):
            shocks.append(
                DemandShock(
                    interval=event.interval,
                    kind="mass_departure",
                    magnitude=float(event.departures),
                )
            )
        elif isinstance(event, (CellOutage, BudgetChange)):
            shocks.append(
                DemandShock(
                    interval=event.interval,
                    kind=(
                        "cell_outage"
                        if isinstance(event, CellOutage)
                        else "budget_change"
                    ),
                    cell=event.cell if isinstance(event.cell, int) else None,
                    budget_blocks=float(event.budget_blocks),
                )
            )
    return tuple(shocks)


@dataclass
class RunResult:
    """Typed outcome of one scenario run.

    ``intervals`` holds one JSON-canonical record per run step: the unified
    :meth:`~repro.core.pipeline.IntervalEvaluation.to_dict` shape in scheme
    mode, a ground-truth subset of the same keys in playback mode, both
    extended with population/controller fields (``num_users``, ``arrivals``,
    ``departures``, ``num_handovers``, ``rb_utilization_by_cell``, ...).
    ``evaluation`` carries the full in-memory
    :class:`~repro.core.pipeline.EvaluationResult` (scheme mode only) and
    ``interval_results`` the raw simulator records — both for Python
    consumers; neither is exported by :meth:`to_dict`.
    """

    scenario: str
    mode: str
    seed: int
    num_intervals: int
    elapsed_s: float
    intervals: List[dict] = field(default_factory=list)
    summary: Dict[str, object] = field(default_factory=dict)
    per_cell: Dict[str, Dict[str, List[float]]] = field(default_factory=dict)
    #: Per-server fleet series (``utilization`` / ``cycles`` keyed by server
    #: id, plus the fleet-wide ``fragmentation`` series).  Populated — and
    #: exported — only for multi-server or placement-enabled runs, so
    #: single-server exports stay bit-identical to their goldens.
    per_server: Dict[str, Dict[str, List[Optional[float]]]] = field(default_factory=dict)
    #: Per-stage wall-time totals over the run: the simulator's
    #: ``stage1_s`` / ``playback_s`` / ``collection_s`` sums, plus
    #: ``predict_s`` (prediction pipeline, scheme mode only).  Exported as
    #: its own top-level key so interval records and summaries — and their
    #: golden digests — are untouched.
    timing: Dict[str, float] = field(default_factory=dict)
    spec: Optional[dict] = None
    evaluation: Optional[EvaluationResult] = None
    interval_results: Optional[List[IntervalResult]] = None
    #: The simulator the run used (worker pool already closed; its twins,
    #: catalog and metrics stay readable).  Python-side only, not exported.
    simulator: Optional["StreamingSimulator"] = None
    #: The horizon reservation planner, when the spec enabled one
    #: (``placement.reservation_lead_intervals > 0``).  Python-side only.
    horizon: Optional[HorizonReservationPlanner] = None

    def to_dict(self) -> dict:
        """JSON-canonical export: ``json.loads(json.dumps(d)) == d``."""
        exported = {
            "scenario": self.scenario,
            "mode": self.mode,
            "seed": int(self.seed),
            "num_intervals": int(self.num_intervals),
            "elapsed_s": float(self.elapsed_s),
            "elapsed_per_interval_s": float(self.elapsed_s) / max(self.num_intervals, 1),
            "intervals": list(self.intervals),
            "summary": dict(self.summary),
            "per_cell": {str(key): dict(series) for key, series in self.per_cell.items()},
            "timing": {str(key): float(value) for key, value in self.timing.items()},
            "spec": self.spec,
        }
        if self.per_server:
            exported["per_server"] = {
                str(key): dict(series) for key, series in self.per_server.items()
            }
        return exported


class ScenarioRunner:
    """Executes one compiled scenario and collects its :class:`RunResult`."""

    def __init__(self, scenario: Union[ScenarioSpec, CompiledScenario]) -> None:
        self.compiled = (
            scenario if isinstance(scenario, CompiledScenario) else compile_spec(scenario)
        )
        self.spec = self.compiled.spec

    # ---------------------------------------------------------------- driving
    def run(self) -> RunResult:
        spec = self.spec
        started = time.perf_counter()
        simulator = StreamingSimulator(self.compiled.sim_config)
        records: List[dict] = []
        evaluation: Optional[EvaluationResult] = None
        raw_results: List[IntervalResult] = []
        horizon = self._build_horizon()
        with simulator:
            if spec.mode == "scheme":
                scheme = DTResourcePredictionScheme(
                    simulator,
                    self.compiled.scheme_config,
                    k_strategy=spec.scheme.k_strategy,
                )
                scheme.fixed_k = spec.scheme.fixed_k
                scheme.warm_up()
                evaluation = EvaluationResult()
                for step in range(spec.num_intervals):
                    arrivals, departures, applied = self._apply_step_script(simulator, step)
                    interval_eval = scheme.step()
                    evaluation.intervals.append(interval_eval)
                    raw_results.append(interval_eval.actual)
                    record = interval_eval.to_dict()
                    record.update(
                        self._ground_truth_fields(
                            simulator, interval_eval.actual, arrivals, departures, applied
                        )
                    )
                    if horizon is not None:
                        record["horizon_bookings"] = self._horizon_step(
                            horizon, simulator, interval_eval.actual, step
                        )
                    records.append(record)
            else:
                for step in range(spec.num_intervals):
                    arrivals, departures, applied = self._apply_step_script(simulator, step)
                    grouping = self._build_grouping(simulator)
                    result = simulator.run_interval(grouping)
                    raw_results.append(result)
                    record = {
                        "interval_index": int(result.interval_index),
                        "num_groups": len(result.usage_by_group),
                        "actual_radio_blocks": float(result.total_resource_blocks),
                        "actual_computing_cycles": float(result.total_computing_cycles),
                    }
                    record.update(
                        self._ground_truth_fields(
                            simulator, result, arrivals, departures, applied
                        )
                    )
                    if horizon is not None:
                        record["horizon_bookings"] = self._horizon_step(
                            horizon, simulator, result, step
                        )
                    records.append(record)
        elapsed = time.perf_counter() - started

        # Per-stage totals over every interval the simulator played
        # (including scheme warm-up, which raw_results excludes).
        timing: Dict[str, float] = {}
        for interval_result in simulator.history:
            for key, value in interval_result.timing.items():
                timing[key] = timing.get(key, 0.0) + float(value)
        if spec.mode == "scheme":
            timing["predict_s"] = float(scheme.timing["predict_s"])

        run_result = RunResult(
            scenario=spec.name,
            mode=spec.mode,
            seed=spec.seed,
            num_intervals=spec.num_intervals,
            elapsed_s=elapsed,
            intervals=records,
            summary=self._summary(evaluation, raw_results, simulator, horizon),
            per_cell=self._per_cell_series(evaluation, raw_results),
            per_server=self._per_server_series(simulator, raw_results),
            timing=timing,
            spec=spec.to_dict(),
            evaluation=evaluation,
            interval_results=raw_results,
            simulator=simulator,
            horizon=horizon,
        )
        return run_result

    # --------------------------------------------------- horizon reservation
    def _build_horizon(self) -> Optional[HorizonReservationPlanner]:
        """The spec's horizon reservation planner, if it enabled one."""
        placement = self.spec.placement
        if placement.reservation_lead_intervals <= 0:
            return None
        return HorizonReservationPlanner(
            shocks=timeline_demand_shocks(self.spec.timeline),
            num_cells=self.spec.topology.num_cells,
            budget_blocks=self.spec.topology.rb_budget_blocks,
            num_users=self.spec.population.num_users,
            lead_intervals=placement.reservation_lead_intervals,
            policy=ReservationPolicy(margin=placement.reservation_margin),
        )

    @staticmethod
    def _horizon_step(
        horizon: HorizonReservationPlanner,
        simulator: StreamingSimulator,
        result: IntervalResult,
        step: int,
    ) -> List[dict]:
        """Audit the step's bookings, then book the upcoming intervals."""
        horizon.update_population(len(simulator.users))
        demand = result.rb_demand_by_cell or {0: result.total_resource_blocks}
        horizon.observe(
            step,
            {
                int(cell): float(value)
                for cell, value in demand.items()
                if np.isfinite(value)
            },
        )
        return [booking.to_record() for booking in horizon.plan(step)]

    # ------------------------------------------------------------ step script
    def _apply_step_script(self, simulator: StreamingSimulator, step: int):
        """Apply churn phases and timeline events scheduled for ``step``.

        Returns ``(arrivals, departures, applied_events)`` for the interval
        record.  Everything here is a pure function of (spec, step): the
        departure picks come from a dedicated ``(seed, tag, step)`` stream,
        never from the simulator's generators.
        """
        spec = self.spec
        arrivals = 0
        departures = 0
        applied: List[str] = []
        # One churn stream per (spec seed, step), shared by every phase and
        # event of the step: deterministic, and independent of the
        # simulator's own generators.
        churn_rng = derive_stream((spec.seed, step, SCENARIO_CHURN_STREAM))
        for phase in spec.population.churn_phases:
            if phase.start_interval <= step < phase.end_interval:
                for _ in range(phase.arrivals_per_interval):
                    simulator.add_user(favourite=phase.arrival_favourite)
                    arrivals += 1
                departures += self._remove_users(
                    simulator, phase.departures_per_interval, churn_rng
                )
        for event in spec.timeline:
            if event.interval != step:
                continue
            label, added, removed = self._apply_event(simulator, event, churn_rng)
            applied.append(label)
            arrivals += added
            departures += removed
        return arrivals, departures, applied

    def _apply_event(self, simulator: StreamingSimulator, event: ScenarioEvent, churn_rng):
        """Apply one timeline event; returns ``(label, arrivals, departures)``."""
        if isinstance(event, FlashCrowd):
            for _ in range(event.arrivals):
                simulator.add_user(favourite=event.favourite)
            return f"flash_crowd(+{event.arrivals})", event.arrivals, 0
        if isinstance(event, MassDeparture):
            removed = self._remove_users(simulator, event.departures, churn_rng)
            return f"mass_departure(-{removed})", 0, removed
        if isinstance(event, (CellOutage, BudgetChange)):
            cell_id = self._resolve_cell(simulator, event.cell)
            simulator.controller.set_cell_budget(cell_id, event.budget_blocks)
            kind = "cell_outage" if isinstance(event, CellOutage) else "budget_change"
            return f"{kind}(cell={cell_id}, budget={event.budget_blocks:g})", 0, 0
        raise TypeError(f"unknown scenario event {type(event).__name__}")

    @staticmethod
    def _remove_users(simulator: StreamingSimulator, count: int, rng) -> int:
        """Remove up to ``count`` users, picked by the step's churn stream."""
        removed = 0
        for _ in range(count):
            candidates = simulator.user_ids()
            if len(candidates) <= MIN_POPULATION:
                break
            simulator.remove_user(int(rng.choice(candidates)))
            removed += 1
        return removed

    @staticmethod
    def _resolve_cell(simulator: StreamingSimulator, cell: Union[int, str]) -> int:
        if simulator.controller is None:
            raise ValueError("cell events need controller_mode='handover'")
        if cell == "busiest":
            states = simulator.controller.cell_states
            return max(states, key=lambda cid: (states[cid].served_users, -cid))
        return int(cell)

    # ------------------------------------------------------------- groupings
    def _build_grouping(self, simulator: StreamingSimulator) -> Dict[int, List[int]]:
        grouping_spec = self.spec.grouping
        user_ids = simulator.user_ids()
        if grouping_spec.policy == "singleton":
            return singleton_grouping(user_ids)
        if grouping_spec.policy == "round_robin":
            num_groups = min(max(grouping_spec.num_groups, 1), len(user_ids))
            grouping: Dict[int, List[int]] = {gid: [] for gid in range(num_groups)}
            for index, uid in enumerate(user_ids):
                grouping[index % num_groups].append(uid)
            return grouping
        if grouping_spec.policy == "preference":
            categories = tuple(simulator.config.categories)
            grouping = {}
            for uid in user_ids:
                weights = simulator.users[uid].preference.as_array(categories)
                grouping.setdefault(
                    int(np.argmax(weights)) % grouping_spec.num_groups, []
                ).append(uid)
            return {gid: members for gid, members in sorted(grouping.items()) if members}
        raise ValueError(f"unknown grouping policy {grouping_spec.policy!r}")

    # -------------------------------------------------------------- reporting
    @staticmethod
    def _ground_truth_fields(
        simulator: StreamingSimulator,
        result: IntervalResult,
        arrivals: int,
        departures: int,
        applied: List[str],
    ) -> dict:
        fields: dict = {
            "num_users": len(simulator.users),
            "arrivals": int(arrivals),
            "departures": int(departures),
            "events_applied": list(applied),
            "outage_groups": [int(gid) for gid in result.outage_groups],
            "total_traffic_bits": float(result.total_traffic_bits),
        }
        if simulator.controller is not None:
            fields.update(
                {
                    "num_handovers": int(result.num_handovers),
                    "group_splits": sum(
                        1 for e in result.group_scope_events if e.kind == "split"
                    ),
                    "group_merges": sum(
                        1 for e in result.group_scope_events if e.kind == "merge"
                    ),
                    # Non-finite utilization (a zero-budget cell with live
                    # demand, e.g. an outage drill) serializes as null so the
                    # cell keeps its key in every per-cell map.
                    "rb_utilization_by_cell": {
                        str(cell): float(value) if np.isfinite(value) else None
                        for cell, value in sorted(result.rb_utilization_by_cell.items())
                    },
                    "rb_budget_by_cell": {
                        str(cell): float(value)
                        for cell, value in sorted(result.rb_budget_by_cell.items())
                    },
                    "overloaded_cells": sorted(
                        int(e.cell_id) for e in result.cell_load_events if e.overloaded
                    ),
                    "controller_events": ScenarioRunner._controller_event_records(
                        result
                    ),
                }
            )
        if simulator.placement is not None:
            fields.update(
                {
                    "server_of_group": {
                        str(gid): int(server)
                        for gid, server in sorted(result.server_of_group.items())
                    },
                    "edge_utilization_by_server": {
                        str(server): float(value)
                        for server, value in sorted(
                            result.edge_utilization_by_server.items()
                        )
                    },
                    "edge_fragmentation": (
                        float(result.edge_fragmentation)
                        if result.edge_fragmentation is not None
                        else None
                    ),
                    "placement_events": [
                        event.to_record() for event in result.placement_events
                    ],
                }
            )
        return fields

    @staticmethod
    def _controller_event_records(result: IntervalResult) -> List[dict]:
        """The interval's controller event log as JSON-canonical tagged records.

        Handover, group-scope, cell-load and app-emitted events are merged
        into one list sorted by ``time_s`` (stable, so same-time events keep
        their emission order).  Non-finite floats serialize as null.
        """

        def finite(value: float) -> Optional[float]:
            value = float(value)
            return value if np.isfinite(value) else None

        def jsonify(value):
            if isinstance(value, dict):
                return {str(key): jsonify(val) for key, val in value.items()}
            if isinstance(value, (list, tuple)):
                return [jsonify(item) for item in value]
            if isinstance(value, (bool, np.bool_)):
                return bool(value)
            if isinstance(value, (int, np.integer)):
                return int(value)
            if isinstance(value, (float, np.floating)):
                return finite(value)
            return value

        records: List[dict] = []
        for ho in result.handover_events:
            records.append(
                {
                    "type": "handover",
                    "time_s": float(ho.time_s),
                    "user": int(ho.user_id),
                    "source_cell": int(ho.source_cell),
                    "target_cell": int(ho.target_cell),
                    "margin_db": finite(ho.margin_db),
                }
            )
        for scope in result.group_scope_events:
            records.append(
                {
                    "type": "group_scope",
                    "time_s": float(scope.time_s),
                    "logical_group_id": int(scope.logical_group_id),
                    "kind": str(scope.kind),
                    "cells": [int(cell) for cell in scope.cells],
                    "previous_cells": [int(cell) for cell in scope.previous_cells],
                }
            )
        for load in result.cell_load_events:
            records.append(
                {
                    "type": "cell_load",
                    "time_s": float(load.time_s),
                    "cell": int(load.cell_id),
                    "demand_blocks": float(load.demand_blocks),
                    "budget_blocks": float(load.budget_blocks),
                    "utilization": finite(load.utilization),
                    "overloaded": bool(load.overloaded),
                    "outage_groups": int(load.outage_groups),
                }
            )
        for app_event in result.app_events:
            records.append(
                {
                    "type": "app",
                    "time_s": float(app_event.time_s),
                    "app": str(app_event.app),
                    "name": str(app_event.name),
                    "payload": jsonify(dict(app_event.payload)),
                }
            )
        records.sort(key=lambda record: record["time_s"])
        return records

    @staticmethod
    def _summary(
        evaluation: Optional[EvaluationResult],
        raw_results: List[IntervalResult],
        simulator: Optional[StreamingSimulator] = None,
        horizon: Optional[HorizonReservationPlanner] = None,
    ) -> Dict[str, object]:
        summary: Dict[str, object] = {}
        if evaluation is not None and evaluation.intervals:
            summary = dict(evaluation.to_dict()["summary"])
        if raw_results:
            actual = np.array([r.total_resource_blocks for r in raw_results])
            summary.setdefault("mean_actual_radio_blocks", float(actual.mean()))
            summary.setdefault(
                "total_computing_cycles",
                float(sum(r.total_computing_cycles for r in raw_results)),
            )
            summary.setdefault(
                "total_handovers", int(sum(r.num_handovers for r in raw_results))
            )
            summary.setdefault(
                "total_outage_groups",
                int(sum(len(r.outage_groups) for r in raw_results)),
            )
        if simulator is not None and raw_results:
            fleet = simulator.edge_fleet
            fleet_utilization = [
                float(sum(r.edge_utilization_by_server.values())) / fleet.num_servers
                for r in raw_results
            ]
            summary["edge"] = {
                "num_servers": int(fleet.num_servers),
                "total_cycles": float(
                    sum(
                        sum(r.edge_utilization_by_server.values())
                        * simulator.config.cpu_capacity_cycles_per_s
                        * simulator.config.interval_s
                        for r in raw_results
                    )
                ),
                "mean_utilization": float(np.mean(fleet_utilization)),
                "peak_utilization": float(np.max(fleet_utilization)),
                "cache_misses": int(sum(r.edge_cache_misses for r in raw_results)),
                "cache": fleet.cache_stats(),
            }
            if simulator.placement is not None:
                fragmentation = [
                    float(r.edge_fragmentation)
                    for r in raw_results
                    if r.edge_fragmentation is not None
                ]
                summary["placement"] = {
                    "strategy": str(simulator.config.placement_strategy),
                    "reprovision": bool(simulator.config.placement_reprovision),
                    "reprovision_events": int(simulator.placement.total_reprovisions()),
                    "migrations": int(simulator.placement.total_migrations()),
                    "mean_fragmentation": (
                        float(np.mean(fragmentation)) if fragmentation else None
                    ),
                }
        if horizon is not None:
            summary["reservation"] = horizon.summary()
        return summary

    @staticmethod
    def _per_server_series(
        simulator: StreamingSimulator, raw_results: List[IntervalResult]
    ) -> Dict[str, Dict[str, List[Optional[float]]]]:
        """Per-server utilization/cycles + fleet fragmentation series.

        Empty (and therefore absent from the export) for single-server runs
        without a placement strategy, keeping their goldens bit-identical.
        """
        if simulator.edge_fleet.num_servers <= 1 and simulator.placement is None:
            return {}
        capacity = (
            simulator.config.cpu_capacity_cycles_per_s * simulator.config.interval_s
        )
        servers = range(simulator.edge_fleet.num_servers)
        return {
            "utilization": {
                str(server): [
                    float(r.edge_utilization_by_server.get(server, 0.0))
                    for r in raw_results
                ]
                for server in servers
            },
            "cycles": {
                str(server): [
                    float(r.edge_utilization_by_server.get(server, 0.0)) * capacity
                    for r in raw_results
                ]
                for server in servers
            },
            "fragmentation": {
                "fleet": [
                    (
                        float(r.edge_fragmentation)
                        if r.edge_fragmentation is not None
                        else None
                    )
                    for r in raw_results
                ]
            },
        }

    @staticmethod
    def _per_cell_series(
        evaluation: Optional[EvaluationResult], raw_results: List[IntervalResult]
    ) -> Dict[str, Dict[str, List[float]]]:
        """Aligned per-cell series over the run (empty in boundary mode)."""
        series: Dict[str, Dict[str, List[float]]] = {}
        if evaluation is not None and evaluation.intervals:
            predicted = evaluation.predicted_radio_series_by_cell()
            actual = evaluation.actual_radio_series_by_cell()
            if predicted:
                series["predicted_radio_blocks"] = {
                    str(cell): [float(v) for v in values]
                    for cell, values in predicted.items()
                }
                series["actual_radio_blocks"] = {
                    str(cell): [float(v) for v in values]
                    for cell, values in actual.items()
                }
        cells = sorted({cell for r in raw_results for cell in r.rb_budget_by_cell})
        if cells:
            series["rb_budget_blocks"] = {
                str(cell): [float(r.rb_budget_by_cell.get(cell, 0.0)) for r in raw_results]
                for cell in cells
            }
            series["rb_demand_blocks"] = {
                str(cell): [float(r.rb_demand_by_cell.get(cell, 0.0)) for r in raw_results]
                for cell in cells
            }
        return series


def run_spec(spec: ScenarioSpec) -> RunResult:
    """Compile and run ``spec`` in one call."""
    return ScenarioRunner(spec).run()
