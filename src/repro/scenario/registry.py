"""Named scenario registry.

Each entry is a zero-argument factory returning a fresh
:class:`~repro.scenario.spec.ScenarioSpec`, so specs stay immutable values:
callers override fields via :meth:`ScenarioSpec.with_overrides` without
affecting anyone else.  ``repro scenarios`` lists this registry and
``repro run <name>`` executes from it; the CI smoke matrix runs every entry
for one interval.

The two ports — :func:`campus_fig3` and :func:`multicell_campus` — are
golden-pinned: compiled configs and run totals are bit-identical to the
hand-wired code they replaced (``tests/test_scenario.py``).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.scenario.compiler import CompiledScenario, compile_spec
from repro.scenario.runner import RunResult, ScenarioRunner
from repro.scenario.spec import (
    BudgetChange,
    CatalogSpec,
    CellOutage,
    ChurnPhase,
    ControllerAppSpec,
    ControllerSpec,
    EdgeSpec,
    EngineSpec,
    FlashCrowd,
    GroupingSpec,
    MassDeparture,
    PlacementSpec,
    PopulationSpec,
    ScenarioSpec,
    SchemeSpec,
    TopologySpec,
)

_REGISTRY: Dict[str, Callable[[], ScenarioSpec]] = {}


def register_scenario(factory: Callable[[], ScenarioSpec]) -> Callable[[], ScenarioSpec]:
    """Register a spec factory under its spec's name (decorator-friendly)."""
    spec = factory()
    if spec.name in _REGISTRY:
        raise ValueError(f"scenario {spec.name!r} already registered")
    _REGISTRY[spec.name] = factory
    return factory


def scenario_names() -> List[str]:
    return sorted(_REGISTRY)


def get_scenario(
    name: str, overrides: Optional[Mapping[str, Any]] = None
) -> ScenarioSpec:
    """A fresh spec of the named scenario, with optional dotted overrides."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(scenario_names())
        raise KeyError(f"unknown scenario {name!r} (registered: {known})") from None
    spec = factory()
    if overrides:
        spec = spec.with_overrides(overrides)
    return spec


def compile_scenario(
    name: str, overrides: Optional[Mapping[str, Any]] = None
) -> CompiledScenario:
    return compile_spec(get_scenario(name, overrides))


def run_scenario(name: str, overrides: Optional[Mapping[str, Any]] = None) -> RunResult:
    """The one-call entry point: registry name (+ overrides) → RunResult."""
    return ScenarioRunner(get_scenario(name, overrides)).run()


# --------------------------------------------------------------------------
# Ports of the historical hand-wired scenarios (golden-pinned).
# --------------------------------------------------------------------------
@register_scenario
def campus_fig3() -> ScenarioSpec:
    """The paper's Fig. 3 evaluation, exactly as ``run_fig3_experiment`` wired it."""
    return ScenarioSpec(
        name="campus_fig3",
        description=(
            "The paper's evaluation scenario: a News-heavy campus population, "
            "DT-assisted predict-then-observe loop (Fig. 3 panels + headline "
            "accuracy)."
        ),
        seed=2023,
        mode="scheme",
        num_intervals=6,
        interval_s=150.0,
        spare_intervals=1,
        population=PopulationSpec(
            num_users=24,
            favourite_category="News",
            favourite_user_fraction=0.8,
            favourite_boost=8.0,
        ),
        catalog=CatalogSpec(
            num_videos=100,
            recommendation_popularity_weight=0.3,
            popularity_update_rate=0.05,
        ),
        scheme=SchemeSpec(),
    )


@register_scenario
def multicell_campus() -> ScenarioSpec:
    """The multi-cell handover + outage-drill walk-through, as the example wired it."""
    return ScenarioSpec(
        name="multicell_campus",
        description=(
            "2x2 cell grid with A3 handover, per-cell multicast scoping and "
            "budget rebalancing; the busiest cell loses its whole RB budget "
            "mid-run (outage drill)."
        ),
        seed=17,
        mode="playback",
        num_intervals=8,
        interval_s=300.0,
        topology=TopologySpec(num_cells=4, area_width_m=1400.0, area_height_m=1100.0),
        population=PopulationSpec(
            num_users=48, favourite_category="News", favourite_user_fraction=0.5
        ),
        catalog=CatalogSpec(num_videos=80),
        controller=ControllerSpec(mode="handover"),
        engine=EngineSpec(channel_draw_mode="fast"),
        grouping=GroupingSpec(policy="preference", num_groups=4),
        timeline=(CellOutage(interval=4, cell="busiest", budget_blocks=0.0),),
    )


# --------------------------------------------------------------------------
# New workloads the declarative layer opens up.
# --------------------------------------------------------------------------
@register_scenario
def flash_crowd() -> ScenarioSpec:
    """A viral moment: the population doubles at once, mid-prediction-loop."""
    return ScenarioSpec(
        name="flash_crowd",
        description=(
            "DT prediction loop through a flash crowd: 20 Sports-leaning users "
            "join at once at interval 2, stressing group re-construction and "
            "cold twins."
        ),
        seed=42,
        mode="scheme",
        num_intervals=5,
        interval_s=120.0,
        population=PopulationSpec(
            num_users=20,
            favourite_category="News",
            favourite_user_fraction=0.5,
            favourite_boost=4.0,
        ),
        catalog=CatalogSpec(num_videos=80),
        controller=ControllerSpec(mode="handover"),
        engine=EngineSpec(channel_draw_mode="fast"),
        scheme=SchemeSpec(cnn_epochs=4, ddqn_episodes=8, mc_rollouts=8),
        timeline=(FlashCrowd(interval=2, arrivals=20, favourite="Sports"),),
    )


@register_scenario
def stadium_egress() -> ScenarioSpec:
    """A stadium empties: most of a dense crowd leaves over a few intervals."""
    return ScenarioSpec(
        name="stadium_egress",
        description=(
            "Dense 72-user crowd on a 4-cell grid drains away (12 departures "
            "per interval from interval 2, plus a final mass departure), "
            "shrinking multicast groups and per-cell load."
        ),
        seed=7,
        mode="playback",
        num_intervals=6,
        interval_s=180.0,
        topology=TopologySpec(num_cells=4, area_width_m=1200.0, area_height_m=900.0),
        population=PopulationSpec(
            num_users=72,
            favourite_category="Sports",
            favourite_user_fraction=0.7,
            favourite_boost=6.0,
            churn_phases=(
                ChurnPhase(
                    start_interval=2, end_interval=5, departures_per_interval=12
                ),
            ),
        ),
        catalog=CatalogSpec(num_videos=60),
        controller=ControllerSpec(mode="handover"),
        engine=EngineSpec(channel_draw_mode="fast"),
        grouping=GroupingSpec(policy="preference", num_groups=4),
        timeline=(MassDeparture(interval=5, departures=20),),
    )


@register_scenario
def commuter_rush() -> ScenarioSpec:
    """Morning rush: commuters stream in, linger, then stream out."""
    return ScenarioSpec(
        name="commuter_rush",
        description=(
            "Arrival wave (6 users/interval for 3 intervals) followed by a "
            "departure wave, over a 3-cell corridor with handover — the "
            "churn-heavy workload the paper's motivation describes."
        ),
        seed=29,
        mode="playback",
        num_intervals=8,
        interval_s=150.0,
        topology=TopologySpec(num_cells=3, area_width_m=1600.0, area_height_m=600.0),
        population=PopulationSpec(
            num_users=18,
            favourite_category="News",
            favourite_user_fraction=0.6,
            churn_phases=(
                ChurnPhase(
                    start_interval=0,
                    end_interval=3,
                    arrivals_per_interval=6,
                    arrival_favourite="News",
                ),
                ChurnPhase(
                    start_interval=5, end_interval=8, departures_per_interval=7
                ),
            ),
        ),
        catalog=CatalogSpec(num_videos=70),
        controller=ControllerSpec(mode="handover"),
        engine=EngineSpec(channel_draw_mode="fast"),
        grouping=GroupingSpec(policy="preference", num_groups=3),
    )


@register_scenario
def cell_outage_storm() -> ScenarioSpec:
    """Cascading cell outages under load-aware handover."""
    return ScenarioSpec(
        name="cell_outage_storm",
        description=(
            "Two successive cell outages on a 4-cell grid with load-aware "
            "handover (6 dB bias steers users off overloaded cells) and a "
            "late budget restore — the load balancer and the biased A3 rule "
            "work together."
        ),
        seed=23,
        mode="playback",
        num_intervals=8,
        interval_s=180.0,
        topology=TopologySpec(num_cells=4, area_width_m=1400.0, area_height_m=1100.0),
        population=PopulationSpec(
            num_users=40, favourite_category="News", favourite_user_fraction=0.5
        ),
        catalog=CatalogSpec(num_videos=60),
        controller=ControllerSpec(
            mode="handover",
            handover_load_bias_db=6.0,
            handover_time_to_trigger_s=5.0,
        ),
        engine=EngineSpec(channel_draw_mode="fast"),
        grouping=GroupingSpec(policy="preference", num_groups=4),
        timeline=(
            CellOutage(interval=2, cell="busiest", budget_blocks=0.0),
            CellOutage(interval=4, cell="busiest", budget_blocks=0.0),
            BudgetChange(interval=6, cell=0, budget_blocks=100.0),
        ),
    )


@register_scenario
def weak_signal_demotion() -> ScenarioSpec:
    """Cell-edge users demoted to unicast before the worst-member rule prices them."""
    return ScenarioSpec(
        name="weak_signal_demotion",
        description=(
            "multicell_campus topology with a custom controller-app stack: "
            "weak_member_demotion pulls cell-edge members (mean SNR below "
            "30 dB) out of multicast groups into unicast before the "
            "worst-member rule prices the group, and cell_scoping re-scopes "
            "mid-interval on every handover."
        ),
        seed=17,
        mode="playback",
        num_intervals=6,
        interval_s=300.0,
        topology=TopologySpec(num_cells=4, area_width_m=1400.0, area_height_m=1100.0),
        population=PopulationSpec(
            num_users=48, favourite_category="News", favourite_user_fraction=0.5
        ),
        catalog=CatalogSpec(num_videos=80),
        controller=ControllerSpec(
            mode="handover",
            apps=(
                ControllerAppSpec(name="a3_handover"),
                ControllerAppSpec(
                    # 30 dB sits near the campus topology's 20th-percentile
                    # mean SNR, so a handful of members demote per interval.
                    name="weak_member_demotion",
                    params={"rssi_threshold_db": 30.0},
                ),
                ControllerAppSpec(
                    name="cell_scoping", params={"rescope_on_handover": True}
                ),
                ControllerAppSpec(name="prorata_rebalance"),
            ),
        ),
        engine=EngineSpec(channel_draw_mode="fast"),
        grouping=GroupingSpec(policy="preference", num_groups=4),
    )


@register_scenario
def edge_flash_crowd() -> ScenarioSpec:
    """Predictive edge placement stressed by a flash crowd (PR 7 tentpole demo)."""
    return ScenarioSpec(
        name="edge_flash_crowd",
        description=(
            "A 3-server edge fleet under DRR predictive placement and "
            "2-interval horizon reservation: a flash crowd doubles the "
            "population at interval 3, the demand forecasters mispredict, "
            "and reprovision events migrate hot groups across the fleet."
        ),
        seed=11,
        mode="playback",
        num_intervals=6,
        interval_s=150.0,
        topology=TopologySpec(num_cells=4, area_width_m=1200.0, area_height_m=900.0),
        population=PopulationSpec(
            num_users=24,
            favourite_category="News",
            favourite_user_fraction=0.5,
        ),
        catalog=CatalogSpec(num_videos=60),
        controller=ControllerSpec(mode="handover"),
        engine=EngineSpec(channel_draw_mode="fast"),
        grouping=GroupingSpec(policy="preference", num_groups=6),
        edge=EdgeSpec(
            num_servers=3,
            # Deliberately CPU-starved servers (3e9 cycles per 150 s
            # interval) so per-group transcode jobs are *large* relative to
            # capacity: packing quality becomes visible in the utilization
            # and fragmentation series instead of rounding to zero.
            cpu_capacity_cycles_per_s=2.0e7,
            cache_capacity_gbytes=2.0,
        ),
        placement=PlacementSpec(
            strategy="drr",
            horizon_intervals=3,
            mispredict_threshold=0.5,
            reservation_lead_intervals=2,
        ),
        timeline=(FlashCrowd(interval=3, arrivals=24, favourite="Sports"),),
    )
