"""Deterministic lowering of a :class:`ScenarioSpec` to runtime configs.

:func:`compile_spec` is a *pure function*: it touches no global state,
draws no randomness, and two calls with equal specs return equal
:class:`CompiledScenario` values (field-for-field equal configs).  That
purity is what makes scenario runs reproducible from the spec alone, and
it is pinned by the compile-determinism tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.config import SchemeConfig
from repro.scenario.spec import ScenarioSpec
from repro.sim.config import SimulationConfig
from repro.twin.collector import CollectionPolicy


@dataclass(frozen=True)
class CompiledScenario:
    """A spec lowered to the configs the runtime consumes.

    ``sim_config`` fully describes the ground-truth simulator;
    ``scheme_config`` is ``None`` for playback-mode scenarios.  The source
    ``spec`` rides along because the runner still needs its runtime-only
    parts (timeline, churn phases, grouping policy).
    """

    spec: ScenarioSpec
    sim_config: SimulationConfig
    scheme_config: Optional[SchemeConfig]

    @property
    def mode(self) -> str:
        return self.spec.mode


def compile_spec(spec: ScenarioSpec) -> CompiledScenario:
    """Lower ``spec`` to ``SimulationConfig`` (+ ``SchemeConfig``), purely.

    The compiled ``num_intervals`` is the simulator's *capacity*: evaluated
    intervals plus scheme warm-up plus the spec's ``spare_intervals``
    (capacity never changes results — no random draw depends on it — but
    keeping it spec-derived makes the compiled config equal the historical
    hand-wired ones field-for-field).
    """
    warmup = spec.scheme.warmup_intervals if spec.mode == "scheme" else 0
    sim_config = SimulationConfig(
        num_users=spec.population.num_users,
        num_videos=spec.catalog.num_videos,
        categories=tuple(spec.catalog.categories),
        zipf_exponent=spec.catalog.zipf_exponent,
        preference_concentration=spec.population.preference_concentration,
        favourite_category=spec.population.favourite_category,
        favourite_user_fraction=spec.population.favourite_user_fraction,
        favourite_boost=spec.population.favourite_boost,
        preference_learning_rate=spec.population.preference_learning_rate,
        num_intervals=spec.num_intervals + warmup + spec.spare_intervals,
        interval_s=spec.interval_s,
        area_width_m=spec.topology.area_width_m,
        area_height_m=spec.topology.area_height_m,
        num_buildings=spec.mobility.num_buildings,
        num_base_stations=spec.topology.num_cells,
        tx_power_dbm=spec.topology.tx_power_dbm,
        rb_bandwidth_hz=spec.topology.rb_bandwidth_hz,
        num_resource_blocks=spec.topology.rb_budget_blocks,
        stream_bandwidth_hz=spec.topology.stream_bandwidth_hz,
        implementation_loss=spec.topology.implementation_loss,
        channel_sample_period_s=spec.topology.channel_sample_period_s,
        channel_draw_mode=spec.engine.channel_draw_mode,
        playback_workers=spec.engine.playback_workers,
        shard_stages=spec.engine.shard_stages,
        shared_memory_buffers=spec.engine.shared_memory_buffers,
        controller_mode=spec.controller.mode,
        handover_hysteresis_db=spec.controller.handover_hysteresis_db,
        handover_time_to_trigger_s=spec.controller.handover_time_to_trigger_s,
        handover_sample_period_s=spec.controller.handover_sample_period_s,
        handover_load_bias_db=spec.controller.handover_load_bias_db,
        cell_overload_threshold=spec.controller.cell_overload_threshold,
        cell_underload_threshold=spec.controller.cell_underload_threshold,
        cell_rebalance_fraction=spec.controller.cell_rebalance_fraction,
        controller_apps=(
            tuple((app.name, dict(app.params)) for app in spec.controller.apps)
            if spec.controller.apps
            else None
        ),
        edge_servers=spec.edge.num_servers,
        cache_capacity_gbytes=spec.edge.cache_capacity_gbytes,
        cpu_capacity_cycles_per_s=spec.edge.cpu_capacity_cycles_per_s,
        cycles_per_pixel=spec.edge.cycles_per_pixel,
        remote_fetch_penalty_s=spec.edge.remote_fetch_penalty_s,
        placement_strategy=spec.placement.strategy,
        placement_horizon=spec.placement.horizon_intervals,
        placement_mispredict_threshold=spec.placement.mispredict_threshold,
        placement_reprovision=spec.placement.reprovision,
        recommendation_popularity_weight=spec.catalog.recommendation_popularity_weight,
        popularity_update_rate=spec.catalog.popularity_update_rate,
        swipe_gap_s=spec.catalog.swipe_gap_s,
        collection_policy=CollectionPolicy(
            period_multiplier=spec.engine.collection_period_multiplier,
            drop_probability=spec.engine.collection_drop_probability,
            delay_s=spec.engine.collection_delay_s,
        ),
        feature_steps=spec.engine.feature_steps,
        seed=spec.seed,
    )
    scheme_config: Optional[SchemeConfig] = None
    if spec.mode == "scheme":
        scheme_config = SchemeConfig(
            warmup_intervals=spec.scheme.warmup_intervals,
            cnn_epochs=spec.scheme.cnn_epochs,
            ddqn_episodes=spec.scheme.ddqn_episodes,
            mc_rollouts=spec.scheme.mc_rollouts,
            min_groups=spec.scheme.min_groups,
            max_groups=spec.scheme.max_groups,
            feature_steps=spec.engine.feature_steps,
            seed=spec.scheme.seed,
        )
    return CompiledScenario(spec=spec, sim_config=sim_config, scheme_config=scheme_config)
