"""Digital twin-assisted resource demand prediction for multicast short video streaming.

A from-scratch Python reproduction of X. Huang, W. Wu and X. Shen,
*"Digital Twin-Assisted Resource Demand Prediction for Multicast Short
Video Streaming"* (IEEE ICDCS 2023, arXiv:2306.05946).

The package is organised as the paper's system is:

* substrates -- :mod:`repro.ml` (NumPy neural-network framework),
  :mod:`repro.rl` (DDQN), :mod:`repro.cluster` (K-means++),
  :mod:`repro.video`, :mod:`repro.behavior`, :mod:`repro.mobility`,
  :mod:`repro.net`, :mod:`repro.edge`, :mod:`repro.twin`,
  :mod:`repro.dataset`, :mod:`repro.sim` and :mod:`repro.predict`;
* the paper's contribution -- :mod:`repro.core`, whose
  :class:`~repro.core.pipeline.DTResourcePredictionScheme` runs the full
  predict-then-observe loop against the simulator.

Quickstart — the declarative scenario API (one spec → compile → run
pipeline behind every entry point)::

    from repro.scenario import run_scenario, scenario_names

    print(scenario_names())
    result = run_scenario("campus_fig3", {"num_intervals": 3})
    print(f"mean radio-demand prediction accuracy: "
          f"{result.summary['mean_radio_accuracy']:.2%}")

or hand-wired against the runtime directly::

    from repro import DTResourcePredictionScheme, SchemeConfig, SimulationConfig, StreamingSimulator

    simulator = StreamingSimulator(SimulationConfig(num_users=20, num_intervals=5))
    scheme = DTResourcePredictionScheme(simulator, SchemeConfig(warmup_intervals=2))
    result = scheme.run(num_intervals=3)
    print(f"mean radio-demand prediction accuracy: {result.mean_radio_accuracy():.2%}")
"""

from repro.core import (
    DTResourcePredictionScheme,
    EvaluationResult,
    GroupDemandPredictor,
    IntervalEvaluation,
    MulticastGroupConstructor,
    SchemeConfig,
    UDTFeatureCompressor,
    VideoRecommender,
)
from repro.scenario import (
    RunResult,
    ScenarioRunner,
    ScenarioSpec,
    compile_spec,
    get_scenario,
    run_scenario,
    scenario_names,
)
from repro.sim import SimulationConfig, StreamingSimulator
from repro.twin import DigitalTwinManager, UserDigitalTwin

__version__ = "1.1.0"

__all__ = [
    "DTResourcePredictionScheme",
    "DigitalTwinManager",
    "EvaluationResult",
    "GroupDemandPredictor",
    "IntervalEvaluation",
    "MulticastGroupConstructor",
    "RunResult",
    "ScenarioRunner",
    "ScenarioSpec",
    "SchemeConfig",
    "SimulationConfig",
    "StreamingSimulator",
    "UDTFeatureCompressor",
    "UserDigitalTwin",
    "VideoRecommender",
    "compile_spec",
    "get_scenario",
    "run_scenario",
    "scenario_names",
    "__version__",
]
