"""SNR to spectral-efficiency mapping (CQI / MCS table).

The table follows the 15-level LTE CQI table (QPSK .. 64QAM with varying
code rates).  ``select_mcs`` picks the highest entry whose SNR threshold the
reported SNR satisfies; ``spectral_efficiency`` additionally applies an
implementation-loss factor so realised rates sit below Shannon capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class McsEntry:
    """One modulation-and-coding-scheme level."""

    index: int
    modulation: str
    code_rate: float
    spectral_efficiency_bps_hz: float
    min_snr_db: float


#: LTE CQI table (index 1..15) with approximate SNR switching thresholds.
MCS_TABLE: List[McsEntry] = [
    McsEntry(1, "QPSK", 0.076, 0.1523, -6.7),
    McsEntry(2, "QPSK", 0.12, 0.2344, -4.7),
    McsEntry(3, "QPSK", 0.19, 0.3770, -2.3),
    McsEntry(4, "QPSK", 0.30, 0.6016, 0.2),
    McsEntry(5, "QPSK", 0.44, 0.8770, 2.4),
    McsEntry(6, "QPSK", 0.59, 1.1758, 4.3),
    McsEntry(7, "16QAM", 0.37, 1.4766, 5.9),
    McsEntry(8, "16QAM", 0.48, 1.9141, 8.1),
    McsEntry(9, "16QAM", 0.60, 2.4063, 10.3),
    McsEntry(10, "64QAM", 0.45, 2.7305, 11.7),
    McsEntry(11, "64QAM", 0.55, 3.3223, 14.1),
    McsEntry(12, "64QAM", 0.65, 3.9023, 16.3),
    McsEntry(13, "64QAM", 0.75, 4.5234, 18.7),
    McsEntry(14, "64QAM", 0.85, 5.1152, 21.0),
    McsEntry(15, "64QAM", 0.93, 5.5547, 22.7),
]


def select_mcs(snr_db: float, table: Optional[List[McsEntry]] = None) -> Optional[McsEntry]:
    """Highest MCS whose threshold is satisfied, or ``None`` when in outage."""
    table = table if table is not None else MCS_TABLE
    feasible = [entry for entry in table if snr_db >= entry.min_snr_db]
    if not feasible:
        return None
    return max(feasible, key=lambda entry: entry.spectral_efficiency_bps_hz)


def spectral_efficiency(
    snr_db: float,
    implementation_loss: float = 1.0,
    table: Optional[List[McsEntry]] = None,
) -> float:
    """Achievable spectral efficiency (bit/s/Hz) at ``snr_db``.

    Returns zero when the SNR is below the lowest MCS threshold (outage).
    ``implementation_loss`` in (0, 1] scales the tabulated efficiency.
    """
    if not 0.0 < implementation_loss <= 1.0:
        raise ValueError("implementation_loss must be in (0, 1]")
    entry = select_mcs(snr_db, table)
    if entry is None:
        return 0.0
    return entry.spectral_efficiency_bps_hz * implementation_loss
