"""Hysteresis + time-to-trigger handover policy.

Cellular handover is event-driven: a user hands over to a neighbour cell
only when the neighbour's measured signal exceeds the serving cell's by a
hysteresis margin *continuously* for a time-to-trigger window (the LTE "A3"
event).  This module evaluates that rule over batched mid-interval
measurement samples -- one mean-SNR tensor of shape ``(times, users,
cells)`` built from the vectorized ``positions()`` / ``mean_snr_db_batch``
paths -- instead of the boundary-only strongest-cell argmax the simulator
used before.

The policy itself is pure and deterministic: identical measurement inputs
produce the identical decision sequence, which is what the controller's
determinism guarantees (same seed, same handover events) rest on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.timegrid import time_grid

#: Tolerance used when comparing float sample times against the
#: time-to-trigger window (arange-produced times are exact multiples of the
#: sample period, but guard against accumulated float error anyway).
_TIME_EPS = 1e-9


@dataclass(frozen=True)
class HandoverConfig:
    """Parameters of the A3-style handover rule.

    ``hysteresis_db`` is the margin a neighbour must hold over the serving
    cell, ``time_to_trigger_s`` how long the margin must hold continuously,
    and ``sample_period_s`` the measurement period within an interval.

    ``load_bias_db`` makes the rule load-aware: callers pass a per-cell
    bias vector into :meth:`HandoverPolicy.evaluate` (the controller derives
    it as ``-load_bias_db`` for every overloaded cell), and the rule runs on
    the biased measurements.  An overloaded candidate therefore needs an
    extra ``load_bias_db`` of genuine margin to attract a handover, while
    users camped on an overloaded cell leave it that much more readily.  The
    default ``0.0`` disables the bias entirely and preserves the pure-SNR
    decision sequence bit-for-bit.
    """

    hysteresis_db: float = 3.0
    time_to_trigger_s: float = 10.0
    sample_period_s: float = 5.0
    load_bias_db: float = 0.0

    def __post_init__(self) -> None:
        if self.hysteresis_db < 0:
            raise ValueError("hysteresis_db must be non-negative")
        if self.time_to_trigger_s < 0:
            raise ValueError("time_to_trigger_s must be non-negative")
        if self.sample_period_s <= 0:
            raise ValueError("sample_period_s must be positive")
        if self.load_bias_db < 0:
            raise ValueError("load_bias_db must be non-negative")


@dataclass
class StreakState:
    """Per-user A3 streak state carried across evaluation batches.

    ``candidate[u]`` is the cell index whose margin streak user ``u`` is
    accumulating (``-1`` when none) and ``entered_at_s[u]`` the absolute
    time the streak began.  Persisting this between intervals keeps the
    time-to-trigger window *continuous*: a margin that establishes late in
    one interval and completes early in the next still triggers.

    **Keying.**  When ``user_ids`` is set the state is keyed by user id:
    row ``u`` belongs to ``user_ids[u]``, and :meth:`aligned_to` remaps the
    carried rows onto any later user-id batch — users that joined get a
    fresh streak, users that left are dropped.  A state *without*
    ``user_ids`` is purely positional: carrying it across batches is only
    sound while the user array never changes, because after a mid-run
    removal the persisted candidate/TTT rows silently apply to the wrong
    users.  Id-keyed carry is therefore what every churn-capable caller
    (the RAN controller) uses.
    """

    candidate: np.ndarray
    entered_at_s: np.ndarray
    #: User id of each row; ``None`` marks a legacy positional state.
    user_ids: Optional[np.ndarray] = None

    @classmethod
    def fresh(cls, num_users: int) -> "StreakState":
        return cls(
            candidate=np.full(num_users, -1, dtype=int),
            entered_at_s=np.zeros(num_users),
        )

    @classmethod
    def keyed(cls, user_ids: Sequence[int]) -> "StreakState":
        """A fresh state keyed by ``user_ids`` (one row per user, no streaks)."""
        ids = np.asarray(user_ids, dtype=int)
        return cls(
            candidate=np.full(ids.shape[0], -1, dtype=int),
            entered_at_s=np.zeros(ids.shape[0]),
            user_ids=ids,
        )

    def aligned_to(self, user_ids: Sequence[int]) -> "StreakState":
        """Rows of this state remapped onto ``user_ids`` (churn-safe carry).

        Each requested user keeps their carried ``(candidate, entered_at)``
        row if present, and starts a fresh ``(-1, 0.0)`` streak otherwise;
        carried rows whose user is absent from ``user_ids`` are dropped.
        Requires an id-keyed state (``user_ids`` set).
        """
        if self.user_ids is None:
            raise ValueError(
                "aligned_to() needs an id-keyed StreakState; build one with "
                "StreakState.keyed() or evaluate(..., user_ids=...)"
            )
        ids = np.asarray(user_ids, dtype=int)
        row_of = {int(uid): row for row, uid in enumerate(self.user_ids)}
        candidate = np.full(ids.shape[0], -1, dtype=int)
        entered_at = np.zeros(ids.shape[0])
        for row, uid in enumerate(ids):
            carried = row_of.get(int(uid))
            if carried is not None:
                candidate[row] = self.candidate[carried]
                entered_at[row] = self.entered_at_s[carried]
        return StreakState(candidate=candidate, entered_at_s=entered_at, user_ids=ids)

    def without(self, user_id: int) -> "StreakState":
        """This state minus ``user_id``'s row (no-op when absent).

        Dropping the row resets the user: the next :meth:`aligned_to` call
        backfills a fresh ``(-1, 0.0)`` streak for them, which is exactly
        the (re-)attach semantics the controller wants.
        """
        if self.user_ids is None:
            raise ValueError("without() needs an id-keyed StreakState")
        keep = self.user_ids != int(user_id)
        if keep.all():
            return self
        return StreakState(
            candidate=self.candidate[keep],
            entered_at_s=self.entered_at_s[keep],
            user_ids=self.user_ids[keep],
        )

    def streak_of(self, user_id: int) -> Tuple[int, float]:
        """``(candidate, entered_at_s)`` of one user (fresh when unknown)."""
        if self.user_ids is None:
            raise ValueError("streak_of() needs an id-keyed StreakState")
        rows = np.flatnonzero(self.user_ids == int(user_id))
        if rows.size == 0:
            return -1, 0.0
        row = int(rows[0])
        return int(self.candidate[row]), float(self.entered_at_s[row])


@dataclass(frozen=True)
class HandoverDecision:
    """One triggered handover, in measurement-index coordinates.

    ``user_index`` / ``source_index`` / ``target_index`` index into the
    ``user_ids`` / cell axes the policy was evaluated with; the controller
    translates them to real user and cell ids.  ``margin_db`` is the
    measured target-over-source margin at the trigger sample.
    """

    time_s: float
    user_index: int
    source_index: int
    target_index: int
    margin_db: float


def measure_mean_snr(base_stations: Sequence, positions: np.ndarray) -> np.ndarray:
    """Mean-SNR measurement tensor for a batch of user positions.

    ``positions`` has shape ``(times, users, 2)``; the result has shape
    ``(times, users, cells)`` with cells in the order of ``base_stations``.
    One vectorized ``mean_snr_db_batch`` call per cell over the flattened
    positions -- no per-(user, sample) Python work.
    """
    positions = np.asarray(positions, dtype=np.float64)
    if positions.ndim != 3 or positions.shape[-1] != 2:
        raise ValueError("positions must have shape (times, users, 2)")
    num_times, num_users = positions.shape[:2]
    flat = positions.reshape(num_times * num_users, 2)
    snr = np.stack([bs.mean_snr_db_batch(flat) for bs in base_stations], axis=1)
    return snr.reshape(num_times, num_users, len(base_stations))


class HandoverPolicy:
    """Evaluates the hysteresis + time-to-trigger rule over sample batches."""

    def __init__(self, config: HandoverConfig | None = None) -> None:
        self.config = config if config is not None else HandoverConfig()

    def measurement_times(self, start_s: float, end_s: float) -> np.ndarray:
        """Measurement sample times covering ``[start_s, end_s)``.

        Built from an integer step count (:func:`repro.timegrid.time_grid`)
        rather than float-step ``np.arange``, so long-horizon grids never
        gain or drop a sample to accumulated float error — a spurious extra
        sample would break the ``(T, U, C)`` measurement reshape and shift
        every time-to-trigger window by one period.
        """
        if end_s <= start_s:
            raise ValueError("end_s must be greater than start_s")
        return time_grid(start_s, end_s, self.config.sample_period_s)

    def evaluate(
        self,
        times_s: Sequence[float],
        snr_db: np.ndarray,
        serving_index: Sequence[int],
        state: "StreakState | None" = None,
        user_ids: "Sequence[int] | None" = None,
        cell_bias_db: "Sequence[float] | None" = None,
    ) -> Tuple[List[HandoverDecision], np.ndarray, StreakState]:
        """Walk the measurement samples and trigger handovers.

        Parameters
        ----------
        times_s:
            Sample times, shape ``(T,)``, strictly increasing.
        snr_db:
            Mean-SNR tensor, shape ``(T, U, C)``.
        serving_index:
            Serving-cell index per user at the first sample, shape ``(U,)``.
        state:
            Streak state carried over from the previous batch (fresh state
            when omitted).  Passing the returned state back in keeps
            time-to-trigger windows continuous across batch boundaries.
        user_ids:
            User id of each measurement column, shape ``(U,)``.  When given,
            the carried ``state`` is remapped *by id* onto this batch
            (:meth:`StreakState.aligned_to`) and the returned state is
            id-keyed — the churn-safe way to persist streaks while users
            join and leave between batches.  Without it, ``state`` is
            applied positionally and must describe the exact same user
            array as this batch.
        cell_bias_db:
            Optional per-cell additive bias, shape ``(C,)``, applied to the
            whole measurement tensor before the rule runs (load-aware
            handover: an overloaded cell carries a negative bias, so joining
            it needs extra genuine margin and leaving it needs less).  The
            reported ``margin_db`` of each decision is the *effective*
            (biased) margin that triggered it.  ``None`` keeps the pure-SNR
            rule bit-for-bit.

        Returns ``(decisions, final_serving_index, state)``.  Decisions are
        ordered by (time, user index); a user can hand over more than once
        if the margin condition re-establishes towards another cell.  The
        walk is vectorized across users -- one pass over the time axis with
        array ops, no per-user Python loop.
        """
        times = np.asarray(times_s, dtype=np.float64)
        snr = np.asarray(snr_db, dtype=np.float64)
        serving = np.array(serving_index, dtype=int).copy()
        if snr.ndim != 3:
            raise ValueError("snr_db must have shape (times, users, cells)")
        if times.shape[0] != snr.shape[0] or serving.shape[0] != snr.shape[1]:
            raise ValueError("times_s, snr_db and serving_index shapes disagree")
        if cell_bias_db is not None:
            bias = np.asarray(cell_bias_db, dtype=np.float64)
            if bias.shape != (snr.shape[2],):
                raise ValueError("cell_bias_db must have one entry per cell")
            if np.any(bias):
                snr = snr + bias[None, None, :]
        num_users = serving.shape[0]
        ids = None if user_ids is None else np.asarray(user_ids, dtype=int)
        if ids is not None:
            if ids.shape[0] != num_users:
                raise ValueError("user_ids and serving_index shapes disagree")
            if state is None:
                state = StreakState.keyed(ids)
            elif state.user_ids is not None:
                state = state.aligned_to(ids)
            elif state.candidate.shape[0] == num_users:
                # Positional state adopted as-is: the caller vouches that its
                # rows line up with this batch; from here on it is id-keyed.
                state = StreakState(
                    candidate=state.candidate,
                    entered_at_s=state.entered_at_s,
                    user_ids=ids,
                )
            else:
                raise ValueError(
                    "positional state and user_ids shapes disagree; carry an "
                    "id-keyed StreakState across batches with churn"
                )
        else:
            state = state if state is not None else StreakState.fresh(num_users)
            # A keyed state applied positionally keeps its keying on return.
            ids = state.user_ids
        if state.candidate.shape[0] != num_users:
            raise ValueError("state and serving_index shapes disagree")
        if num_users == 0 or times.shape[0] == 0 or snr.shape[2] < 2:
            return [], serving, state

        users = np.arange(num_users)
        candidate = state.candidate.copy()
        entered_at = state.entered_at_s.copy()
        ttt = self.config.time_to_trigger_s
        decisions: List[HandoverDecision] = []

        for step, now in enumerate(times):
            sample = snr[step]  # (U, C)
            best = np.argmax(sample, axis=1)
            margin = sample[users, best] - sample[users, serving]
            qualifies = (best != serving) & (margin > self.config.hysteresis_db)
            # A new candidate streak starts whenever the best neighbour
            # changes or the margin condition (re-)establishes.
            restarted = qualifies & (best != candidate)
            entered_at = np.where(restarted, now, entered_at)
            candidate = np.where(qualifies, best, -1)
            triggered = qualifies & (now - entered_at + _TIME_EPS >= ttt)
            for user in np.flatnonzero(triggered):
                decisions.append(
                    HandoverDecision(
                        time_s=float(now),
                        user_index=int(user),
                        source_index=int(serving[user]),
                        target_index=int(best[user]),
                        margin_db=float(margin[user]),
                    )
                )
            serving = np.where(triggered, best, serving)
            candidate = np.where(triggered, -1, candidate)
        return (
            decisions,
            serving,
            StreakState(candidate=candidate, entered_at_s=entered_at, user_ids=ids),
        )
