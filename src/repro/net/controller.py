"""Event-driven multi-cell RAN controller.

The controller owns two pieces of network state the simulator used to treat
as implicit: which cell serves each user, and how multicast groups map onto
cells.  It is driven by records flowing through its own
:class:`repro.sim.events.EventQueue` instance (the same event machinery the
simulation substrate exposes), which serialises every state change into one
time-ordered, logged stream:

* :class:`HandoverEvent` -- a user's serving cell changes after the
  hysteresis + time-to-trigger rule (:mod:`repro.net.handover`) fires on
  mid-interval measurement samples,
* :class:`GroupScopeEvent` -- a logical multicast group splits across (or
  merges back into fewer) cells because members crossed a cell boundary; a
  multicast channel is per-cell, so the worst-member rule is scoped to the
  serving base station,
* :class:`CellLoadEvent` -- a cell's resource-block demand versus its
  budget at the end of an interval, after which the controller rebalances
  budgets from underloaded towards overloaded cells.

Everything is deterministic: the controller consumes no randomness, so for
identical seeds the simulator produces the identical event sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.net.handover import (
    HandoverConfig,
    HandoverPolicy,
    StreakState,
    measure_mean_snr,
)


@dataclass(frozen=True)
class HandoverEvent:
    """A user's serving cell changed."""

    time_s: float
    user_id: int
    source_cell: int
    target_cell: int
    margin_db: float


@dataclass(frozen=True)
class GroupScopeEvent:
    """A logical group's cell footprint changed.

    ``kind`` is ``"split"`` (more cells than before), ``"merge"`` (fewer)
    or ``"move"`` (same number of cells but a different set -- e.g. every
    member handed over from cell 0 to cell 1).
    """

    time_s: float
    logical_group_id: int
    kind: str
    cells: Tuple[int, ...]
    previous_cells: Tuple[int, ...]


@dataclass(frozen=True)
class CellLoadEvent:
    """End-of-interval load report of one cell."""

    time_s: float
    cell_id: int
    demand_blocks: float
    budget_blocks: float
    utilization: float
    overloaded: bool
    outage_groups: int = 0


@dataclass
class CellState:
    """Mutable per-cell bookkeeping the controller maintains."""

    cell_id: int
    rb_budget: float
    rb_demand: float = 0.0
    served_users: int = 0
    handovers_in: int = 0
    handovers_out: int = 0
    outage_groups: int = 0

    @property
    def utilization(self) -> float:
        return cell_utilization(self.rb_demand, self.rb_budget)


def cell_utilization(demand_blocks: float, budget_blocks: float) -> float:
    """Demand over budget; ``inf`` for a zero-budget cell with demand."""
    if budget_blocks > 0:
        return demand_blocks / budget_blocks
    return 0.0 if demand_blocks <= 0 else float("inf")


@dataclass(frozen=True)
class ControllerConfig:
    """Controller parameters.

    ``overload_threshold`` / ``underload_threshold`` classify cells by
    resource-block utilization; each interval the controller moves at most
    ``rebalance_fraction`` of an underloaded cell's budget towards
    overloaded cells (total budget is conserved).
    """

    handover: HandoverConfig = field(default_factory=HandoverConfig)
    overload_threshold: float = 0.9
    underload_threshold: float = 0.5
    rebalance_fraction: float = 0.25

    def __post_init__(self) -> None:
        if not 0.0 < self.underload_threshold < self.overload_threshold:
            raise ValueError(
                "thresholds must satisfy 0 < underload_threshold < overload_threshold"
            )
        if not 0.0 <= self.rebalance_fraction <= 1.0:
            raise ValueError("rebalance_fraction must be in [0, 1]")


class RanController:
    """Owns user association and per-cell multicast group state."""

    def __init__(
        self,
        base_stations: Sequence,
        config: Optional[ControllerConfig] = None,
    ) -> None:
        if not base_stations:
            raise ValueError("need at least one base station")
        self.config = config if config is not None else ControllerConfig()
        self.base_stations = list(base_stations)
        self.cell_ids: List[int] = [bs.bs_id for bs in self.base_stations]
        if len(set(self.cell_ids)) != len(self.cell_ids):
            raise ValueError("base station ids must be unique")
        self._cell_index = {cid: index for index, cid in enumerate(self.cell_ids)}
        self.policy = HandoverPolicy(self.config.handover)
        # Imported here, not at module level: repro.net must stay importable
        # without repro.sim (whose config imports repro.twin, which imports
        # repro.net -- a module-level import would close that cycle).
        from repro.sim.events import EventQueue

        self.events = EventQueue()
        self.serving_cell: Dict[int, int] = {}
        self.cell_states: Dict[int, CellState] = {
            bs.bs_id: CellState(cell_id=bs.bs_id, rb_budget=float(bs.config.num_resource_blocks))
            for bs in self.base_stations
        }
        self.handover_log: List[HandoverEvent] = []
        self.group_event_log: List[GroupScopeEvent] = []
        self.load_event_log: List[CellLoadEvent] = []
        self._group_cells: Dict[int, FrozenSet[int]] = {}
        #: Cells flagged overloaded by the most recent load report, captured
        #: *before* budget rebalancing (which by construction pulls a cell
        #: back to the threshold whenever donors suffice — measuring after
        #: it would hide exactly the overloads the bias should react to).
        self._last_overloaded: FrozenSet[int] = frozenset()
        #: Per-user A3 streaks carried across intervals, keyed *by user id*
        #: (not by position): the population churns via attach/detach, and a
        #: positional carry would silently apply one user's candidate/TTT
        #: row to another after a mid-run removal.  Keyed carry keeps
        #: time-to-trigger windows continuous across interval boundaries
        #: for exactly the users that persist.
        self._streaks: StreakState = StreakState.keyed([])

    # ------------------------------------------------------------ association
    def attach_user(self, user_id: int, cell_id: int) -> None:
        """Associate a (new) user with ``cell_id``."""
        if cell_id not in self.cell_states:
            raise KeyError(f"unknown cell {cell_id}")
        previous = self.serving_cell.get(user_id)
        if previous is not None:
            self.cell_states[previous].served_users -= 1
        self.serving_cell[user_id] = cell_id
        self.cell_states[cell_id].served_users += 1
        # Dropping the row resets the streak: the next evaluation's
        # id-keyed remap backfills a fresh (-1, 0.0) entry for this user.
        self._streaks = self._streaks.without(user_id)

    def detach_user(self, user_id: int) -> None:
        if user_id not in self.serving_cell:
            raise KeyError(f"unknown user {user_id}")
        self.cell_states[self.serving_cell.pop(user_id)].served_users -= 1
        self._streaks = self._streaks.without(user_id)

    def users_of_cell(self, cell_id: int) -> List[int]:
        return sorted(uid for uid, cid in self.serving_cell.items() if cid == cell_id)

    def cell_bias_db(self) -> Optional[np.ndarray]:
        """Load-aware handover bias per cell (``None`` when disabled).

        Every cell whose utilization (as of the most recent load report, or
        an operator budget override such as an outage drill) exceeds the
        overload threshold is discounted by ``handover.load_bias_db``:
        candidates on it need that much extra genuine margin, and its own
        users leave it that much more readily.  With the default
        ``load_bias_db == 0`` this returns ``None`` and the pure-SNR
        decision sequence is preserved bit-for-bit.
        """
        bias_db = self.config.handover.load_bias_db
        if bias_db <= 0:
            return None
        bias = np.zeros(len(self.cell_ids))
        for index, cell_id in enumerate(self.cell_ids):
            # Overloaded in the last (pre-rebalance) load report, or over the
            # threshold right now (e.g. an operator outage drill between
            # intervals drove the budget to zero under live demand).
            if (
                cell_id in self._last_overloaded
                or self.cell_states[cell_id].utilization > self.config.overload_threshold
            ):
                bias[index] = -bias_db
        return bias

    # -------------------------------------------------------------- handover
    def observe_interval(
        self,
        times_s: np.ndarray,
        positions: np.ndarray,
        user_ids: Sequence[int],
        end_s: float,
    ) -> List[HandoverEvent]:
        """Evaluate the handover rule over one interval's measurements.

        ``positions`` has shape ``(times, users, 2)`` aligned with
        ``user_ids``.  Triggered handovers are scheduled on the event bus at
        their trigger times and applied (association + per-cell counters) as
        the bus fires them; the fired events of this interval are returned.
        """
        user_ids = list(user_ids)
        fired: List[HandoverEvent] = []
        if user_ids and len(self.cell_ids) > 1 and np.asarray(times_s).size:
            snr = measure_mean_snr(self.base_stations, positions)
            serving_index = np.array(
                [self._cell_index[self.serving_cell[uid]] for uid in user_ids]
            )
            # The carried state is remapped by user id inside evaluate(), so
            # churn between intervals (attach/detach) never shifts one
            # user's streak onto another's measurement column.
            decisions, _, self._streaks = self.policy.evaluate(
                times_s,
                snr,
                serving_index,
                state=self._streaks,
                user_ids=user_ids,
                cell_bias_db=self.cell_bias_db(),
            )
            for decision in decisions:
                event = HandoverEvent(
                    time_s=decision.time_s,
                    user_id=user_ids[decision.user_index],
                    source_cell=self.cell_ids[decision.source_index],
                    target_cell=self.cell_ids[decision.target_index],
                    margin_db=decision.margin_db,
                )
                self.events.schedule(
                    event.time_s,
                    name="handover",
                    payload=event,
                    callback=lambda event=event, fired=fired: self._apply_handover(
                        event, fired
                    ),
                )
        self.events.run_until(end_s)
        return fired

    def _apply_handover(self, event: HandoverEvent, fired: List[HandoverEvent]) -> None:
        self.serving_cell[event.user_id] = event.target_cell
        self.cell_states[event.source_cell].served_users -= 1
        self.cell_states[event.source_cell].handovers_out += 1
        self.cell_states[event.target_cell].served_users += 1
        self.cell_states[event.target_cell].handovers_in += 1
        self.handover_log.append(event)
        fired.append(event)

    # ------------------------------------------------------- group management
    def scoped_group_id(self, logical_group_id: int, cell_id: int) -> int:
        """Stable id of a logical group's per-cell slice.

        With a single cell the scoped id equals the logical id, so
        single-cell deployments see unchanged group ids.
        """
        return logical_group_id * len(self.cell_ids) + self._cell_index[cell_id]

    def logical_group_id(self, scoped_group_id: int) -> int:
        return scoped_group_id // len(self.cell_ids)

    def _split_by_cell(self, member_ids: Sequence[int]) -> Dict[int, List[int]]:
        by_cell: Dict[int, List[int]] = {}
        for uid in member_ids:
            by_cell.setdefault(self.serving_cell[uid], []).append(uid)
        return by_cell

    def preview_scope(
        self, grouping: Mapping[int, Sequence[int]]
    ) -> Tuple[Dict[int, List[int]], Dict[int, int]]:
        """Non-mutating view of :meth:`scope_grouping`.

        Returns the ``(scoped_grouping, cell_of_group)`` the next
        :meth:`scope_grouping` call would produce under the current
        associations, without emitting :class:`GroupScopeEvent` records or
        updating the per-group footprint state.  The DT prediction layer
        uses it to predict demand against the per-cell groups the simulator
        will actually play.
        """
        scoped: Dict[int, List[int]] = {}
        cell_of_group: Dict[int, int] = {}
        for logical_id, member_ids in grouping.items():
            by_cell = self._split_by_cell(member_ids)
            for cell_id in sorted(by_cell):
                scoped_id = self.scoped_group_id(logical_id, cell_id)
                scoped[scoped_id] = by_cell[cell_id]
                cell_of_group[scoped_id] = cell_id
        return scoped, cell_of_group

    def scope_grouping(
        self, grouping: Mapping[int, Sequence[int]], time_s: float
    ) -> Tuple[Dict[int, List[int]], Dict[int, int], List[GroupScopeEvent]]:
        """Split each logical group by its members' serving cells.

        A multicast channel exists per (group, cell): the worst-member rule
        only spans users the same base station transmits to.  Returns
        ``(scoped_grouping, cell_of_group, scope_events)`` where scoped ids
        come from :meth:`scoped_group_id`.  Footprint changes versus the
        previous interval are emitted as :class:`GroupScopeEvent` records
        through the bus at ``time_s``.
        """
        scoped: Dict[int, List[int]] = {}
        cell_of_group: Dict[int, int] = {}
        fired: List[GroupScopeEvent] = []
        for logical_id, member_ids in grouping.items():
            by_cell = self._split_by_cell(member_ids)
            cells = frozenset(by_cell)
            previous = self._group_cells.get(logical_id, frozenset())
            kind = None
            if not previous:
                kind = "split" if len(cells) > 1 else None
            elif len(cells) > len(previous):
                kind = "split"
            elif len(cells) < len(previous):
                kind = "merge"
            elif cells != previous:
                kind = "move"
            if kind is not None:
                event = GroupScopeEvent(
                    time_s=time_s,
                    logical_group_id=logical_id,
                    kind=kind,
                    cells=tuple(sorted(cells)),
                    previous_cells=tuple(sorted(previous)),
                )
                self.events.schedule(
                    time_s,
                    name=f"group_{kind}",
                    payload=event,
                    callback=lambda event=event, fired=fired: (
                        self.group_event_log.append(event),
                        fired.append(event),
                    ),
                )
            self._group_cells[logical_id] = cells
            for cell_id in sorted(by_cell):
                scoped_id = self.scoped_group_id(logical_id, cell_id)
                scoped[scoped_id] = by_cell[cell_id]
                cell_of_group[scoped_id] = cell_id
        self.events.run_until(time_s)
        return scoped, cell_of_group, fired

    # --------------------------------------------------------- load balancing
    def set_cell_budget(self, cell_id: int, blocks: float) -> None:
        """Operator override of one cell's budget (e.g. an outage drill)."""
        if blocks < 0:
            raise ValueError("blocks must be non-negative")
        self.cell_states[cell_id].rb_budget = float(blocks)

    def total_budget(self) -> float:
        return float(sum(state.rb_budget for state in self.cell_states.values()))

    def rb_budget_by_cell(self) -> Dict[int, float]:
        return {cid: self.cell_states[cid].rb_budget for cid in self.cell_ids}

    def finish_interval(
        self,
        demand_by_cell: Mapping[int, float],
        outage_by_cell: Mapping[int, int],
        time_s: float,
    ) -> Tuple[List[CellLoadEvent], Dict[int, float]]:
        """Record per-cell load, emit load events and rebalance budgets.

        ``demand_by_cell`` carries each cell's finite resource-block demand
        of the interval that just ended; ``outage_by_cell`` the number of
        its groups whose demand was infinite (no decodable MCS).  Returns
        ``(load_events, utilization_by_cell)`` with utilization measured
        against the pre-rebalance budgets.
        """
        fired: List[CellLoadEvent] = []
        utilization: Dict[int, float] = {}
        for cell_id in self.cell_ids:
            state = self.cell_states[cell_id]
            state.rb_demand = float(demand_by_cell.get(cell_id, 0.0))
            state.outage_groups = int(outage_by_cell.get(cell_id, 0))
            utilization[cell_id] = state.utilization
            event = CellLoadEvent(
                time_s=time_s,
                cell_id=cell_id,
                demand_blocks=state.rb_demand,
                budget_blocks=state.rb_budget,
                utilization=state.utilization,
                overloaded=state.utilization > self.config.overload_threshold,
                outage_groups=state.outage_groups,
            )
            self.events.schedule(
                time_s,
                name="cell_load",
                payload=event,
                callback=lambda event=event, fired=fired: (
                    self.load_event_log.append(event),
                    fired.append(event),
                ),
            )
        self.events.run_until(time_s)
        self._last_overloaded = frozenset(
            event.cell_id for event in fired if event.overloaded
        )
        self._rebalance_budgets()
        return fired, utilization

    def _rebalance_budgets(self) -> None:
        """Shift budget from underloaded towards overloaded cells.

        An overloaded cell's deficit is the budget that would bring its
        utilization back to the overload threshold; an underloaded cell
        donates at most ``rebalance_fraction`` of its budget and never so
        much that it would itself cross the overload threshold.  Transfers
        are pro-rata on both sides, so the total budget is conserved.
        """
        over = self.config.overload_threshold
        deficits: Dict[int, float] = {}
        surpluses: Dict[int, float] = {}
        for cell_id in self.cell_ids:
            state = self.cell_states[cell_id]
            utilization = state.utilization
            if utilization > over:
                deficits[cell_id] = state.rb_demand / over - state.rb_budget
            elif utilization < self.config.underload_threshold:
                headroom = state.rb_budget - state.rb_demand / over
                surplus = min(self.config.rebalance_fraction * state.rb_budget, headroom)
                if surplus > 0:
                    surpluses[cell_id] = surplus
        total_deficit = sum(deficits.values())
        total_surplus = sum(surpluses.values())
        transfer = min(total_deficit, total_surplus)
        if transfer <= 0:
            return
        for cell_id, deficit in deficits.items():
            self.cell_states[cell_id].rb_budget += transfer * deficit / total_deficit
        for cell_id, surplus in surpluses.items():
            self.cell_states[cell_id].rb_budget -= transfer * surplus / total_surplus
