"""Event-driven multi-cell RAN controller runtime.

The controller owns two pieces of network state the simulator used to treat
as implicit: which cell serves each user, and how multicast groups map onto
cells.  It is driven by records flowing through its own
:class:`repro.sim.events.EventQueue` instance (the same event machinery the
simulation substrate exposes), which serialises every state change into one
time-ordered, logged stream:

* :class:`HandoverEvent` -- a user's serving cell changes after the
  hysteresis + time-to-trigger rule (:mod:`repro.net.handover`) fires on
  mid-interval measurement samples,
* :class:`GroupScopeEvent` -- a logical multicast group splits across (or
  merges back into fewer) cells because members crossed a cell boundary; a
  multicast channel is per-cell, so the worst-member rule is scoped to the
  serving base station,
* :class:`CellLoadEvent` -- a cell's resource-block demand versus its
  budget at the end of an interval,
* :class:`~repro.net.apps.base.AppEvent` -- anything a controller app
  emits (demotions, budget transfers, ...).

:class:`RanController` itself is a thin *runtime*: association state,
per-cell bookkeeping, scoped-id math and the event log.  Every policy --
which handovers fire, how groups are scoped, how budgets rebalance -- lives
in a pluggable :class:`~repro.net.apps.base.ControllerApp` attached to the
runtime (see :mod:`repro.net.apps`).  The default app stack
(``a3_handover``, ``cell_scoping``, ``prorata_rebalance``) reproduces the
historical monolithic controller bit-for-bit.

Everything is deterministic: the controller consumes no randomness, so for
identical seeds the simulator produces the identical event sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.net.handover import HandoverConfig, StreakState, measure_mean_snr

if TYPE_CHECKING:  # imported lazily at runtime -- see RanController.__init__
    from repro.net.apps.base import AppEvent


@dataclass(frozen=True)
class HandoverEvent:
    """A user's serving cell changed."""

    time_s: float
    user_id: int
    source_cell: int
    target_cell: int
    margin_db: float


@dataclass(frozen=True)
class GroupScopeEvent:
    """A logical group's cell footprint changed.

    ``kind`` is ``"split"`` (more cells than before), ``"merge"`` (fewer)
    or ``"move"`` (same number of cells but a different set -- e.g. every
    member handed over from cell 0 to cell 1).
    """

    time_s: float
    logical_group_id: int
    kind: str
    cells: Tuple[int, ...]
    previous_cells: Tuple[int, ...]


@dataclass(frozen=True)
class CellLoadEvent:
    """End-of-interval load report of one cell."""

    time_s: float
    cell_id: int
    demand_blocks: float
    budget_blocks: float
    utilization: float
    overloaded: bool
    outage_groups: int = 0


@dataclass
class CellState:
    """Mutable per-cell bookkeeping the controller maintains."""

    cell_id: int
    rb_budget: float
    rb_demand: float = 0.0
    served_users: int = 0
    handovers_in: int = 0
    handovers_out: int = 0
    outage_groups: int = 0

    @property
    def utilization(self) -> float:
        return cell_utilization(self.rb_demand, self.rb_budget)


def cell_utilization(demand_blocks: float, budget_blocks: float) -> float:
    """Demand over budget; ``inf`` for a zero-budget cell with demand."""
    if budget_blocks > 0:
        return demand_blocks / budget_blocks
    return 0.0 if demand_blocks <= 0 else float("inf")


@dataclass(frozen=True)
class ControllerConfig:
    """Controller parameters.

    ``overload_threshold`` / ``underload_threshold`` classify cells by
    resource-block utilization; each interval the rebalance app moves at
    most ``rebalance_fraction`` of an underloaded cell's budget towards
    overloaded cells (total budget is conserved).  Apps inherit these
    values unless their per-app params override them.
    """

    handover: HandoverConfig = field(default_factory=HandoverConfig)
    overload_threshold: float = 0.9
    underload_threshold: float = 0.5
    rebalance_fraction: float = 0.25

    def __post_init__(self) -> None:
        if not 0.0 < self.underload_threshold < self.overload_threshold:
            raise ValueError(
                "thresholds must satisfy 0 < underload_threshold < overload_threshold"
            )
        if not 0.0 <= self.rebalance_fraction <= 1.0:
            raise ValueError("rebalance_fraction must be in [0, 1]")


class RanController:
    """Thin controller runtime: association, cell state, event log, apps.

    ``apps`` selects the policy stack: ``None`` builds the default
    (``a3_handover``, ``cell_scoping``, ``prorata_rebalance``), otherwise
    pass a sequence of app names, ``(name, params)`` pairs,
    ``{"name", "params"}`` mappings or live
    :class:`~repro.net.apps.base.ControllerApp` instances.
    """

    def __init__(
        self,
        base_stations: Sequence,
        config: Optional[ControllerConfig] = None,
        apps: Optional[Sequence] = None,
    ) -> None:
        if not base_stations:
            raise ValueError("need at least one base station")
        self.config = config if config is not None else ControllerConfig()
        self.base_stations = list(base_stations)
        self.cell_ids: List[int] = [bs.bs_id for bs in self.base_stations]
        if len(set(self.cell_ids)) != len(self.cell_ids):
            raise ValueError("base station ids must be unique")
        self._cell_index = {cid: index for index, cid in enumerate(self.cell_ids)}
        # Imported here, not at module level: repro.net must stay importable
        # without repro.sim (whose config imports repro.twin, which imports
        # repro.net -- a module-level import would close that cycle).
        from repro.sim.events import EventQueue

        self.events = EventQueue()
        self.serving_cell: Dict[int, int] = {}
        self.cell_states: Dict[int, CellState] = {
            bs.bs_id: CellState(cell_id=bs.bs_id, rb_budget=float(bs.config.num_resource_blocks))
            for bs in self.base_stations
        }
        self.handover_log: List[HandoverEvent] = []
        self.group_event_log: List[GroupScopeEvent] = []
        self.load_event_log: List[CellLoadEvent] = []
        self.app_event_log: List["AppEvent"] = []
        #: Cells flagged overloaded by the most recent load report, captured
        #: *before* budget rebalancing (which by construction pulls a cell
        #: back to the threshold whenever donors suffice — measuring after
        #: it would hide exactly the overloads the bias should react to).
        self._last_overloaded: FrozenSet[int] = frozenset()
        #: Bus-fired events buffered for the caller: scope events emitted
        #: since the last drain (mid-interval re-scopes land here) and app
        #: events of the current interval.
        self._scope_fired: List[GroupScopeEvent] = []
        self._app_fired: List["AppEvent"] = []
        self._handover_sink: Optional[List[HandoverEvent]] = None
        # Deferred import: repro.net.apps.builtin imports this module for
        # the event dataclasses, so the apps package cannot be a module-
        # level import here (and, as with EventQueue above, the runtime
        # must stay importable without the app layer loaded).
        from repro.net.apps import build_app_stack

        self.apps = build_app_stack(apps)
        for app in self.apps:
            app.attach(self)

    # ------------------------------------------------------------------- apps
    def app(self, name: str):
        """The first attached app with registry name ``name`` (or ``None``)."""
        for app in self.apps:
            if app.name == name:
                return app
        return None

    @property
    def policy(self):
        """The A3 handover policy (compat accessor; ``None`` without the app)."""
        app = self.app("a3_handover")
        return app.policy if app is not None else None

    @property
    def _streaks(self) -> StreakState:
        """The A3 app's carried streak state (compat accessor)."""
        app = self.app("a3_handover")
        return app._streaks if app is not None else StreakState.keyed([])

    @property
    def _group_cells(self) -> Dict[int, FrozenSet[int]]:
        """The scoping app's per-group footprints (compat accessor)."""
        app = self.app("cell_scoping")
        return app._group_cells if app is not None else {}

    # ------------------------------------------------------------ association
    def attach_user(self, user_id: int, cell_id: int) -> None:
        """Associate a (new) user with ``cell_id``."""
        if cell_id not in self.cell_states:
            raise KeyError(f"unknown cell {cell_id}")
        previous = self.serving_cell.get(user_id)
        if previous is not None:
            self.cell_states[previous].served_users -= 1
        self.serving_cell[user_id] = cell_id
        self.cell_states[cell_id].served_users += 1
        for app in self.apps:
            app.on_user_attached(user_id)

    def detach_user(self, user_id: int) -> None:
        if user_id not in self.serving_cell:
            raise KeyError(f"unknown user {user_id}")
        self.cell_states[self.serving_cell.pop(user_id)].served_users -= 1
        for app in self.apps:
            app.on_user_detached(user_id)

    def users_of_cell(self, cell_id: int) -> List[int]:
        return sorted(uid for uid, cid in self.serving_cell.items() if cid == cell_id)

    def cell_bias_db(self, bias_db: Optional[float] = None) -> Optional[np.ndarray]:
        """Load-aware handover bias per cell (``None`` when disabled).

        Every cell whose utilization (as of the most recent load report, or
        an operator budget override such as an outage drill) exceeds the
        overload threshold is discounted by ``bias_db`` (defaulting to
        ``handover.load_bias_db``): candidates on it need that much extra
        genuine margin, and its own users leave it that much more readily.
        With the default ``load_bias_db == 0`` this returns ``None`` and
        the pure-SNR decision sequence is preserved bit-for-bit.
        """
        if bias_db is None:
            bias_db = self.config.handover.load_bias_db
        if bias_db <= 0:
            return None
        bias = np.zeros(len(self.cell_ids))
        for index, cell_id in enumerate(self.cell_ids):
            # Overloaded in the last (pre-rebalance) load report, or over the
            # threshold right now (e.g. an operator outage drill between
            # intervals drove the budget to zero under live demand).
            if (
                cell_id in self._last_overloaded
                or self.cell_states[cell_id].utilization > self.config.overload_threshold
            ):
                bias[index] = -bias_db
        return bias

    # -------------------------------------------------------------- handover
    def measurement_times(self, start_s: float, end_s: float) -> np.ndarray:
        """The interval's measurement grid: first app with an opinion wins.

        Without a measurement-driven app (e.g. a stack with no
        ``a3_handover``) the grid is empty and no handovers can fire.
        """
        for app in self.apps:
            times = app.measurement_times(start_s, end_s)
            if times is not None:
                return np.asarray(times, dtype=float)
        return np.zeros(0)

    def observe_interval(
        self,
        times_s: np.ndarray,
        positions: np.ndarray,
        user_ids: Sequence[int],
        end_s: float,
    ) -> List[HandoverEvent]:
        """Feed one interval's measurements to the apps and run the bus.

        ``positions`` has shape ``(times, users, 2)`` aligned with
        ``user_ids``.  Apps schedule :class:`HandoverEvent` records on the
        bus at their trigger times; the runtime applies them (association +
        per-cell counters) as the bus fires and returns this interval's
        fired events.
        """
        user_ids = list(user_ids)
        fired: List[HandoverEvent] = []
        self._handover_sink = fired
        try:
            if user_ids and len(self.cell_ids) > 1 and np.asarray(times_s).size:
                from repro.net.apps.base import MeasurementContext

                snr = measure_mean_snr(self.base_stations, positions)
                ctx = MeasurementContext(
                    times_s=np.asarray(times_s, dtype=float),
                    snr_db=snr,
                    user_ids=user_ids,
                    end_s=end_s,
                )
                for app in self.apps:
                    app.on_measurement(ctx)
            self.events.run_until(end_s)
        finally:
            self._handover_sink = None
        return fired

    def schedule_handover(self, event: HandoverEvent) -> None:
        """Schedule an app-decided handover on the bus at its trigger time."""
        self.events.schedule(
            event.time_s,
            name="handover",
            payload=event,
            callback=lambda event=event: self._apply_handover(event),
        )

    def _apply_handover(self, event: HandoverEvent) -> None:
        self.serving_cell[event.user_id] = event.target_cell
        self.cell_states[event.source_cell].served_users -= 1
        self.cell_states[event.source_cell].handovers_out += 1
        self.cell_states[event.target_cell].served_users += 1
        self.cell_states[event.target_cell].handovers_in += 1
        self.handover_log.append(event)
        if self._handover_sink is not None:
            self._handover_sink.append(event)
        for app in self.apps:
            app.on_handover(event)

    # ------------------------------------------------------- group management
    def scoped_group_id(self, logical_group_id: int, cell_id: int) -> int:
        """Stable id of a logical group's per-cell slice.

        With a single cell the scoped id equals the logical id, so
        single-cell deployments see unchanged group ids.
        """
        return logical_group_id * len(self.cell_ids) + self._cell_index[cell_id]

    def logical_group_id(self, scoped_group_id: int) -> int:
        return scoped_group_id // len(self.cell_ids)

    def _split_by_cell(self, member_ids: Sequence[int]) -> Dict[int, List[int]]:
        by_cell: Dict[int, List[int]] = {}
        for uid in member_ids:
            by_cell.setdefault(self.serving_cell[uid], []).append(uid)
        return by_cell

    def _split_grouping(
        self, grouping: Mapping[int, Sequence[int]]
    ) -> Tuple[Dict[int, List[int]], Dict[int, int]]:
        """The pure per-cell split every scoping path starts from."""
        scoped: Dict[int, List[int]] = {}
        cell_of_group: Dict[int, int] = {}
        for logical_id, member_ids in grouping.items():
            by_cell = self._split_by_cell(member_ids)
            for cell_id in sorted(by_cell):
                scoped_id = self.scoped_group_id(logical_id, cell_id)
                scoped[scoped_id] = by_cell[cell_id]
                cell_of_group[scoped_id] = cell_id
        return scoped, cell_of_group

    def preview_scope(
        self,
        grouping: Mapping[int, Sequence[int]],
        time_s: float = 0.0,
        mean_snr_db=None,
    ) -> Tuple[Dict[int, List[int]], Dict[int, int]]:
        """Non-mutating view of :meth:`scope_grouping`.

        Returns the ``(scoped_grouping, cell_of_group)`` the next
        :meth:`scope_grouping` call would produce under the current
        associations, without emitting events or updating app state
        (apps see ``ctx.preview=True``).  The DT prediction layer uses it
        to predict demand against the per-cell groups the simulator will
        actually play.
        """
        from repro.net.apps.base import ScopeContext

        scoped, cell_of_group = self._split_grouping(grouping)
        ctx = ScopeContext(
            time_s=time_s,
            grouping=grouping,
            scoped=scoped,
            cell_of_group=cell_of_group,
            mean_snr_db=mean_snr_db,
            preview=True,
        )
        for app in self.apps:
            app.on_interval_start(ctx)
        return scoped, cell_of_group

    def scope_grouping(
        self,
        grouping: Mapping[int, Sequence[int]],
        time_s: float,
        mean_snr_db=None,
    ) -> Tuple[Dict[int, List[int]], Dict[int, int], List[GroupScopeEvent]]:
        """Split each logical group by its members' serving cells.

        A multicast channel exists per (group, cell): the worst-member rule
        only spans users the same base station transmits to.  Returns
        ``(scoped_grouping, cell_of_group, scope_events)`` where scoped ids
        come from :meth:`scoped_group_id`.  Apps observe (and may rewrite)
        the scoped grouping via ``on_interval_start``; footprint changes
        versus the previous interval are emitted as
        :class:`GroupScopeEvent` records through the bus at ``time_s``.
        """
        from repro.net.apps.base import ScopeContext

        scoped, cell_of_group = self._split_grouping(grouping)
        ctx = ScopeContext(
            time_s=time_s,
            grouping=grouping,
            scoped=scoped,
            cell_of_group=cell_of_group,
            mean_snr_db=mean_snr_db,
            preview=False,
        )
        for app in self.apps:
            app.on_interval_start(ctx)
        self.events.run_until(time_s)
        return scoped, cell_of_group, self.drain_scope_events()

    def emit_scope_event(self, event: GroupScopeEvent) -> None:
        """Schedule a scope event on the bus; fired events are logged and buffered."""
        self.events.schedule(
            event.time_s,
            name=f"group_{event.kind}",
            payload=event,
            callback=lambda event=event: (
                self.group_event_log.append(event),
                self._scope_fired.append(event),
            ),
        )

    def drain_scope_events(self) -> List[GroupScopeEvent]:
        """Scope events fired since the last drain (mid-interval re-scopes included)."""
        fired, self._scope_fired = self._scope_fired, []
        return fired

    # ------------------------------------------------------------- app events
    def emit_app_event(self, event: AppEvent) -> None:
        """Schedule an app event on the bus; fired events are logged and buffered."""
        self.events.schedule(
            event.time_s,
            name=f"app:{event.app}:{event.name}",
            payload=event,
            callback=lambda event=event: (
                self.app_event_log.append(event),
                self._app_fired.append(event),
            ),
        )

    def drain_app_events(self) -> List[AppEvent]:
        """App events fired since the last drain."""
        fired, self._app_fired = self._app_fired, []
        return fired

    # --------------------------------------------------------- load balancing
    def set_cell_budget(self, cell_id: int, blocks: float) -> None:
        """Operator override of one cell's budget (e.g. an outage drill)."""
        if blocks < 0:
            raise ValueError("blocks must be non-negative")
        self.cell_states[cell_id].rb_budget = float(blocks)

    def total_budget(self) -> float:
        return float(sum(state.rb_budget for state in self.cell_states.values()))

    def rb_budget_by_cell(self) -> Dict[int, float]:
        return {cid: self.cell_states[cid].rb_budget for cid in self.cell_ids}

    def finish_interval(
        self,
        demand_by_cell: Mapping[int, float],
        outage_by_cell: Mapping[int, int],
        time_s: float,
    ) -> Tuple[List[CellLoadEvent], Dict[int, float]]:
        """Record per-cell load, emit load events and run the end hooks.

        ``demand_by_cell`` carries each cell's finite resource-block demand
        of the interval that just ended; ``outage_by_cell`` the number of
        its groups whose demand was infinite (no decodable MCS).  Returns
        ``(load_events, utilization_by_cell)`` with utilization measured
        against the pre-rebalance budgets; budget rebalancing itself is an
        app concern (``on_interval_end``).
        """
        fired: List[CellLoadEvent] = []
        utilization: Dict[int, float] = {}
        for cell_id in self.cell_ids:
            state = self.cell_states[cell_id]
            state.rb_demand = float(demand_by_cell.get(cell_id, 0.0))
            state.outage_groups = int(outage_by_cell.get(cell_id, 0))
            utilization[cell_id] = state.utilization
            event = CellLoadEvent(
                time_s=time_s,
                cell_id=cell_id,
                demand_blocks=state.rb_demand,
                budget_blocks=state.rb_budget,
                utilization=state.utilization,
                overloaded=state.utilization > self.config.overload_threshold,
                outage_groups=state.outage_groups,
            )
            self.events.schedule(
                time_s,
                name="cell_load",
                payload=event,
                callback=lambda event=event, fired=fired: (
                    self.load_event_log.append(event),
                    fired.append(event),
                ),
            )
        self.events.run_until(time_s)
        self._last_overloaded = frozenset(
            event.cell_id for event in fired if event.overloaded
        )
        from repro.net.apps.base import LoadContext

        ctx = LoadContext(
            time_s=time_s,
            load_events=fired,
            utilization=dict(utilization),
            demand_by_cell=dict(demand_by_cell),
            outage_by_cell=dict(outage_by_cell),
        )
        for app in self.apps:
            app.on_interval_end(ctx)
        # Fire anything the end hooks scheduled (e.g. budget-transfer app
        # events); a second run_until at the same time is a no-op otherwise.
        self.events.run_until(time_s)
        return fired, utilization
