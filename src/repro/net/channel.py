"""Downlink channel model.

Per-user SNR is computed from transmit power, log-distance path loss,
log-normal shadowing and (optionally) Rayleigh fast fading over thermal
noise.  The resulting SNR time series is exactly the "channel condition"
attribute the user digital twins collect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

#: Thermal noise power spectral density in dBm/Hz at 290 K.
THERMAL_NOISE_DBM_PER_HZ = -174.0


def snr_db_to_linear(snr_db: float) -> float:
    """Convert a dB value to linear scale."""
    return float(10.0 ** (np.asarray(snr_db, dtype=np.float64) / 10.0))


def snr_linear_to_db(snr_linear: float) -> float:
    """Convert a linear SNR to dB (raises on non-positive input)."""
    snr_linear = float(snr_linear)
    if snr_linear <= 0:
        raise ValueError("linear SNR must be positive")
    return float(10.0 * np.log10(snr_linear))


@dataclass
class ChannelConfig:
    """Parameters of the path-loss / shadowing / fading channel."""

    carrier_frequency_ghz: float = 2.6
    path_loss_exponent: float = 3.5
    reference_distance_m: float = 1.0
    shadowing_std_db: float = 6.0
    rayleigh_fading: bool = True
    noise_figure_db: float = 7.0
    bandwidth_hz: float = 180e3  # one resource block
    min_distance_m: float = 1.0

    def __post_init__(self) -> None:
        if self.carrier_frequency_ghz <= 0:
            raise ValueError("carrier_frequency_ghz must be positive")
        if self.path_loss_exponent < 2.0:
            raise ValueError("path_loss_exponent below free-space (2.0) is not physical")
        if self.reference_distance_m <= 0 or self.min_distance_m <= 0:
            raise ValueError("distances must be positive")
        if self.shadowing_std_db < 0:
            raise ValueError("shadowing_std_db must be non-negative")
        if self.bandwidth_hz <= 0:
            raise ValueError("bandwidth_hz must be positive")

    @property
    def noise_power_dbm(self) -> float:
        """Total noise power over ``bandwidth_hz`` including the noise figure."""
        return (
            THERMAL_NOISE_DBM_PER_HZ
            + 10.0 * np.log10(self.bandwidth_hz)
            + self.noise_figure_db
        )


class ChannelModel:
    """Stochastic downlink channel producing per-sample SNR values."""

    def __init__(self, config: Optional[ChannelConfig] = None, seed: int = 0) -> None:
        self.config = config if config is not None else ChannelConfig()
        # Imported lazily: repro.sim imports the net package at load time.
        from repro.sim.rng import legacy_stream

        self._rng = legacy_stream(seed)

    # ------------------------------------------------------------ path loss
    def _reference_loss_db(self) -> float:
        """Free-space path loss at the reference distance."""
        config = self.config
        return (
            20.0 * np.log10(config.reference_distance_m)
            + 20.0 * np.log10(config.carrier_frequency_ghz * 1e9)
            - 147.55
        )

    def path_loss_db(self, distance_m: float) -> float:
        """Log-distance path loss with a free-space reference term."""
        config = self.config
        distance_m = max(float(distance_m), config.min_distance_m)
        return float(
            self._reference_loss_db()
            + 10.0 * config.path_loss_exponent * np.log10(distance_m / config.reference_distance_m)
        )

    def path_loss_db_batch(self, distances_m) -> np.ndarray:
        """Vectorized :meth:`path_loss_db` over an array of distances."""
        config = self.config
        distances = np.maximum(
            np.asarray(distances_m, dtype=np.float64), config.min_distance_m
        )
        return self._reference_loss_db() + 10.0 * config.path_loss_exponent * np.log10(
            distances / config.reference_distance_m
        )

    # ------------------------------------------------------------------ SNR
    def mean_snr_db(self, tx_power_dbm: float, distance_m: float) -> float:
        """Average SNR (no shadowing / fading) at ``distance_m``."""
        received = tx_power_dbm - self.path_loss_db(distance_m)
        return float(received - self.config.noise_power_dbm)

    def sample_snr_db(
        self,
        tx_power_dbm: float,
        distance_m: float,
        rng: Optional[np.random.Generator] = None,
    ) -> float:
        """Sample an instantaneous SNR including shadowing and fast fading."""
        rng = rng if rng is not None else self._rng
        snr_db = self.mean_snr_db(tx_power_dbm, distance_m)
        if self.config.shadowing_std_db > 0:
            snr_db += float(rng.normal(0.0, self.config.shadowing_std_db))
        if self.config.rayleigh_fading:
            # Rayleigh fading: exponential power gain with unit mean.
            fading_gain = float(rng.exponential(1.0))
            fading_gain = max(fading_gain, 1e-6)
            snr_db += 10.0 * np.log10(fading_gain)
        return float(snr_db)

    def mean_snr_db_batch(self, tx_power_dbm: float, distances_m) -> np.ndarray:
        """Vectorized :meth:`mean_snr_db` over an array of distances."""
        received = tx_power_dbm - self.path_loss_db_batch(distances_m)
        return received - self.config.noise_power_dbm

    def sample_snr_db_batch(
        self,
        tx_power_dbm: float,
        distances_m,
        rng: Optional[np.random.Generator] = None,
        interleaved: bool = True,
    ) -> np.ndarray:
        """Sample one instantaneous SNR per distance (vectorized hot path).

        With ``interleaved=True`` (the default) the shadowing and fading
        draws alternate per sample — exactly the stream a loop of
        :meth:`sample_snr_db` calls consumes — so batched and per-sample
        sampling produce identical values from the same generator state.
        ``interleaved=False`` draws each distribution as one array call,
        which is faster but walks the generator in a different order.

        Callers that need order-independent results (the grouped interval
        engine, process-sharded playback) must pass ``rng`` explicitly —
        the implicit fallback to this channel's own generator reintroduces
        shared mutable draw state across callers.
        """
        rng = rng if rng is not None else self._rng
        distances = np.asarray(distances_m, dtype=np.float64).reshape(-1)
        snr_db = self.mean_snr_db_batch(tx_power_dbm, distances)
        count = distances.shape[0]
        if count == 0:
            return snr_db
        config = self.config
        shadowing = config.shadowing_std_db > 0
        if shadowing and config.rayleigh_fading and interleaved:
            # standard_normal/standard_exponential walk the generator exactly
            # like normal(0, std)/exponential(1) but skip per-call argument
            # processing; scaling by std afterwards is bitwise identical.
            shadow = np.empty(count)
            fading = np.empty(count)
            standard_normal = rng.standard_normal
            standard_exponential = rng.standard_exponential
            for i in range(count):
                shadow[i] = standard_normal()
                fading[i] = standard_exponential()
            snr_db = snr_db + config.shadowing_std_db * shadow
        else:
            if shadowing:
                snr_db = snr_db + rng.normal(0.0, config.shadowing_std_db, size=count)
            fading = (
                rng.exponential(1.0, size=count) if config.rayleigh_fading else None
            )
        if config.rayleigh_fading:
            fading = np.maximum(fading, 1e-6)
            snr_db = snr_db + 10.0 * np.log10(fading)
        return snr_db

    def sample_snr_series_db(
        self,
        tx_power_dbm: float,
        distances_m: Sequence[float],
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Sample one SNR per distance sample (a user's channel-condition trace)."""
        rng = rng if rng is not None else self._rng
        return np.asarray(
            self.sample_snr_db_batch(tx_power_dbm, distances_m, rng=rng)
        )

    def shannon_rate_bps(self, snr_db: float, bandwidth_hz: Optional[float] = None) -> float:
        """Shannon capacity at the given SNR (upper bound used in sanity checks)."""
        bandwidth = bandwidth_hz if bandwidth_hz is not None else self.config.bandwidth_hz
        return float(bandwidth * np.log2(1.0 + snr_db_to_linear(snr_db)))
