"""Built-in controller apps.

Three apps extracted from the historical monolithic controller — together
(in :data:`~repro.net.apps.base.DEFAULT_APP_STACK` order) they reproduce
its behaviour bit-for-bit:

* :class:`A3HandoverApp` (``a3_handover``) — hysteresis + time-to-trigger
  handover with optional load bias.
* :class:`CellScopingApp` (``cell_scoping``) — split/merge/move group
  footprint tracking, optionally re-scoping mid-interval on handover.
* :class:`ProRataRebalanceApp` (``prorata_rebalance``) — pro-rata budget
  rebalancing from underloaded towards overloaded cells.

And two policies only expressible in the app architecture:

* :class:`WeakMemberDemotionApp` (``weak_member_demotion``) — demotes weak
  multicast members to unicast before the worst-member rule prices the
  group.
* :class:`GreedyRebalanceApp` (``greedy_rebalance``) — greedy largest-
  deficit-first budget rebalancing, A/B-comparable against pro-rata.

``ScenarioSpec`` knobs: each app's ``default_params`` are set per stack
entry via ``ControllerSpec.apps`` (e.g. ``--override
controller.apps='[{"name": "weak_member_demotion", "params":
{"rssi_threshold_db": 8.0}}]'``); ``None``-valued params inherit the
corresponding ``ControllerSpec``/``ControllerConfig`` field
(``handover_*`` for ``a3_handover``, ``cell_overload_threshold`` /
``cell_underload_threshold`` / ``cell_rebalance_fraction`` for the
rebalancers).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from repro.net.apps.base import (
    AppEvent,
    ControllerApp,
    LoadContext,
    MeasurementContext,
    ScopeContext,
    register_app,
)
from repro.net.controller import GroupScopeEvent, HandoverEvent
from repro.net.handover import HandoverPolicy, StreakState


@register_app
class A3HandoverApp(ControllerApp):
    """A3 handover: hysteresis + time-to-trigger on mid-interval samples.

    Params (``None`` inherits the runtime's ``ControllerConfig.handover``,
    i.e. the ``ControllerSpec.handover_*`` knobs): ``hysteresis_db``,
    ``time_to_trigger_s``, ``sample_period_s``, ``load_bias_db``.
    """

    name = "a3_handover"
    default_params = {
        "hysteresis_db": None,
        "time_to_trigger_s": None,
        "sample_period_s": None,
        "load_bias_db": None,
    }

    def configure(self) -> None:
        base = self.runtime.config.handover
        overrides = {
            key: float(value) for key, value in self.params.items() if value is not None
        }
        self.config = dataclasses.replace(base, **overrides) if overrides else base
        self.policy = HandoverPolicy(self.config)
        #: Per-user A3 streaks carried across intervals, keyed *by user id*
        #: (not by position): the population churns via attach/detach, and
        #: a positional carry would silently apply one user's candidate/TTT
        #: row to another after a mid-run removal.  Keyed carry keeps
        #: time-to-trigger windows continuous across interval boundaries
        #: for exactly the users that persist.
        self._streaks: StreakState = StreakState.keyed([])

    def on_user_attached(self, user_id: int) -> None:
        # Dropping the row resets the streak: the next evaluation's
        # id-keyed remap backfills a fresh (-1, 0.0) entry for this user.
        self._streaks = self._streaks.without(user_id)

    def on_user_detached(self, user_id: int) -> None:
        self._streaks = self._streaks.without(user_id)

    def measurement_times(self, start_s: float, end_s: float) -> Optional[np.ndarray]:
        return self.policy.measurement_times(start_s, end_s)

    def on_measurement(self, ctx: MeasurementContext) -> None:
        runtime = self.runtime
        serving_index = np.array(
            [runtime._cell_index[runtime.serving_cell[uid]] for uid in ctx.user_ids]
        )
        # The carried state is remapped by user id inside evaluate(), so
        # churn between intervals (attach/detach) never shifts one user's
        # streak onto another's measurement column.
        decisions, _, self._streaks = self.policy.evaluate(
            ctx.times_s,
            ctx.snr_db,
            serving_index,
            state=self._streaks,
            user_ids=ctx.user_ids,
            cell_bias_db=runtime.cell_bias_db(self.config.load_bias_db),
        )
        for decision in decisions:
            runtime.schedule_handover(
                HandoverEvent(
                    time_s=decision.time_s,
                    user_id=ctx.user_ids[decision.user_index],
                    source_cell=runtime.cell_ids[decision.source_index],
                    target_cell=runtime.cell_ids[decision.target_index],
                    margin_db=decision.margin_db,
                )
            )


@register_app
class CellScopingApp(ControllerApp):
    """Tracks per-group cell footprints and emits split/merge/move events.

    Params: ``rescope_on_handover`` (default ``False``) — when enabled, a
    handover firing mid-interval immediately re-scopes the affected user's
    logical group: the footprint diff is evaluated at the handover time and
    any split/merge/move event fires on the bus right there, instead of
    waiting for the next interval start.  The default keeps the historical
    start-of-interval-only behaviour bit-for-bit.
    """

    name = "cell_scoping"
    default_params = {"rescope_on_handover": False}

    def configure(self) -> None:
        self.rescope_on_handover = bool(self.params["rescope_on_handover"])
        self._group_cells: Dict[int, FrozenSet[int]] = {}
        self._group_members: Dict[int, List[int]] = {}

    def on_interval_start(self, ctx: ScopeContext) -> None:
        if ctx.preview:
            return
        for logical_id, member_ids in ctx.grouping.items():
            cells = frozenset(self.runtime._split_by_cell(member_ids))
            self._observe_footprint(logical_id, cells, ctx.time_s)
            self._group_members[logical_id] = list(member_ids)

    def on_handover(self, event: HandoverEvent) -> None:
        if not self.rescope_on_handover:
            return
        for logical_id, members in self._group_members.items():
            if event.user_id in members:
                cells = frozenset(self.runtime._split_by_cell(members))
                self._observe_footprint(logical_id, cells, event.time_s)
                break  # every user belongs to exactly one logical group

    def _observe_footprint(
        self, logical_id: int, cells: FrozenSet[int], time_s: float
    ) -> None:
        previous = self._group_cells.get(logical_id, frozenset())
        kind = None
        if not previous:
            kind = "split" if len(cells) > 1 else None
        elif len(cells) > len(previous):
            kind = "split"
        elif len(cells) < len(previous):
            kind = "merge"
        elif cells != previous:
            kind = "move"
        if kind is not None:
            self.runtime.emit_scope_event(
                GroupScopeEvent(
                    time_s=time_s,
                    logical_group_id=logical_id,
                    kind=kind,
                    cells=tuple(sorted(cells)),
                    previous_cells=tuple(sorted(previous)),
                )
            )
        self._group_cells[logical_id] = cells


@register_app
class ProRataRebalanceApp(ControllerApp):
    """Shifts budget from underloaded towards overloaded cells, pro-rata.

    An overloaded cell's deficit is the budget that would bring its
    utilization back to the overload threshold; an underloaded cell
    donates at most ``rebalance_fraction`` of its budget and never so
    much that it would itself cross the overload threshold.  Transfers
    are pro-rata on both sides, so the total budget is conserved.

    Params (``None`` inherits ``ControllerConfig`` — the
    ``ControllerSpec.cell_*`` knobs): ``rebalance_fraction``,
    ``overload_threshold``, ``underload_threshold``.
    """

    name = "prorata_rebalance"
    default_params = {
        "rebalance_fraction": None,
        "overload_threshold": None,
        "underload_threshold": None,
    }

    def configure(self) -> None:
        config = self.runtime.config
        self.rebalance_fraction = float(
            self.params["rebalance_fraction"]
            if self.params["rebalance_fraction"] is not None
            else config.rebalance_fraction
        )
        self.overload_threshold = float(
            self.params["overload_threshold"]
            if self.params["overload_threshold"] is not None
            else config.overload_threshold
        )
        self.underload_threshold = float(
            self.params["underload_threshold"]
            if self.params["underload_threshold"] is not None
            else config.underload_threshold
        )

    def on_interval_end(self, ctx: LoadContext) -> None:
        deficits, surpluses = _classify_cells(
            self.runtime,
            self.overload_threshold,
            self.underload_threshold,
            self.rebalance_fraction,
        )
        total_deficit = sum(deficits.values())
        total_surplus = sum(surpluses.values())
        transfer = min(total_deficit, total_surplus)
        if transfer <= 0:
            return
        states = self.runtime.cell_states
        for cell_id, deficit in deficits.items():
            states[cell_id].rb_budget += transfer * deficit / total_deficit
        for cell_id, surplus in surpluses.items():
            states[cell_id].rb_budget -= transfer * surplus / total_surplus


@register_app
class GreedyRebalanceApp(ControllerApp):
    """Greedy budget rebalancing: largest deficit pulls from largest surplus.

    Classifies cells exactly like :class:`ProRataRebalanceApp` but resolves
    transfers greedily — the most overloaded cell is made whole first, each
    time draining the largest remaining donor — instead of pro-rata.  With
    a single donor/recipient pair both policies coincide; with several they
    allocate measurably differently, which is what makes this app the A/B
    counterpart of ``prorata_rebalance``.  Each realised transfer is
    emitted as a ``budget_transfer`` app event.

    Params (``None`` inherits ``ControllerConfig`` — the
    ``ControllerSpec.cell_*`` knobs): ``rebalance_fraction``,
    ``overload_threshold``, ``underload_threshold``.
    """

    name = "greedy_rebalance"
    default_params = {
        "rebalance_fraction": None,
        "overload_threshold": None,
        "underload_threshold": None,
    }

    configure = ProRataRebalanceApp.configure

    def on_interval_end(self, ctx: LoadContext) -> None:
        deficits, surpluses = _classify_cells(
            self.runtime,
            self.overload_threshold,
            self.underload_threshold,
            self.rebalance_fraction,
        )
        # Largest first; ties break on the lower cell id (deterministic).
        recipients = sorted(deficits.items(), key=lambda item: (-item[1], item[0]))
        donors = sorted(surpluses.items(), key=lambda item: (-item[1], item[0]))
        states = self.runtime.cell_states
        available = dict(donors)
        for cell_id, deficit in recipients:
            need = deficit
            for donor_id, _ in donors:
                if need <= 0:
                    break
                take = min(need, available[donor_id])
                if take <= 0:
                    continue
                available[donor_id] -= take
                need -= take
                states[donor_id].rb_budget -= take
                states[cell_id].rb_budget += take
                self.runtime.emit_app_event(
                    AppEvent(
                        time_s=ctx.time_s,
                        app=self.name,
                        name="budget_transfer",
                        payload={
                            "from_cell": int(donor_id),
                            "to_cell": int(cell_id),
                            "blocks": float(take),
                        },
                    )
                )


@register_app
class WeakMemberDemotionApp(ControllerApp):
    """Demotes weak multicast members to unicast before pricing the group.

    The worst-member rule prices a whole multicast group at its weakest
    member's MCS; one cell-edge user therefore inflates every member's
    resource cost.  At each interval start this app measures every scoped
    group member's mean SNR towards its serving cell (the RSSI proxy) and
    moves members below ``rssi_threshold_db`` out into synthetic singleton
    groups — effectively unicast — so the remaining members are priced at
    their own, better MCS.  If *every* member is weak the strongest one
    keeps the group (demoting all of them would only relabel it).  Each
    demotion is emitted as a ``demote`` app event, and the same transform
    runs on the non-mutating preview path so scheme-mode predictions target
    the demoted grouping the simulator will actually play.

    Params: ``rssi_threshold_db`` (default ``28.0``, roughly the 10th
    percentile of campus-topology mean SNRs — below it a member drags the
    group more than a unicast stream costs) — members whose mean SNR is
    below this demote; ``min_group_size`` (default ``2``) — groups smaller
    than this are never touched.
    """

    name = "weak_member_demotion"
    default_params = {"rssi_threshold_db": 28.0, "min_group_size": 2}

    def configure(self) -> None:
        self.rssi_threshold_db = float(self.params["rssi_threshold_db"])
        self.min_group_size = int(self.params["min_group_size"])

    def on_interval_start(self, ctx: ScopeContext) -> None:
        scoped, cell_of_group, demotions = self.transform_scope(
            ctx.scoped, ctx.cell_of_group, ctx
        )
        if not demotions:
            return
        ctx.scoped.clear()
        ctx.scoped.update(scoped)
        ctx.cell_of_group.clear()
        ctx.cell_of_group.update(cell_of_group)
        if ctx.preview:
            return
        for source_id, target_id, cell_id, user_id, snr in demotions:
            self.runtime.emit_app_event(
                AppEvent(
                    time_s=ctx.time_s,
                    app=self.name,
                    name="demote",
                    payload={
                        "user": int(user_id),
                        "from_group": int(source_id),
                        "to_group": int(target_id),
                        "cell": int(cell_id),
                        "mean_snr_db": float(snr),
                        "threshold_db": self.rssi_threshold_db,
                    },
                )
            )

    def transform_scope(
        self,
        scoped: Dict[int, List[int]],
        cell_of_group: Dict[int, int],
        ctx: ScopeContext,
    ) -> Tuple[Dict[int, List[int]], Dict[int, int], List[tuple]]:
        """Pure demotion transform: ``(scoped, cell_of_group, demotions)``.

        Deterministic in the inputs (no controller state is read or
        written), so the preview and playback paths agree exactly.
        """
        if ctx.mean_snr_db is None or not scoped:
            return scoped, cell_of_group, []
        members = sorted({uid for group in scoped.values() for uid in group})
        snr = ctx.mean_snr_db(members)
        # Synthetic logical ids above every real one: their scoped ids can
        # never collide with a real group's.
        next_logical = (
            max(self.runtime.logical_group_id(sid) for sid in scoped) + 1
        )
        new_scoped: Dict[int, List[int]] = {}
        new_cells: Dict[int, int] = {}
        demotions: List[tuple] = []
        for scoped_id, group in scoped.items():
            cell_id = cell_of_group[scoped_id]
            if len(group) < self.min_group_size:
                new_scoped[scoped_id] = group
                new_cells[scoped_id] = cell_id
                continue
            strong = [uid for uid in group if snr[uid] >= self.rssi_threshold_db]
            if not strong:
                # All-weak group: the strongest member (ties: lowest id)
                # keeps the multicast channel alive.
                keeper = max(group, key=lambda uid: (snr[uid], -uid))
                strong = [uid for uid in group if uid == keeper]
            weak = [uid for uid in group if uid not in strong]
            new_scoped[scoped_id] = strong
            new_cells[scoped_id] = cell_id
            for uid in weak:
                target_id = self.runtime.scoped_group_id(next_logical, cell_id)
                next_logical += 1
                new_scoped[target_id] = [uid]
                new_cells[target_id] = cell_id
                demotions.append((scoped_id, target_id, cell_id, uid, snr[uid]))
        return new_scoped, new_cells, demotions


def _classify_cells(
    runtime, overload_threshold: float, underload_threshold: float, fraction: float
) -> Tuple[Dict[int, float], Dict[int, float]]:
    """Per-cell budget deficits and donatable surpluses (shared A/B base)."""
    deficits: Dict[int, float] = {}
    surpluses: Dict[int, float] = {}
    for cell_id in runtime.cell_ids:
        state = runtime.cell_states[cell_id]
        utilization = state.utilization
        if utilization > overload_threshold:
            deficits[cell_id] = state.rb_demand / overload_threshold - state.rb_budget
        elif utilization < underload_threshold:
            headroom = state.rb_budget - state.rb_demand / overload_threshold
            surplus = min(fraction * state.rb_budget, headroom)
            if surplus > 0:
                surpluses[cell_id] = surplus
    return deficits, surpluses
