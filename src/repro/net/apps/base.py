"""Controller-app framework: lifecycle, hook contexts and the app registry.

The RAN controller (:class:`repro.net.controller.RanController`) is a thin
runtime — association state, per-cell bookkeeping, scoped-id math and one
time-ordered event log driven by its :class:`repro.sim.events.EventQueue`.
Every *policy* lives in a :class:`ControllerApp`: a small component that
attaches to the runtime and reacts to its lifecycle hooks, the same shape
SDN controllers (POX/EMPOWER) use for pluggable network applications.

Hook points, in the order the runtime drives them each interval:

``on_interval_start``
    Fired while the runtime scopes a logical grouping per serving cell at
    the interval start.  Apps may emit events and/or rewrite the scoped
    grouping in place (:class:`~repro.net.apps.builtin.CellScopingApp`
    emits split/merge/move events here;
    :class:`~repro.net.apps.builtin.WeakMemberDemotionApp` demotes weak
    members).  The same hook runs with ``ctx.preview=True`` for the
    non-mutating :meth:`~repro.net.controller.RanController.preview_scope`
    path — apps must not touch persistent state or emit events then.
``measurement_times`` / ``on_measurement``
    The first app returning a non-``None`` sample grid decides when the
    interval is measured; ``on_measurement`` then sees the mean-SNR tensor
    over that grid (:class:`~repro.net.apps.builtin.A3HandoverApp`
    schedules handover events from it).
``on_handover``
    Fired by the runtime as each handover event fires on the bus, after
    association state is updated — mid-interval reactions (e.g. re-scoping
    a group whose member just moved) go here.
``on_interval_end``
    Fired after the end-of-interval load report; budget rebalancers
    (:class:`~repro.net.apps.builtin.ProRataRebalanceApp`,
    :class:`~repro.net.apps.builtin.GreedyRebalanceApp`) act here.

Apps are registered by name via :func:`register_app` and instantiated from
``(name, params)`` pairs by :func:`build_app_stack`; ``None`` builds
:data:`DEFAULT_APP_STACK`, which reproduces the historical monolithic
controller bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Type,
    Union,
)

import numpy as np


@dataclass(frozen=True)
class AppEvent:
    """An event emitted by a controller app onto the runtime's bus.

    ``payload`` carries JSON-canonical values only (numbers, strings,
    booleans, ``None``, lists, dicts) so app events export verbatim into
    ``RunResult`` records.
    """

    time_s: float
    app: str
    name: str
    payload: Dict[str, Any] = field(default_factory=dict)


@dataclass
class ScopeContext:
    """What ``on_interval_start`` sees (and may mutate) while scoping.

    ``scoped`` / ``cell_of_group`` are the per-cell grouping the interval
    will play; apps rewrite them *in place*.  ``mean_snr_db`` is a lazy
    measurement callable (``user_ids -> {user_id: mean SNR dB towards the
    serving cell}``) supplied by the simulator — ``None`` when the runtime
    is driven standalone.  ``preview=True`` marks the non-mutating
    prediction path: no events, no persistent state changes.
    """

    time_s: float
    grouping: Mapping[int, Sequence[int]]
    scoped: Dict[int, List[int]]
    cell_of_group: Dict[int, int]
    mean_snr_db: Optional[Callable[[Sequence[int]], Dict[int, float]]] = None
    preview: bool = False


@dataclass
class MeasurementContext:
    """One interval's measurement batch, shared by every app.

    ``snr_db`` has shape ``(times, users, cells)`` aligned with
    ``times_s`` and ``user_ids``; cells follow the runtime's cell order.
    """

    times_s: np.ndarray
    snr_db: np.ndarray
    user_ids: List[int]
    end_s: float


@dataclass
class LoadContext:
    """The end-of-interval load report ``on_interval_end`` reacts to."""

    time_s: float
    load_events: List[Any]
    utilization: Dict[int, float]
    demand_by_cell: Dict[int, float]
    outage_by_cell: Dict[int, int]


class ControllerApp:
    """Base class of all controller apps.

    Subclasses set ``name`` (the registry key) and ``default_params`` (the
    complete set of recognised knobs with their defaults; unknown keys in
    ``params`` raise at construction).  ``configure()`` runs once the app
    is attached and ``self.runtime`` is available.
    """

    name: str = ""
    default_params: Dict[str, Any] = {}

    def __init__(self, params: Optional[Mapping[str, Any]] = None) -> None:
        params = dict(params or {})
        unknown = set(params) - set(self.default_params)
        if unknown:
            raise ValueError(
                f"unknown params for app {self.name!r}: {sorted(unknown)} "
                f"(recognised: {sorted(self.default_params)})"
            )
        self.params: Dict[str, Any] = {**self.default_params, **params}
        self.runtime = None

    # ------------------------------------------------------------- lifecycle
    def attach(self, runtime) -> None:
        """Bind the app to a runtime and run its ``configure()`` step."""
        self.runtime = runtime
        self.configure()

    def detach(self) -> None:
        """Unbind from the runtime (hooks stop firing)."""
        self.runtime = None

    def configure(self) -> None:
        """Post-attach setup; ``self.runtime`` is available here."""

    # ------------------------------------------------------------------ hooks
    def on_user_attached(self, user_id: int) -> None:
        """A user was (re-)associated via ``attach_user``."""

    def on_user_detached(self, user_id: int) -> None:
        """A user left via ``detach_user``."""

    def measurement_times(self, start_s: float, end_s: float) -> Optional[np.ndarray]:
        """Sample grid this app wants for ``[start_s, end_s)``; ``None`` = no opinion."""
        return None

    def on_measurement(self, ctx: MeasurementContext) -> None:
        """React to one interval's mean-SNR measurement batch."""

    def on_handover(self, event) -> None:
        """A handover event fired on the bus (association already updated)."""

    def on_interval_start(self, ctx: ScopeContext) -> None:
        """The runtime is scoping a grouping at the interval start."""

    def on_interval_end(self, ctx: LoadContext) -> None:
        """The end-of-interval load report was emitted."""


# ---------------------------------------------------------------- registry
_APP_REGISTRY: Dict[str, Type[ControllerApp]] = {}

#: The stack ``RanController`` builds when no apps are specified; it
#: reproduces the pre-framework monolithic controller bit-for-bit.
DEFAULT_APP_STACK: Tuple[str, ...] = (
    "a3_handover",
    "cell_scoping",
    "prorata_rebalance",
)

#: One app entry as accepted by :func:`build_app_stack` and
#: ``SimulationConfig.controller_apps``.
AppEntry = Union[str, Mapping[str, Any], Tuple[str, Mapping[str, Any]], ControllerApp]


def register_app(cls: Type[ControllerApp]) -> Type[ControllerApp]:
    """Class decorator registering ``cls`` under ``cls.name``."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} must set a non-empty 'name'")
    if cls.name in _APP_REGISTRY:
        raise ValueError(f"controller app {cls.name!r} already registered")
    _APP_REGISTRY[cls.name] = cls
    return cls


def app_names() -> List[str]:
    """Sorted names of every registered controller app."""
    _ensure_builtins()
    return sorted(_APP_REGISTRY)


def get_app_class(name: str) -> Type[ControllerApp]:
    _ensure_builtins()
    try:
        return _APP_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_APP_REGISTRY))
        raise KeyError(
            f"unknown controller app {name!r} (registered: {known})"
        ) from None


def create_app(name: str, params: Optional[Mapping[str, Any]] = None) -> ControllerApp:
    """Instantiate the registered app ``name`` with ``params``."""
    return get_app_class(name)(params)


def normalize_app_entry(entry: AppEntry) -> Tuple[str, Dict[str, Any]]:
    """Lower one stack entry to a ``(name, params)`` pair (pure data).

    Accepts a bare name, a ``{"name": ..., "params": {...}}`` mapping or a
    ``(name, params)`` pair; live :class:`ControllerApp` instances are
    rejected here because config-level entries must stay serialisable.
    """
    if isinstance(entry, str):
        return entry, {}
    if isinstance(entry, Mapping):
        extra = set(entry) - {"name", "params"}
        if "name" not in entry or extra:
            raise ValueError(
                f"app entry mapping needs 'name' (+ optional 'params'), got {dict(entry)!r}"
            )
        return str(entry["name"]), dict(entry.get("params") or {})
    if isinstance(entry, (tuple, list)) and len(entry) == 2:
        return str(entry[0]), dict(entry[1] or {})
    raise TypeError(
        f"app entry must be a name, a {{'name', 'params'}} mapping or a "
        f"(name, params) pair, got {entry!r}"
    )


def build_app_stack(entries: Optional[Sequence[AppEntry]] = None) -> List[ControllerApp]:
    """Instantiate an app stack; ``None`` builds :data:`DEFAULT_APP_STACK`."""
    if entries is None:
        entries = DEFAULT_APP_STACK
    apps: List[ControllerApp] = []
    for entry in entries:
        if isinstance(entry, ControllerApp):
            apps.append(entry)
        else:
            name, params = normalize_app_entry(entry)
            apps.append(create_app(name, params))
    return apps


def _ensure_builtins() -> None:
    """Import the builtin apps so the registry is complete."""
    import repro.net.apps.builtin  # noqa: F401  (registers on import)
