"""Pluggable controller apps over the RAN-controller runtime.

See :mod:`repro.net.apps.base` for the framework (lifecycle, hooks,
registry) and :mod:`repro.net.apps.builtin` for the built-in apps.
"""

from repro.net.apps.base import (
    AppEvent,
    ControllerApp,
    DEFAULT_APP_STACK,
    LoadContext,
    MeasurementContext,
    ScopeContext,
    app_names,
    build_app_stack,
    create_app,
    get_app_class,
    normalize_app_entry,
    register_app,
)
from repro.net.apps.builtin import (
    A3HandoverApp,
    CellScopingApp,
    GreedyRebalanceApp,
    ProRataRebalanceApp,
    WeakMemberDemotionApp,
)

__all__ = [
    "A3HandoverApp",
    "AppEvent",
    "CellScopingApp",
    "ControllerApp",
    "DEFAULT_APP_STACK",
    "GreedyRebalanceApp",
    "LoadContext",
    "MeasurementContext",
    "ProRataRebalanceApp",
    "ScopeContext",
    "WeakMemberDemotionApp",
    "app_names",
    "build_app_stack",
    "create_app",
    "get_app_class",
    "normalize_app_entry",
    "register_app",
]
