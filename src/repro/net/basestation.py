"""Base stations and user association.

A base station has a position, a transmit power, a carrier bandwidth and a
resource-block budget.  Users associate with the base station offering the
strongest mean SNR (distance-based), which mirrors standard max-RSRP cell
selection and determines which BS each multicast group hangs off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.net.channel import ChannelConfig, ChannelModel


@dataclass
class BaseStationConfig:
    """Static parameters of a base station."""

    tx_power_dbm: float = 43.0
    bandwidth_hz: float = 20e6
    resource_block_bandwidth_hz: float = 180e3
    num_resource_blocks: int = 100

    def __post_init__(self) -> None:
        if self.bandwidth_hz <= 0 or self.resource_block_bandwidth_hz <= 0:
            raise ValueError("bandwidths must be positive")
        if self.num_resource_blocks <= 0:
            raise ValueError("num_resource_blocks must be positive")


@dataclass
class BaseStation:
    """A cellular base station serving multicast groups."""

    bs_id: int
    position: np.ndarray
    config: BaseStationConfig = field(default_factory=BaseStationConfig)
    channel: Optional[ChannelModel] = None

    def __post_init__(self) -> None:
        self.position = np.asarray(self.position, dtype=np.float64)
        if self.position.shape != (2,):
            raise ValueError("position must be a 2-D coordinate")
        if self.channel is None:
            self.channel = ChannelModel(
                ChannelConfig(bandwidth_hz=self.config.resource_block_bandwidth_hz),
                seed=self.bs_id,
            )

    def distance_to(self, point: Sequence[float]) -> float:
        point = np.asarray(point, dtype=np.float64)
        return float(np.linalg.norm(self.position - point))

    def distances_to(self, points) -> np.ndarray:
        """Euclidean distance to each row of ``points`` (shape ``(n, 2)``)."""
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        return np.linalg.norm(self.position[None, :] - points, axis=1)

    def mean_snr_db(self, point: Sequence[float]) -> float:
        """Average SNR a user at ``point`` would see from this BS."""
        assert self.channel is not None
        return self.channel.mean_snr_db(self.config.tx_power_dbm, self.distance_to(point))

    def mean_snr_db_batch(self, points) -> np.ndarray:
        """Vectorized :meth:`mean_snr_db` over ``(n, 2)`` points."""
        assert self.channel is not None
        return self.channel.mean_snr_db_batch(
            self.config.tx_power_dbm, self.distances_to(points)
        )

    def sample_snr_db(
        self, point: Sequence[float], rng: Optional[np.random.Generator] = None
    ) -> float:
        """Instantaneous SNR sample for a user at ``point``."""
        assert self.channel is not None
        return self.channel.sample_snr_db(
            self.config.tx_power_dbm, self.distance_to(point), rng=rng
        )

    def sample_snr_db_batch(
        self,
        points,
        rng: Optional[np.random.Generator] = None,
        interleaved: bool = True,
    ) -> np.ndarray:
        """Vectorized :meth:`sample_snr_db` over ``(n, 2)`` points.

        ``interleaved=True`` preserves the exact generator stream a loop of
        scalar :meth:`sample_snr_db` calls would consume (see
        :meth:`repro.net.channel.ChannelModel.sample_snr_db_batch`).
        """
        assert self.channel is not None
        return self.channel.sample_snr_db_batch(
            self.config.tx_power_dbm,
            self.distances_to(points),
            rng=rng,
            interleaved=interleaved,
        )

    def sample_snr_traces(
        self,
        points_block: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """One SNR trace per user from a ``(users, times, 2)`` position block.

        Flattens the block row-major, draws the shadowing and fading for
        *all* ``users x times`` samples as two whole-array calls against the
        explicitly supplied ``rng`` and reshapes back to ``(users, times)``.
        This is the batched-engine primitive: both the ``"fast"`` per-station
        tensors and the ``"grouped"`` per-group streams are one call each,
        and because ``rng`` is explicit the caller fully owns which stream
        (shared or per-group) the draws consume.
        """
        block = np.asarray(points_block, dtype=np.float64)
        if block.ndim != 3 or block.shape[-1] != 2:
            raise ValueError("points_block must have shape (users, times, 2)")
        num_users, num_times = block.shape[:2]
        flat = block.reshape(num_users * num_times, 2)
        traces = self.sample_snr_db_batch(flat, rng=rng, interleaved=False)
        return traces.reshape(num_users, num_times)


def associate_users(
    user_positions: Sequence[Sequence[float]],
    base_stations: Sequence[BaseStation],
) -> Dict[int, List[int]]:
    """Associate each user with the strongest-SNR base station.

    Returns a mapping ``bs_id -> list of user indices``.  Every base station
    id appears in the result, possibly with an empty list.
    """
    if not base_stations:
        raise ValueError("need at least one base station")
    association: Dict[int, List[int]] = {bs.bs_id: [] for bs in base_stations}
    positions = np.asarray(user_positions, dtype=np.float64)
    if positions.shape[0] == 0:
        return association
    # (users, base stations) mean-SNR matrix; argmax keeps the first-best
    # station, matching max() over the base-station list.
    snr = np.stack([bs.mean_snr_db_batch(positions) for bs in base_stations], axis=1)
    for user_index, bs_index in enumerate(np.argmax(snr, axis=1)):
        association[base_stations[int(bs_index)].bs_id].append(user_index)
    return association


def place_base_stations(
    count: int,
    width_m: float,
    height_m: float,
    config: Optional[BaseStationConfig] = None,
) -> List[BaseStation]:
    """Place ``count`` base stations on a regular grid covering the area."""
    if count <= 0:
        raise ValueError("count must be positive")
    if width_m <= 0 or height_m <= 0:
        raise ValueError("area dimensions must be positive")
    config = config if config is not None else BaseStationConfig()
    columns = int(np.ceil(np.sqrt(count)))
    rows = int(np.ceil(count / columns))
    stations: List[BaseStation] = []
    for index in range(count):
        row, column = divmod(index, columns)
        x = (column + 0.5) * width_m / columns
        y = (row + 0.5) * height_m / rows
        stations.append(BaseStation(bs_id=index, position=np.array([x, y]), config=config))
    return stations
