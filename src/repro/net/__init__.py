"""Wireless network substrate: channel, MCS, base stations, multicast, resources.

The paper reserves *radio* resources for multicast transmission of short
videos.  The radio model here is a standard cellular downlink abstraction:

* :mod:`repro.net.channel` -- log-distance path loss, log-normal shadowing
  and Rayleigh fast fading producing per-user SNR time series (the
  "channel condition" UDT attribute).
* :mod:`repro.net.mcs` -- SNR to spectral-efficiency mapping (CQI/MCS
  table) with an optional implementation-loss factor.
* :mod:`repro.net.basestation` -- base stations with position, transmit
  power and a resource-block budget; strongest-SNR user association.
* :mod:`repro.net.multicast` -- multicast channels whose rate is limited by
  the worst user in the group, and the conversion from group traffic to
  resource-block demand.
* :mod:`repro.net.resources` -- resource-block accounting / allocation.
* :mod:`repro.net.handover` -- hysteresis + time-to-trigger handover policy
  evaluated on batched mid-interval SNR samples.
* :mod:`repro.net.controller` -- the event-driven multi-cell RAN
  controller runtime (user association, per-cell state, scoped-id math,
  event log).
* :mod:`repro.net.apps` -- pluggable controller apps over that runtime
  (A3 handover, cell scoping, budget rebalancing, weak-member demotion).
"""

from repro.net.channel import ChannelConfig, ChannelModel, snr_db_to_linear, snr_linear_to_db
from repro.net.mcs import MCS_TABLE, McsEntry, select_mcs, spectral_efficiency
from repro.net.basestation import BaseStation, BaseStationConfig, associate_users
from repro.net.handover import HandoverConfig, HandoverDecision, HandoverPolicy, StreakState
from repro.net.controller import (
    CellLoadEvent,
    CellState,
    ControllerConfig,
    GroupScopeEvent,
    HandoverEvent,
    RanController,
    cell_utilization,
)
from repro.net.apps import (
    AppEvent,
    ControllerApp,
    DEFAULT_APP_STACK,
    app_names,
    build_app_stack,
    create_app,
    register_app,
)
from repro.net.multicast import (
    MulticastChannel,
    MulticastScheduler,
    group_spectral_efficiency,
    resource_blocks_for_traffic,
)
from repro.net.resources import ResourceBlockBudget, ResourceGrid

__all__ = [
    "AppEvent",
    "BaseStation",
    "BaseStationConfig",
    "ControllerApp",
    "DEFAULT_APP_STACK",
    "app_names",
    "build_app_stack",
    "create_app",
    "register_app",
    "CellLoadEvent",
    "CellState",
    "ChannelConfig",
    "ChannelModel",
    "ControllerConfig",
    "GroupScopeEvent",
    "HandoverConfig",
    "HandoverDecision",
    "HandoverEvent",
    "HandoverPolicy",
    "RanController",
    "StreakState",
    "cell_utilization",
    "MCS_TABLE",
    "McsEntry",
    "MulticastChannel",
    "MulticastScheduler",
    "ResourceBlockBudget",
    "ResourceGrid",
    "associate_users",
    "group_spectral_efficiency",
    "resource_blocks_for_traffic",
    "select_mcs",
    "snr_db_to_linear",
    "snr_linear_to_db",
    "spectral_efficiency",
]
