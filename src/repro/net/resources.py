"""Resource-block accounting.

Radio resources are reserved in units of resource blocks (RBs).  The budget
tracks how many RBs a base station has, how many have been reserved for each
multicast group, and whether a reservation request can be admitted.  The
grid additionally keeps a per-interval history so over- and
under-provisioning can be audited after the fact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping

import numpy as np


class ResourceBlockBudget:
    """Tracks reservations against a fixed number of resource blocks."""

    def __init__(self, total_blocks: float) -> None:
        if total_blocks <= 0:
            raise ValueError("total_blocks must be positive")
        self.total_blocks = float(total_blocks)
        self._reservations: Dict[int, float] = {}

    # ------------------------------------------------------------ accessors
    @property
    def reserved_blocks(self) -> float:
        return float(sum(self._reservations.values()))

    @property
    def available_blocks(self) -> float:
        return self.total_blocks - self.reserved_blocks

    def reservation_for(self, group_id: int) -> float:
        return self._reservations.get(group_id, 0.0)

    def utilization(self) -> float:
        """Fraction of the budget currently reserved (0..1)."""
        return self.reserved_blocks / self.total_blocks

    # ------------------------------------------------------------ mutations
    def can_reserve(self, blocks: float) -> bool:
        if blocks < 0:
            raise ValueError("blocks must be non-negative")
        return blocks <= self.available_blocks + 1e-9

    def reserve(self, group_id: int, blocks: float) -> bool:
        """Reserve ``blocks`` for ``group_id``; returns False when it does not fit."""
        if blocks < 0:
            raise ValueError("blocks must be non-negative")
        current = self._reservations.get(group_id, 0.0)
        extra = blocks - current
        if extra > self.available_blocks + 1e-9:
            return False
        self._reservations[group_id] = blocks
        return True

    def release(self, group_id: int) -> float:
        """Release a group's reservation and return how many blocks were freed."""
        return self._reservations.pop(group_id, 0.0)

    def clear(self) -> None:
        self._reservations.clear()


@dataclass
class IntervalUsage:
    """Reserved versus actually used blocks for one reservation interval."""

    interval_index: int
    reserved: Dict[int, float] = field(default_factory=dict)
    used: Dict[int, float] = field(default_factory=dict)

    def over_provisioned_blocks(self) -> float:
        """Blocks reserved but not used (summed over groups, floored at zero)."""
        total = 0.0
        for group_id, reserved in self.reserved.items():
            total += max(reserved - self.used.get(group_id, 0.0), 0.0)
        return total

    def under_provisioned_blocks(self) -> float:
        """Blocks used beyond the reservation (summed over groups)."""
        total = 0.0
        for group_id, used in self.used.items():
            total += max(used - self.reserved.get(group_id, 0.0), 0.0)
        return total


class ResourceGrid:
    """Per-interval history of reservations and actual usage."""

    def __init__(self, total_blocks: float) -> None:
        self.budget = ResourceBlockBudget(total_blocks)
        self.history: List[IntervalUsage] = []

    def record_interval(
        self,
        interval_index: int,
        reserved: Mapping[int, float],
        used: Mapping[int, float],
    ) -> IntervalUsage:
        """Append one interval's reservation-versus-usage record."""
        usage = IntervalUsage(
            interval_index=interval_index,
            reserved={k: float(v) for k, v in reserved.items()},
            used={k: float(v) for k, v in used.items()},
        )
        self.history.append(usage)
        return usage

    def mean_over_provisioning(self) -> float:
        if not self.history:
            return 0.0
        return float(np.mean([entry.over_provisioned_blocks() for entry in self.history]))

    def mean_under_provisioning(self) -> float:
        if not self.history:
            return 0.0
        return float(np.mean([entry.under_provisioned_blocks() for entry in self.history]))
