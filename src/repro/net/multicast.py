"""Multicast channels and the traffic-to-resource-block conversion.

Multicast delivery sends one copy of each segment to the whole group, but
the modulation-and-coding scheme must be decodable by *every* member, so the
group's spectral efficiency is the minimum over its members.  Radio resource
demand then follows directly: the bits a group needs in a reservation
interval divided by what one resource block can carry at the group's
efficiency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence

import numpy as np

from repro.net.basestation import BaseStation
from repro.net.mcs import spectral_efficiency


def group_spectral_efficiency(
    member_snrs_db: Sequence[float],
    implementation_loss: float = 0.9,
    robustness_percentile: float = 0.0,
) -> float:
    """Spectral efficiency of a multicast group (worst-member rule).

    ``robustness_percentile`` allows the scheduler to target a percentile
    slightly above the absolute minimum (e.g. 5) when the operator accepts
    that the very worst user occasionally falls back to unicast repair;
    ``0`` is the strict worst-user rule used by default.
    """
    snrs = np.asarray(member_snrs_db, dtype=np.float64)
    if snrs.size == 0:
        raise ValueError("a multicast group needs at least one member SNR")
    if not 0.0 <= robustness_percentile < 50.0:
        raise ValueError("robustness_percentile must be in [0, 50)")
    if robustness_percentile == 0.0:
        # Strict worst-user rule: the 0th percentile is the minimum, and
        # np.min is much cheaper than the general percentile machinery.
        target_snr = float(snrs.min())
    else:
        target_snr = float(np.percentile(snrs, robustness_percentile))
    return spectral_efficiency(target_snr, implementation_loss=implementation_loss)


def resource_blocks_for_traffic(
    traffic_bits: float,
    efficiency_bps_hz: float,
    rb_bandwidth_hz: float = 180e3,
    interval_s: float = 300.0,
) -> float:
    """Average number of resource blocks needed to move ``traffic_bits`` in ``interval_s``.

    One resource block carries ``efficiency * rb_bandwidth * interval`` bits
    over the interval; the demand is therefore traffic divided by that
    capacity.  Returns ``inf`` when the group is in outage (zero efficiency)
    but has non-zero traffic.
    """
    if traffic_bits < 0:
        raise ValueError("traffic_bits must be non-negative")
    if rb_bandwidth_hz <= 0 or interval_s <= 0:
        raise ValueError("rb_bandwidth_hz and interval_s must be positive")
    if efficiency_bps_hz < 0:
        raise ValueError("efficiency_bps_hz must be non-negative")
    if traffic_bits == 0:
        return 0.0
    if efficiency_bps_hz == 0:
        return float("inf")
    bits_per_rb = efficiency_bps_hz * rb_bandwidth_hz * interval_s
    return float(traffic_bits / bits_per_rb)


@dataclass
class MulticastChannel:
    """One multicast channel: a base station serving one multicast group."""

    group_id: int
    base_station: BaseStation
    member_user_ids: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.group_id < 0:
            raise ValueError("group_id must be non-negative")

    @property
    def size(self) -> int:
        return len(self.member_user_ids)

    def efficiency(
        self,
        member_snrs_db: Mapping[int, float],
        implementation_loss: float = 0.9,
    ) -> float:
        """Group spectral efficiency given each member's current SNR."""
        missing = [uid for uid in self.member_user_ids if uid not in member_snrs_db]
        if missing:
            raise KeyError(f"missing SNR for members {missing}")
        snrs = [member_snrs_db[uid] for uid in self.member_user_ids]
        return group_spectral_efficiency(snrs, implementation_loss=implementation_loss)


@dataclass
class GroupRadioUsage:
    """Radio usage of one group during one reservation interval."""

    group_id: int
    traffic_bits: float
    efficiency_bps_hz: float
    resource_blocks: float


class MulticastScheduler:
    """Converts per-group traffic into per-group resource-block usage.

    This is the "actual" resource consumption the simulator records and the
    prediction scheme is evaluated against.
    """

    def __init__(
        self,
        rb_bandwidth_hz: float = 180e3,
        interval_s: float = 300.0,
        implementation_loss: float = 0.9,
    ) -> None:
        if rb_bandwidth_hz <= 0 or interval_s <= 0:
            raise ValueError("rb_bandwidth_hz and interval_s must be positive")
        self.rb_bandwidth_hz = rb_bandwidth_hz
        self.interval_s = interval_s
        self.implementation_loss = implementation_loss

    def schedule(
        self,
        group_traffic_bits: Mapping[int, float],
        group_member_snrs_db: Mapping[int, Sequence[float]],
    ) -> Dict[int, GroupRadioUsage]:
        """Compute per-group resource-block usage.

        Parameters
        ----------
        group_traffic_bits:
            Bits each group must receive during the interval.
        group_member_snrs_db:
            Per-group list of member SNRs (dB) used for the worst-member rule.
        """
        usage: Dict[int, GroupRadioUsage] = {}
        for group_id, traffic in group_traffic_bits.items():
            snrs = group_member_snrs_db.get(group_id)
            if snrs is None or len(snrs) == 0:
                raise ValueError(f"no member SNRs provided for group {group_id}")
            efficiency = group_spectral_efficiency(
                snrs, implementation_loss=self.implementation_loss
            )
            blocks = resource_blocks_for_traffic(
                traffic,
                efficiency,
                rb_bandwidth_hz=self.rb_bandwidth_hz,
                interval_s=self.interval_s,
            )
            usage[group_id] = GroupRadioUsage(
                group_id=group_id,
                traffic_bits=float(traffic),
                efficiency_bps_hz=float(efficiency),
                resource_blocks=float(blocks),
            )
        return usage

    def total_resource_blocks(self, usage: Mapping[int, GroupRadioUsage]) -> float:
        """Sum of per-group resource blocks (ignoring infinite outage entries)."""
        finite = [u.resource_blocks for u in usage.values() if np.isfinite(u.resource_blocks)]
        return float(sum(finite))
