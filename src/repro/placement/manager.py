"""Placement lifecycle: forecast → pack → observe → reprovision.

:class:`PlacementManager` owns the planner, the demand forecaster and the
mispredict machinery, and is driven by the simulator once per interval:

* :meth:`begin_interval` forecasts every active group's demand series and
  packs the groups onto the fleet (groups keep their current server —
  sticky placement — unless they are new or were just reprovisioned);
* :meth:`observe_interval` folds the observed usage into the forecaster
  and compares it against the prediction the placement was packed with.
  When the relative error exceeds the mispredict threshold (Elasecutor's
  trigger), a :class:`ReprovisionEvent` is scheduled on the manager's
  :class:`~repro.sim.events.EventQueue` bus and the group is migrated to
  the planner's best server for its *corrected* demand, effective next
  interval.

Everything here is deterministic and RNG-free: placement reads demand,
never the simulator's random streams, so enabling it cannot perturb
playback draws.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.placement.demand import DemandForecaster, DemandSeries
from repro.placement.planner import PlacementPlanner, ServerCapacity
from repro.sim.events import EventQueue


@dataclass(frozen=True)
class ReprovisionEvent:
    """A mispredict-triggered migration/repack decision for one group."""

    time_s: float
    interval_index: int
    group_id: int
    source_server: int
    target_server: int
    predicted_cycles: float
    observed_cycles: float
    relative_error: float

    @property
    def migrated(self) -> bool:
        return self.source_server != self.target_server

    def to_record(self) -> dict:
        """JSON-canonical tagged record (``controller_events`` style)."""
        return {
            "type": "reprovision",
            "time_s": float(self.time_s),
            "interval_index": int(self.interval_index),
            "group": int(self.group_id),
            "source_server": int(self.source_server),
            "target_server": int(self.target_server),
            "predicted_cycles": float(self.predicted_cycles),
            "observed_cycles": float(self.observed_cycles),
            "relative_error": float(self.relative_error),
            "migrated": bool(self.migrated),
        }


@dataclass
class PlacementConfig:
    """Knobs of the placement manager."""

    strategy: str = "drr"
    horizon_intervals: int = 3
    mispredict_threshold: float = 0.5
    reprovision: bool = True
    ewma_alpha: float = 0.5

    def __post_init__(self) -> None:
        if self.horizon_intervals < 1:
            raise ValueError("horizon_intervals must be at least 1")
        if self.mispredict_threshold <= 0:
            raise ValueError("mispredict_threshold must be positive")


class PlacementManager:
    """Drives predictive placement of group jobs over an edge fleet."""

    def __init__(
        self,
        capacities: Sequence[ServerCapacity],
        config: Optional[PlacementConfig] = None,
    ) -> None:
        self.config = config if config is not None else PlacementConfig()
        self.planner = PlacementPlanner(capacities, strategy=self.config.strategy)
        self.forecaster = DemandForecaster(alpha=self.config.ewma_alpha)
        #: The ``repro.sim.events`` bus reprovision events fire on; consumers
        #: may attach callbacks before :meth:`observe_interval` runs it.
        self.events = EventQueue()
        self.assignment: Dict[int, int] = {}
        self.event_log: List[ReprovisionEvent] = []
        self._placed_forecast: Dict[int, DemandSeries] = {}
        self._placed_with_history: set = set()
        self._interval_events: List[ReprovisionEvent] = []

    @property
    def num_servers(self) -> int:
        return self.planner.num_servers

    # -------------------------------------------------------------- forecast
    def set_forecast(self, cycles_by_group: Mapping[int, float]) -> None:
        """Feed the twin's predicted per-group cycles for the next interval."""
        self.forecaster.set_external(cycles_by_group)

    # ----------------------------------------------------------------- begin
    def begin_interval(
        self, interval_index: int, group_ids: Sequence[int], time_s: float = 0.0
    ) -> Dict[int, int]:
        """Forecast and pack the interval's groups; returns group → server."""
        group_ids = sorted(int(gid) for gid in group_ids)
        demands = {
            gid: self.forecaster.forecast(gid, self.config.horizon_intervals)
            for gid in group_ids
        }
        pinned = {
            gid: server
            for gid, server in self.assignment.items()
            if gid in demands
        }
        self.assignment = self.planner.pack(demands, pinned=pinned)
        self._placed_forecast = demands
        # Groups placed from the cold-start prior (no history yet) are not
        # mispredict candidates: their first observation *always* disagrees
        # with the prior, and reprovisioning on first contact is noise.
        self._placed_with_history = {
            gid for gid in group_ids if self.forecaster.observations(gid) > 0
        }
        self._interval_events = []
        return dict(self.assignment)

    # --------------------------------------------------------------- observe
    def observe_interval(
        self,
        interval_index: int,
        cycles_by_group: Mapping[int, float],
        cache_bytes_by_group: Mapping[int, float],
        time_s: float,
    ) -> List[ReprovisionEvent]:
        """Fold observations in and fire mispredict reprovision events."""
        events: List[ReprovisionEvent] = []
        for gid in sorted(cycles_by_group):
            observed = float(cycles_by_group[gid])
            placed = self._placed_forecast.get(gid)
            predicted = placed.cpu_cycles[0] if placed is not None else None
            self.forecaster.observe(
                gid, observed, float(cache_bytes_by_group.get(gid, 0.0))
            )
            if (
                not self.config.reprovision
                or predicted is None
                or gid not in self._placed_with_history
            ):
                continue
            error = self.forecaster.relative_error(predicted, observed)
            if error <= self.config.mispredict_threshold:
                continue
            source = self.assignment.get(gid, 0)
            # Repack the mispredicted group against its corrected forecast;
            # the remaining fleet keeps its (sticky) layout.
            corrected = self.forecaster.forecast(gid, self.config.horizon_intervals)
            remaining = {
                other: series
                for other, series in self._placed_forecast.items()
                if other != gid
            }
            remaining[gid] = corrected
            target = self.planner.place_one(
                corrected, remaining, self.assignment, exclude=gid
            )
            event = ReprovisionEvent(
                time_s=float(time_s),
                interval_index=int(interval_index),
                group_id=int(gid),
                source_server=int(source),
                target_server=int(target),
                predicted_cycles=float(predicted),
                observed_cycles=observed,
                relative_error=float(error),
            )
            self.events.schedule(
                max(event.time_s, self.events.now_s),
                name="reprovision",
                payload=event,
            )
            self.assignment[gid] = target
            events.append(event)
        if events:
            self.events.run_until(max(e.time_s for e in events))
        self.event_log.extend(events)
        self._interval_events = events
        # Drop assignments for groups that vanished this interval so churned
        # ids never pin future packing.
        live = set(cycles_by_group)
        self.assignment = {
            gid: server for gid, server in self.assignment.items() if gid in live
        }
        return events

    # ------------------------------------------------------------- reporting
    def interval_events(self) -> List[ReprovisionEvent]:
        """Reprovision events of the most recently observed interval."""
        return list(self._interval_events)

    def total_reprovisions(self) -> int:
        return len(self.event_log)

    def total_migrations(self) -> int:
        return sum(1 for event in self.event_log if event.migrated)
