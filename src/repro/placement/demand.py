"""Per-job demand series and the deterministic demand forecaster.

The placement planner packs jobs (one per multicast group) onto edge
servers against each job's *predicted* resource usage over a short
planning horizon, not its instantaneous usage.  A :class:`DemandSeries`
carries that prediction — CPU cycles and cache bytes per future interval —
and :class:`DemandForecaster` produces it from observed history with a
Holt-style level+trend smoother (deterministic, RNG-free: placement must
never perturb the simulator's random streams).

When the digital-twin prediction scheme is driving the run, its per-group
``computing_cycles`` predictions are fed in through
:meth:`DemandForecaster.set_external` and override the smoother's level
for the next interval, so placement packs against exactly the demand the
twin predicted (cache-byte demand always comes from the smoother — the
twin does not predict it).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple


@dataclass(frozen=True)
class DemandSeries:
    """Predicted resource demand of one job over the planning horizon.

    ``cpu_cycles[k]`` / ``cache_bytes[k]`` are the predicted usages in the
    k-th upcoming interval (k = 0 is the interval about to be placed).
    """

    cpu_cycles: Tuple[float, ...]
    cache_bytes: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.cpu_cycles) != len(self.cache_bytes):
            raise ValueError("cpu_cycles and cache_bytes must have equal length")
        if not self.cpu_cycles:
            raise ValueError("demand series must cover at least one interval")
        if any(v < 0 for v in self.cpu_cycles) or any(v < 0 for v in self.cache_bytes):
            raise ValueError("demand values must be non-negative")

    @property
    def horizon(self) -> int:
        return len(self.cpu_cycles)

    @property
    def peak_cpu_cycles(self) -> float:
        return float(max(self.cpu_cycles))

    @property
    def peak_cache_bytes(self) -> float:
        return float(max(self.cache_bytes))


@dataclass
class _GroupHistory:
    """Holt level+trend state of one group's demand smoother."""

    cycles_level: float
    cycles_trend: float = 0.0
    bytes_level: float = 0.0
    bytes_trend: float = 0.0
    observations: int = 0


class DemandForecaster:
    """Deterministic per-group demand forecaster (Holt level + trend).

    ``alpha`` smooths the level, ``beta`` the trend; a group with no
    history forecasts the configured priors (so brand-new groups — churn
    arrivals, splits — get a sane placement instead of zero demand).
    """

    def __init__(
        self,
        alpha: float = 0.5,
        beta: float = 0.3,
        prior_cycles: float = 1e10,
        prior_bytes: float = 1e8,
    ) -> None:
        if not 0.0 < alpha <= 1.0 or not 0.0 <= beta <= 1.0:
            raise ValueError("alpha must be in (0, 1] and beta in [0, 1]")
        if prior_cycles < 0 or prior_bytes < 0:
            raise ValueError("priors must be non-negative")
        self.alpha = alpha
        self.beta = beta
        self.prior_cycles = float(prior_cycles)
        self.prior_bytes = float(prior_bytes)
        self._history: Dict[int, _GroupHistory] = {}
        self._external: Dict[int, float] = {}

    # ------------------------------------------------------------- external
    def set_external(self, forecasts: Mapping[int, float]) -> None:
        """Override the next-interval CPU forecast per group (twin feed).

        The override applies to the next :meth:`forecast` calls and is
        consumed by :meth:`observe` (one simulator interval), matching the
        predict-then-observe cadence of the scheme.  Non-finite forecasts
        (predicted outages) are dropped — the smoother covers those groups.
        """
        self._external = {
            int(gid): max(float(v), 0.0)
            for gid, v in forecasts.items()
            if math.isfinite(float(v))
        }

    def external_forecast(self, group_id: int) -> Optional[float]:
        return self._external.get(group_id)

    # ------------------------------------------------------------ forecasts
    def forecast(self, group_id: int, horizon: int) -> DemandSeries:
        """Predicted demand series of one group over ``horizon`` intervals."""
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        state = self._history.get(group_id)
        if state is None:
            cycles_level, cycles_trend = self.prior_cycles, 0.0
            bytes_level, bytes_trend = self.prior_bytes, 0.0
        else:
            cycles_level, cycles_trend = state.cycles_level, state.cycles_trend
            bytes_level, bytes_trend = state.bytes_level, state.bytes_trend
        external = self._external.get(group_id)
        if external is not None:
            # The twin predicted the next interval's cycles outright; keep
            # the smoother's trend for the steps beyond it.
            cycles_level = external
        cycles = tuple(
            max(cycles_level + k * cycles_trend, 0.0) for k in range(horizon)
        )
        cache = tuple(max(bytes_level + k * bytes_trend, 0.0) for k in range(horizon))
        return DemandSeries(cpu_cycles=cycles, cache_bytes=cache)

    # ---------------------------------------------------------- observations
    def observe(self, group_id: int, cycles: float, cache_bytes: float) -> None:
        """Fold one interval's observed usage into the group's smoother."""
        cycles = max(float(cycles), 0.0)
        cache_bytes = max(float(cache_bytes), 0.0)
        state = self._history.get(group_id)
        if state is None:
            self._history[group_id] = _GroupHistory(
                cycles_level=cycles, bytes_level=cache_bytes, observations=1
            )
        else:
            new_cycles = self.alpha * cycles + (1.0 - self.alpha) * (
                state.cycles_level + state.cycles_trend
            )
            state.cycles_trend = (
                self.beta * (new_cycles - state.cycles_level)
                + (1.0 - self.beta) * state.cycles_trend
            )
            state.cycles_level = new_cycles
            new_bytes = self.alpha * cache_bytes + (1.0 - self.alpha) * (
                state.bytes_level + state.bytes_trend
            )
            state.bytes_trend = (
                self.beta * (new_bytes - state.bytes_level)
                + (1.0 - self.beta) * state.bytes_trend
            )
            state.bytes_level = new_bytes
            state.observations += 1
        self._external.pop(group_id, None)

    def observations(self, group_id: int) -> int:
        state = self._history.get(group_id)
        return state.observations if state is not None else 0

    def relative_error(self, predicted: float, observed: float) -> float:
        """Symmetric-floor relative prediction error, safe near zero."""
        denom = max(abs(predicted), abs(observed), 1.0)
        return abs(observed - predicted) / denom

    def forget(self, group_id: int) -> None:
        """Drop a group's history (group dissolved by churn/merge)."""
        self._history.pop(group_id, None)
        self._external.pop(group_id, None)

    def known_groups(self) -> Tuple[int, ...]:
        return tuple(sorted(self._history))
