"""Horizon reservation: book per-cell radio blocks ahead of scripted events.

A scenario timeline is *known in advance* (a flash crowd at interval 3, an
outage at interval 4, ...), so a reservation planner does not have to wait
for demand to materialise: :class:`HorizonReservationPlanner` books
per-cell resource blocks ``lead_intervals`` ahead, scaling its smoothed
demand estimate by the scripted :class:`DemandShock`\\ s it can see coming
and fitting the requests into each cell's scripted budget with the
existing :mod:`repro.core.reservation` machinery
(:class:`~repro.core.reservation.ReservationPolicy` margins +
:class:`~repro.core.reservation.AdmissionController` proportional
scale-down).  Booked versus realised demand is audited per interval with
:class:`~repro.net.resources.IntervalUsage`, the same reserved/used record
the in-interval reservation loop uses.

The planner is deliberately ignorant of :mod:`repro.scenario` (placement
sits below the scenario layer): the scenario runner translates its
timeline events into :class:`DemandShock` descriptors via
``timeline_demand_shocks``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.reservation import AdmissionController, ReservationPolicy
from repro.net.resources import IntervalUsage


@dataclass(frozen=True)
class DemandShock:
    """A scripted, foreseeable demand or budget change at one interval.

    ``kind`` is one of ``"flash_crowd"`` / ``"mass_departure"``
    (population shocks: ``magnitude`` users join/leave) or
    ``"cell_outage"`` / ``"budget_change"`` (budget shocks: ``cell``'s
    budget becomes ``budget_blocks``; ``cell=None`` marks a target the
    spec cannot resolve ahead of time, e.g. ``"busiest"`` — the demand
    displacement is still anticipated, the budget change is not).
    """

    interval: int
    kind: str
    magnitude: float = 0.0
    cell: Optional[int] = None
    budget_blocks: Optional[float] = None

    _KINDS = ("flash_crowd", "mass_departure", "cell_outage", "budget_change")

    def __post_init__(self) -> None:
        if self.interval < 0:
            raise ValueError("shock interval must be non-negative")
        if self.kind not in self._KINDS:
            raise ValueError(
                f"unknown shock kind {self.kind!r} (known: {', '.join(self._KINDS)})"
            )


@dataclass(frozen=True)
class ReservationBooking:
    """One advance booking: blocks for ``cell`` at interval ``for_interval``."""

    made_at_interval: int
    for_interval: int
    cell: int
    requested_blocks: float
    granted_blocks: float
    scaled_down: bool
    #: Shock kinds that shaped the request ("flash_crowd", ...); empty for
    #: a pure baseline booking.
    reasons: Tuple[str, ...] = ()

    def to_record(self) -> dict:
        """JSON-canonical tagged record (``controller_events`` style)."""
        return {
            "type": "reservation_booking",
            "made_at_interval": int(self.made_at_interval),
            "for_interval": int(self.for_interval),
            "cell": int(self.cell),
            "requested_blocks": float(self.requested_blocks),
            "granted_blocks": float(self.granted_blocks),
            "scaled_down": bool(self.scaled_down),
            "reasons": list(self.reasons),
        }


@dataclass
class HorizonAudit:
    """Booked-versus-realised audit over the run."""

    intervals: List[IntervalUsage] = field(default_factory=list)

    def mean_over_booking(self) -> float:
        if not self.intervals:
            return 0.0
        return float(np.mean([u.over_provisioned_blocks() for u in self.intervals]))

    def mean_under_booking(self) -> float:
        if not self.intervals:
            return 0.0
        return float(np.mean([u.under_provisioned_blocks() for u in self.intervals]))


class HorizonReservationPlanner:
    """Books per-cell radio blocks several intervals ahead of the timeline."""

    def __init__(
        self,
        shocks: Sequence[DemandShock],
        num_cells: int,
        budget_blocks: float,
        num_users: int,
        lead_intervals: int = 2,
        policy: Optional[ReservationPolicy] = None,
        alpha: float = 0.5,
    ) -> None:
        if num_cells < 1:
            raise ValueError("num_cells must be at least 1")
        if budget_blocks <= 0:
            raise ValueError("budget_blocks must be positive")
        if lead_intervals < 1:
            raise ValueError("lead_intervals must be at least 1")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.shocks = tuple(shocks)
        self.num_cells = int(num_cells)
        self.base_budget = float(budget_blocks)
        self.lead_intervals = int(lead_intervals)
        self.policy = policy if policy is not None else ReservationPolicy()
        self.alpha = alpha
        self.num_users = max(int(num_users), 1)
        self._demand: Dict[int, float] = {cell: 0.0 for cell in range(num_cells)}
        self._seen_intervals = 0
        #: bookings[for_interval][cell] -> granted blocks (latest wins: the
        #: booking made closest to the interval refines earlier ones).
        self._booked: Dict[int, Dict[int, float]] = {}
        self.bookings: List[ReservationBooking] = []
        self.audit = HorizonAudit()

    # -------------------------------------------------------------- scripted
    def scripted_budget(self, cell: int, interval: int) -> float:
        """The cell's budget at ``interval`` after all scripted changes."""
        budget = self.base_budget
        for shock in sorted(self.shocks, key=lambda s: s.interval):
            if shock.interval > interval:
                break
            if (
                shock.kind in ("cell_outage", "budget_change")
                and shock.cell == cell
                and shock.budget_blocks is not None
            ):
                budget = float(shock.budget_blocks)
        return budget

    def _demand_scale(self, interval: int) -> Tuple[float, Tuple[str, ...]]:
        """Demand multiplier from the shocks scripted *at* ``interval``."""
        scale = 1.0
        reasons: List[str] = []
        for shock in self.shocks:
            if shock.interval != interval:
                continue
            if shock.kind == "flash_crowd":
                scale *= 1.0 + shock.magnitude / self.num_users
            elif shock.kind == "mass_departure":
                scale *= max(1.0 - shock.magnitude / self.num_users, 0.0)
            elif shock.kind == "cell_outage":
                # Displaced load lands on the surviving cells.
                if self.num_cells > 1:
                    scale *= 1.0 + 1.0 / (self.num_cells - 1)
            else:
                continue
            reasons.append(shock.kind)
        return scale, tuple(reasons)

    # --------------------------------------------------------------- observe
    def observe(self, interval: int, demand_by_cell: Mapping[int, float]) -> None:
        """Audit this interval's bookings and fold demand into the smoother."""
        demand = {
            cell: float(demand_by_cell.get(cell, 0.0))
            for cell in range(self.num_cells)
        }
        booked = self._booked.pop(interval, None)
        if booked is not None:
            self.audit.intervals.append(
                IntervalUsage(interval_index=interval, reserved=booked, used=demand)
            )
        if self._seen_intervals == 0:
            self._demand = dict(demand)
        else:
            self._demand = {
                cell: self.alpha * demand[cell]
                + (1.0 - self.alpha) * self._demand[cell]
                for cell in range(self.num_cells)
            }
        self._seen_intervals += 1

    def update_population(self, num_users: int) -> None:
        self.num_users = max(int(num_users), 1)

    # ------------------------------------------------------------------ plan
    def plan(self, interval: int) -> List[ReservationBooking]:
        """Book the next ``lead_intervals`` intervals' per-cell blocks.

        Called after :meth:`observe` for ``interval``; re-booking a future
        interval on later calls refines the earlier booking (latest wins).
        """
        made: List[ReservationBooking] = []
        for future in range(interval + 1, interval + 1 + self.lead_intervals):
            scale, reasons = self._demand_scale(future)
            for cell in range(self.num_cells):
                baseline = self._demand.get(cell, 0.0)
                surge = baseline * (scale - 1.0)
                requests = {"baseline": self.policy.blocks_request(baseline)}
                if abs(surge) > 1e-12:
                    # Shock uplift is a separate request line so proportional
                    # admission scales baseline and surge together.
                    requests["surge"] = max(
                        self.policy.blocks_request(max(baseline + surge, 0.0))
                        - requests["baseline"],
                        0.0,
                    )
                budget = self.scripted_budget(cell, future)
                if budget <= 0.0:
                    granted_total = 0.0
                    requested_total = float(sum(requests.values()))
                    scaled = True
                else:
                    admitted = AdmissionController(budget).admit(requests)
                    granted_total = admitted.total_granted
                    requested_total = admitted.total_requested
                    scaled = admitted.scaled_down
                booking = ReservationBooking(
                    made_at_interval=int(interval),
                    for_interval=int(future),
                    cell=int(cell),
                    requested_blocks=float(requested_total),
                    granted_blocks=float(granted_total),
                    scaled_down=bool(scaled),
                    reasons=reasons,
                )
                self._booked.setdefault(future, {})[cell] = booking.granted_blocks
                self.bookings.append(booking)
                made.append(booking)
        return made

    # ------------------------------------------------------------- reporting
    def summary(self) -> Dict[str, object]:
        return {
            "lead_intervals": int(self.lead_intervals),
            "total_bookings": int(len(self.bookings)),
            "scaled_down_bookings": int(
                sum(1 for b in self.bookings if b.scaled_down)
            ),
            "event_driven_bookings": int(
                sum(1 for b in self.bookings if b.reasons)
            ),
            "mean_over_booking_blocks": self.audit.mean_over_booking(),
            "mean_under_booking_blocks": self.audit.mean_under_booking(),
        }
