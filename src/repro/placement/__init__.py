"""Predictive edge placement and horizon reservation.

The subsystem between the digital twin's demand predictions and the edge/
reservation substrate (the Elasecutor-shaped loop: predict each job's
time-varying resource demand, pack jobs by dominant remaining resource,
reprovision when prediction error grows):

* :mod:`repro.placement.demand` — per-job :class:`DemandSeries` and the
  deterministic :class:`DemandForecaster` (twin predictions feed in as
  external forecasts);
* :mod:`repro.placement.planner` — :class:`PlacementPlanner` packing jobs
  onto servers (``"drr"`` dominant-remaining-resource, ``"first_fit"``
  baseline) and the :func:`fragmentation_index` stranded-capacity metric;
* :mod:`repro.placement.fleet` — :class:`EdgeFleet`, N edge servers with
  per-group routing (one server, no assignment = the historical path);
* :mod:`repro.placement.manager` — :class:`PlacementManager` driving
  forecast → pack → observe, firing :class:`ReprovisionEvent`\\ s on the
  :class:`~repro.sim.events.EventQueue` bus on mispredicts;
* :mod:`repro.placement.horizon` — :class:`HorizonReservationPlanner`
  booking per-cell radio blocks ahead of scripted timeline events via
  :mod:`repro.core.reservation`.
"""

from repro.placement.demand import DemandForecaster, DemandSeries
from repro.placement.fleet import EdgeFleet, FleetComputeUsage
from repro.placement.manager import (
    PlacementConfig,
    PlacementManager,
    ReprovisionEvent,
)
from repro.placement.planner import (
    PLACEMENT_STRATEGIES,
    PlacementPlanner,
    ServerCapacity,
    fragmentation_index,
)

#: Horizon names resolved lazily (PEP 562): :mod:`repro.placement.horizon`
#: pulls in :mod:`repro.core.reservation`, whose package __init__ imports
#: the simulator — which imports this package for the fleet.  Deferring the
#: horizon import keeps that chain acyclic.
_HORIZON_NAMES = (
    "DemandShock",
    "HorizonAudit",
    "HorizonReservationPlanner",
    "ReservationBooking",
)


def __getattr__(name: str):
    if name in _HORIZON_NAMES:
        from repro.placement import horizon

        return getattr(horizon, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "DemandForecaster",
    "DemandSeries",
    "DemandShock",
    "EdgeFleet",
    "FleetComputeUsage",
    "HorizonAudit",
    "HorizonReservationPlanner",
    "PLACEMENT_STRATEGIES",
    "PlacementConfig",
    "PlacementManager",
    "PlacementPlanner",
    "ReprovisionEvent",
    "ReservationBooking",
    "ServerCapacity",
    "fragmentation_index",
]
