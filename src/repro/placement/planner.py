"""Predictive job-to-server packing: dominant-remaining-resource vs first-fit.

The planner assigns jobs (one per multicast group: its transcoding CPU
demand plus its cache working set) to edge servers against each job's
predicted :class:`~repro.placement.demand.DemandSeries`.  Two strategies:

* ``"drr"`` — dominant-remaining-resource packing in the Elasecutor
  style: jobs are placed largest-dominant-demand first, and each job goes
  to the server whose *post-placement* dominant resource utilization
  (peak over the horizon, max over CPU/cache) is smallest.  This balances
  the dominant resource across the fleet and keeps the two resources
  even within a server, minimizing stranded ("fragmented") capacity.
* ``"first_fit"`` — the naive baseline for A/B comparisons: jobs in id
  order onto the first server with room, which piles load onto low ids
  and strands capacity on the rest of the fleet.

Packing is deterministic (sorted iteration, no RNG) so a placement-enabled
run stays reproducible from its seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.placement.demand import DemandSeries

#: Registered packing strategies, in documentation order.
PLACEMENT_STRATEGIES = ("drr", "first_fit")


@dataclass(frozen=True)
class ServerCapacity:
    """Per-interval capacity of one edge server, in job-demand units."""

    cpu_cycles_per_interval: float
    cache_bytes: float

    def __post_init__(self) -> None:
        if self.cpu_cycles_per_interval <= 0 or self.cache_bytes <= 0:
            raise ValueError("server capacities must be positive")


class PlacementPlanner:
    """Packs per-group jobs onto a fleet of edge servers.

    ``pinned`` assignments (groups already running on a server) are kept in
    place and only contribute load; packing decides the *unpinned* jobs.
    A job that fits nowhere is still placed — on the least-loaded server —
    because a multicast group cannot be dropped; overload then shows up in
    the utilization/fragmentation series instead of being hidden.
    """

    def __init__(
        self, capacities: Sequence[ServerCapacity], strategy: str = "drr"
    ) -> None:
        if not capacities:
            raise ValueError("placement needs at least one server")
        if strategy not in PLACEMENT_STRATEGIES:
            raise ValueError(
                f"unknown placement strategy {strategy!r} "
                f"(known: {', '.join(PLACEMENT_STRATEGIES)})"
            )
        self.capacities = list(capacities)
        self.strategy = strategy

    @property
    def num_servers(self) -> int:
        return len(self.capacities)

    # ---------------------------------------------------------------- packing
    def pack(
        self,
        demands: Mapping[int, DemandSeries],
        pinned: Optional[Mapping[int, int]] = None,
    ) -> Dict[int, int]:
        """Assign every job in ``demands`` to a server; returns job → server."""
        pinned = dict(pinned or {})
        horizon = max((d.horizon for d in demands.values()), default=1)
        # Per-server projected load over the horizon, seeded by pinned jobs.
        cpu_load = np.zeros((self.num_servers, horizon))
        cache_load = np.zeros((self.num_servers, horizon))
        assignment: Dict[int, int] = {}
        for job_id, server in sorted(pinned.items()):
            if job_id not in demands:
                continue
            server = int(server) % self.num_servers
            self._add_load(cpu_load, cache_load, server, demands[job_id])
            assignment[job_id] = server

        free = [job_id for job_id in demands if job_id not in assignment]
        if self.strategy == "drr":
            # Largest dominant demand first: big jobs get placed while the
            # fleet is still even, small ones fill the gaps.
            free.sort(
                key=lambda jid: (-self._dominant_demand(demands[jid]), jid)
            )
            for job_id in free:
                server = self._best_drr_server(cpu_load, cache_load, demands[job_id])
                self._add_load(cpu_load, cache_load, server, demands[job_id])
                assignment[job_id] = server
        else:
            for job_id in sorted(free):
                server = self._first_fit_server(cpu_load, cache_load, demands[job_id])
                self._add_load(cpu_load, cache_load, server, demands[job_id])
                assignment[job_id] = server
        return assignment

    def place_one(
        self,
        demand: DemandSeries,
        demands: Mapping[int, DemandSeries],
        assignment: Mapping[int, int],
        exclude: Optional[int] = None,
    ) -> int:
        """Best server for a single (re)placed job, given the current layout.

        ``assignment``/``demands`` describe the jobs already running;
        ``exclude`` removes the job's own current server load share (the
        job being migrated) from consideration as a load contribution.
        """
        horizon = max(demand.horizon, max((d.horizon for d in demands.values()), default=1))
        cpu_load = np.zeros((self.num_servers, horizon))
        cache_load = np.zeros((self.num_servers, horizon))
        for job_id, server in assignment.items():
            if job_id == exclude or job_id not in demands:
                continue
            self._add_load(cpu_load, cache_load, int(server) % self.num_servers, demands[job_id])
        if self.strategy == "drr":
            return self._best_drr_server(cpu_load, cache_load, demand)
        return self._first_fit_server(cpu_load, cache_load, demand)

    # ----------------------------------------------------------- inner rules
    def _add_load(
        self,
        cpu_load: np.ndarray,
        cache_load: np.ndarray,
        server: int,
        demand: DemandSeries,
    ) -> None:
        steps = min(demand.horizon, cpu_load.shape[1])
        cpu_load[server, :steps] += demand.cpu_cycles[:steps]
        cache_load[server, :steps] += demand.cache_bytes[:steps]

    def _utilizations(
        self, cpu_load: np.ndarray, cache_load: np.ndarray, server: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        cap = self.capacities[server]
        return (
            cpu_load[server] / cap.cpu_cycles_per_interval,
            cache_load[server] / cap.cache_bytes,
        )

    def _dominant_demand(self, demand: DemandSeries) -> float:
        """Largest demand-to-mean-capacity ratio over resources (job size)."""
        mean_cpu = float(
            np.mean([c.cpu_cycles_per_interval for c in self.capacities])
        )
        mean_cache = float(np.mean([c.cache_bytes for c in self.capacities]))
        return max(
            demand.peak_cpu_cycles / mean_cpu, demand.peak_cache_bytes / mean_cache
        )

    def _post_placement_drr(
        self,
        cpu_load: np.ndarray,
        cache_load: np.ndarray,
        server: int,
        demand: DemandSeries,
    ) -> float:
        """Dominant utilization of ``server`` if the job were placed there."""
        cap = self.capacities[server]
        steps = min(demand.horizon, cpu_load.shape[1])
        cpu = cpu_load[server].copy()
        cache = cache_load[server].copy()
        cpu[:steps] += demand.cpu_cycles[:steps]
        cache[:steps] += demand.cache_bytes[:steps]
        return float(
            max(
                cpu.max() / cap.cpu_cycles_per_interval,
                cache.max() / cap.cache_bytes,
            )
        )

    def _best_drr_server(
        self, cpu_load: np.ndarray, cache_load: np.ndarray, demand: DemandSeries
    ) -> int:
        scores = [
            self._post_placement_drr(cpu_load, cache_load, server, demand)
            for server in range(self.num_servers)
        ]
        return int(np.argmin(scores))

    def _first_fit_server(
        self, cpu_load: np.ndarray, cache_load: np.ndarray, demand: DemandSeries
    ) -> int:
        for server in range(self.num_servers):
            if self._post_placement_drr(cpu_load, cache_load, server, demand) <= 1.0:
                return server
        # Nothing fits: overflow to the currently least-loaded server.
        scores = [
            max(self._utilizations(cpu_load, cache_load, server)[0].max(initial=0.0),
                self._utilizations(cpu_load, cache_load, server)[1].max(initial=0.0))
            for server in range(self.num_servers)
        ]
        return int(np.argmin(scores))


def fragmentation_index(
    cpu_utilization: Sequence[float], cache_utilization: Sequence[float]
) -> float:
    """Stranded-capacity score of one fleet snapshot (lower is better).

    Two additive terms, both zero for a perfectly packed fleet:

    * *imbalance* — the spread (population standard deviation) of dominant
      utilization across servers: capacity idling on one server while
      another is saturated cannot be used by a job that needs one
      contiguous home;
    * *skew* — the mean per-server gap between the dominant and the other
      resource: a server whose CPU is exhausted while its cache sits empty
      has unusable cache capacity, and vice versa.
    """
    cpu = np.asarray(cpu_utilization, dtype=float)
    cache = np.asarray(cache_utilization, dtype=float)
    if cpu.shape != cache.shape or cpu.size == 0:
        raise ValueError("need equal-length, non-empty utilization vectors")
    dominant = np.maximum(cpu, cache)
    imbalance = float(dominant.std())
    skew = float(np.mean(dominant - np.minimum(cpu, cache)))
    return imbalance + skew
