"""A fleet of edge servers with per-group routing.

:class:`EdgeFleet` generalises the single hard-wired
:class:`~repro.edge.server.EdgeServer` to N servers: each interval's
per-group transcode requests are routed to the assigned server (server 0
for every group when no assignment is given — bit-identical to the
historical single-server path), and the fleet keeps per-server usage
histories so utilization/fragmentation series can be exported.

Routing preserves each server's request iteration order (insertion order
of the incoming mapping), so a one-server fleet walks the cache exactly
like the old direct ``EdgeServer.process_interval`` call.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.edge.cache import video_size_bytes
from repro.edge.server import (
    EdgeServer,
    EdgeServerConfig,
    IntervalComputeUsage,
    TranscodeRequest,
)
from repro.video.catalog import VideoCatalog


@dataclass
class FleetComputeUsage:
    """Fleet-wide computing usage of one reservation interval."""

    interval_index: int
    usage_by_server: Dict[int, IntervalComputeUsage] = field(default_factory=dict)
    server_of_group: Dict[int, int] = field(default_factory=dict)
    #: Distinct-video cache working set each group touched this interval.
    cache_bytes_by_group: Dict[int, float] = field(default_factory=dict)

    @property
    def cycles_by_group(self) -> Dict[int, float]:
        merged: Dict[int, float] = {}
        for usage in self.usage_by_server.values():
            merged.update(usage.cycles_by_group)
        return merged

    @property
    def total_cycles(self) -> float:
        return float(sum(u.total_cycles for u in self.usage_by_server.values()))

    @property
    def cache_misses(self) -> int:
        return int(sum(u.cache_misses for u in self.usage_by_server.values()))

    def cycles_by_server(self) -> Dict[int, float]:
        return {
            server: usage.total_cycles
            for server, usage in self.usage_by_server.items()
        }


class EdgeFleet:
    """N edge servers behind one per-interval routing front."""

    def __init__(
        self,
        catalog: VideoCatalog,
        configs: Sequence[EdgeServerConfig],
    ) -> None:
        if not configs:
            raise ValueError("fleet needs at least one server")
        self.catalog = catalog
        self.servers: List[EdgeServer] = [
            EdgeServer(catalog, config) for config in configs
        ]
        self.usage_history: List[FleetComputeUsage] = []

    @property
    def num_servers(self) -> int:
        return len(self.servers)

    # ------------------------------------------------------------- warm-up
    def warm_caches(self, top_videos: Optional[int] = None) -> int:
        """Warm every server's cache with the most popular videos."""
        return sum(server.warm_cache(top_videos) for server in self.servers)

    # ---------------------------------------------------------- processing
    def process_interval(
        self,
        interval_index: int,
        group_requests: Mapping[int, Sequence[TranscodeRequest]],
        assignment: Optional[Mapping[int, int]] = None,
        time_s: float = 0.0,
    ) -> FleetComputeUsage:
        """Route each group's requests to its assigned server and run them.

        ``assignment`` maps group id → server index; unassigned groups (and
        every group when ``assignment`` is ``None``) run on server 0, the
        historical single-server behaviour.
        """
        assignment = assignment or {}
        routed: Dict[int, Dict[int, Sequence[TranscodeRequest]]] = {
            server: {} for server in range(self.num_servers)
        }
        server_of_group: Dict[int, int] = {}
        for group_id, requests in group_requests.items():
            server = int(assignment.get(group_id, 0)) % self.num_servers
            routed[server][group_id] = requests
            server_of_group[group_id] = server
        usage = FleetComputeUsage(
            interval_index=interval_index, server_of_group=server_of_group
        )
        for server_index, server in enumerate(self.servers):
            usage.usage_by_server[server_index] = server.process_interval(
                interval_index, routed[server_index], time_s=time_s
            )
        for group_id, requests in group_requests.items():
            seen: Dict[int, float] = {}
            for video, _target, _duration in requests:
                seen.setdefault(video.video_id, video_size_bytes(video))
            usage.cache_bytes_by_group[group_id] = float(sum(seen.values()))
        self.usage_history.append(usage)
        return usage

    # ------------------------------------------------------------ reporting
    def utilization_by_server(self, interval_s: float) -> Dict[int, List[float]]:
        """Per-server CPU utilization series over the recorded intervals."""
        series: Dict[int, List[float]] = {s: [] for s in range(self.num_servers)}
        for usage in self.usage_history:
            for server_index, server in enumerate(self.servers):
                per_server = usage.usage_by_server.get(server_index)
                value = (
                    per_server.utilization(
                        server.config.cpu_capacity_cycles_per_s, interval_s
                    )
                    if per_server is not None
                    else 0.0
                )
                series[server_index].append(float(value))
        return series

    def cache_utilization_by_server(self) -> Dict[int, float]:
        """Current cache fill fraction per server."""
        return {
            index: float(server.cache.used_bytes / server.cache.capacity_bytes)
            for index, server in enumerate(self.servers)
        }

    def total_capacity_cycles_per_s(self) -> float:
        return float(
            sum(server.config.cpu_capacity_cycles_per_s for server in self.servers)
        )

    def total_cycles_history(self) -> np.ndarray:
        return np.array([usage.total_cycles for usage in self.usage_history])

    def cache_stats(self) -> Dict[str, float]:
        """Aggregated cache counters over the whole fleet."""
        hits = sum(server.cache.stats.hits for server in self.servers)
        misses = sum(server.cache.stats.misses for server in self.servers)
        evictions = sum(server.cache.stats.evictions for server in self.servers)
        requests = hits + misses
        return {
            "hits": int(hits),
            "misses": int(misses),
            "evictions": int(evictions),
            "hit_ratio": float(hits / requests) if requests else 0.0,
        }
