"""Synthetic challenge-dataset generator.

Builds a :class:`~repro.dataset.schema.DatasetBundle` by (1) generating a
video catalog with Zipf popularity and per-segment VBR traces and (2)
simulating preference-driven viewing sessions for a population of users over
several reservation intervals.  The result has the same shape as the public
short-video-streaming-challenge data the paper consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.behavior.preference import PreferenceVector, random_preference
from repro.behavior.session import SessionConfig, SessionGenerator
from repro.behavior.watching import WatchingDurationModel
from repro.dataset.schema import DatasetBundle, SwipeTraceRecord, UserRecord, VideoRecord
from repro.video.catalog import CatalogConfig, VideoCatalog
from repro.video.categories import DEFAULT_CATEGORIES


@dataclass
class ChallengeDatasetConfig:
    """Configuration of the synthetic dataset generator."""

    num_videos: int = 150
    num_users: int = 40
    num_intervals: int = 6
    interval_s: float = 300.0
    categories: Sequence[str] = DEFAULT_CATEGORIES
    zipf_exponent: float = 1.0
    preference_concentration: float = 0.7
    favourite_category: Optional[str] = None
    favourite_user_fraction: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_videos <= 0 or self.num_users <= 0 or self.num_intervals <= 0:
            raise ValueError("num_videos, num_users and num_intervals must be positive")
        if self.interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if not 0.0 <= self.favourite_user_fraction <= 1.0:
            raise ValueError("favourite_user_fraction must be in [0, 1]")
        if self.favourite_category is not None and self.favourite_category not in self.categories:
            raise ValueError("favourite_category must be one of categories")


class ChallengeDatasetGenerator:
    """Generates synthetic video bitrate traces and user swipe traces."""

    def __init__(self, config: Optional[ChallengeDatasetConfig] = None) -> None:
        self.config = config if config is not None else ChallengeDatasetConfig()

    # ------------------------------------------------------------- building
    def build_catalog(self) -> VideoCatalog:
        config = self.config
        return VideoCatalog.generate(
            CatalogConfig(
                num_videos=config.num_videos,
                categories=config.categories,
                zipf_exponent=config.zipf_exponent,
                seed=config.seed,
            )
        )

    def build_preferences(self, rng: np.random.Generator) -> List[PreferenceVector]:
        """One preference vector per user, optionally biasing a user subset."""
        config = self.config
        preferences: List[PreferenceVector] = []
        num_favoured = int(round(config.favourite_user_fraction * config.num_users))
        for user_id in range(config.num_users):
            favourite = (
                config.favourite_category
                if config.favourite_category is not None and user_id < num_favoured
                else None
            )
            preferences.append(
                random_preference(
                    rng,
                    categories=config.categories,
                    concentration=config.preference_concentration,
                    favourite=favourite,
                )
            )
        return preferences

    def generate(self) -> DatasetBundle:
        """Generate the full dataset bundle."""
        config = self.config
        # Imported lazily: repro.sim pulls in modules that import this one.
        from repro.sim.rng import legacy_stream

        rng = legacy_stream(config.seed)
        catalog = self.build_catalog()
        preferences = self.build_preferences(rng)
        generator = SessionGenerator(
            catalog,
            WatchingDurationModel(),
            SessionConfig(session_duration_s=config.interval_s),
        )

        videos = [
            VideoRecord(
                video_id=video.video_id,
                category=video.category,
                duration_s=video.duration_s,
                segment_duration_s=video.segment_duration_s,
                segment_sizes_bits={
                    name: sizes.tolist() for name, sizes in video.segment_sizes.items()
                },
            )
            for video in catalog
        ]
        users = [
            UserRecord(user_id=user_id, preference=preference.as_dict())
            for user_id, preference in enumerate(preferences)
        ]

        traces: List[SwipeTraceRecord] = []
        for interval in range(config.num_intervals):
            start = interval * config.interval_s
            sessions = generator.generate_population_sessions(
                preferences, rng=rng, start_time_s=start, duration_s=config.interval_s
            )
            for events in sessions:
                for event in events:
                    record = event.record
                    traces.append(
                        SwipeTraceRecord(
                            user_id=record.user_id,
                            video_id=record.video_id,
                            category=record.category,
                            timestamp_s=record.timestamp_s,
                            watch_duration_s=record.watch_duration_s,
                            video_duration_s=record.video_duration_s,
                            swiped=record.swiped,
                        )
                    )

        metadata = {
            "interval_s": config.interval_s,
            "num_intervals": float(config.num_intervals),
            "seed": float(config.seed),
            "zipf_exponent": config.zipf_exponent,
        }
        return DatasetBundle(videos=videos, users=users, swipe_traces=traces, metadata=metadata)
