"""Dataset schema.

The bundle mirrors the structure of the public short-video-streaming
challenge data: a table of videos (category, duration, per-segment bitrate
trace at each representation), a table of users (initial preference) and a
table of swipe traces (which user watched which video for how long).  All
records are plain dataclasses with dictionary round-tripping so the bundle
can be serialised to JSON.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class VideoRecord:
    """One video in the dataset."""

    video_id: int
    category: str
    duration_s: float
    segment_duration_s: float
    segment_sizes_bits: Dict[str, List[float]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.duration_s <= 0 or self.segment_duration_s <= 0:
            raise ValueError("durations must be positive")

    def to_dict(self) -> dict:
        return {
            "video_id": self.video_id,
            "category": self.category,
            "duration_s": self.duration_s,
            "segment_duration_s": self.segment_duration_s,
            "segment_sizes_bits": {
                str(name): list(map(float, sizes))
                for name, sizes in self.segment_sizes_bits.items()
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "VideoRecord":
        return cls(
            video_id=int(data["video_id"]),
            category=str(data["category"]),
            duration_s=float(data["duration_s"]),
            segment_duration_s=float(data["segment_duration_s"]),
            segment_sizes_bits={
                str(name): [float(v) for v in sizes]
                for name, sizes in data.get("segment_sizes_bits", {}).items()
            },
        )


@dataclass
class UserRecord:
    """One user in the dataset (initial preference over categories)."""

    user_id: int
    preference: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "user_id": self.user_id,
            "preference": {str(k): float(v) for k, v in self.preference.items()},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "UserRecord":
        return cls(
            user_id=int(data["user_id"]),
            preference={str(k): float(v) for k, v in data.get("preference", {}).items()},
        )


@dataclass
class SwipeTraceRecord:
    """One viewing in the swipe trace."""

    user_id: int
    video_id: int
    category: str
    timestamp_s: float
    watch_duration_s: float
    video_duration_s: float
    swiped: bool

    def __post_init__(self) -> None:
        if self.watch_duration_s < 0 or self.video_duration_s <= 0:
            raise ValueError("durations must be positive")

    def to_dict(self) -> dict:
        return {
            "user_id": self.user_id,
            "video_id": self.video_id,
            "category": self.category,
            "timestamp_s": self.timestamp_s,
            "watch_duration_s": self.watch_duration_s,
            "video_duration_s": self.video_duration_s,
            "swiped": self.swiped,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SwipeTraceRecord":
        return cls(
            user_id=int(data["user_id"]),
            video_id=int(data["video_id"]),
            category=str(data["category"]),
            timestamp_s=float(data["timestamp_s"]),
            watch_duration_s=float(data["watch_duration_s"]),
            video_duration_s=float(data["video_duration_s"]),
            swiped=bool(data["swiped"]),
        )


@dataclass
class DatasetBundle:
    """The full dataset: videos, users and swipe traces."""

    videos: List[VideoRecord] = field(default_factory=list)
    users: List[UserRecord] = field(default_factory=list)
    swipe_traces: List[SwipeTraceRecord] = field(default_factory=list)
    metadata: Dict[str, float] = field(default_factory=dict)

    @property
    def num_videos(self) -> int:
        return len(self.videos)

    @property
    def num_users(self) -> int:
        return len(self.users)

    @property
    def num_traces(self) -> int:
        return len(self.swipe_traces)

    def traces_for_user(self, user_id: int) -> List[SwipeTraceRecord]:
        return [trace for trace in self.swipe_traces if trace.user_id == user_id]

    def categories(self) -> List[str]:
        seen: List[str] = []
        for video in self.videos:
            if video.category not in seen:
                seen.append(video.category)
        return seen

    def to_dict(self) -> dict:
        return {
            "videos": [video.to_dict() for video in self.videos],
            "users": [user.to_dict() for user in self.users],
            "swipe_traces": [trace.to_dict() for trace in self.swipe_traces],
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DatasetBundle":
        return cls(
            videos=[VideoRecord.from_dict(v) for v in data.get("videos", [])],
            users=[UserRecord.from_dict(u) for u in data.get("users", [])],
            swipe_traces=[SwipeTraceRecord.from_dict(t) for t in data.get("swipe_traces", [])],
            metadata={str(k): float(v) for k, v in data.get("metadata", {}).items()},
        )
