"""Synthetic stand-in for the public short-video-streaming-challenge dataset.

The paper generates "video bitrates and users' swiping behaviors" from the
public short-video-streaming-challenge dataset, which is not redistributable
here.  This subpackage generates a dataset with the same schema and the same
statistical structure (heavy-tailed video popularity, per-segment VBR
bitrate traces, preference-skewed watch/swipe traces), plus a JSON
loader/saver and train/test splitting so experiments are repeatable.
"""

from repro.dataset.schema import DatasetBundle, SwipeTraceRecord, UserRecord, VideoRecord
from repro.dataset.generator import ChallengeDatasetConfig, ChallengeDatasetGenerator
from repro.dataset.loader import load_dataset, save_dataset, train_test_split

__all__ = [
    "ChallengeDatasetConfig",
    "ChallengeDatasetGenerator",
    "DatasetBundle",
    "SwipeTraceRecord",
    "UserRecord",
    "VideoRecord",
    "load_dataset",
    "save_dataset",
    "train_test_split",
]
