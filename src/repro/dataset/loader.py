"""Dataset persistence and splitting."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Tuple, Union

import numpy as np

from repro.dataset.schema import DatasetBundle


def save_dataset(bundle: DatasetBundle, path: Union[str, Path]) -> Path:
    """Serialise a dataset bundle to a JSON file and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(bundle.to_dict(), handle)
    return path


def load_dataset(path: Union[str, Path]) -> DatasetBundle:
    """Load a dataset bundle previously written by :func:`save_dataset`."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"dataset file {path} does not exist")
    with path.open("r", encoding="utf-8") as handle:
        data = json.load(handle)
    return DatasetBundle.from_dict(data)


def train_test_split(
    bundle: DatasetBundle,
    test_fraction: float = 0.25,
    by: str = "time",
    rng: Optional[np.random.Generator] = None,
) -> Tuple[DatasetBundle, DatasetBundle]:
    """Split the swipe traces into train and test bundles.

    ``by='time'`` keeps the chronologically-last fraction for testing (the
    realistic setting for demand prediction); ``by='user'`` holds out a
    random subset of users entirely.
    Videos and users are shared by both splits.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    if by not in ("time", "user"):
        raise ValueError("by must be 'time' or 'user'")

    if by == "time":
        traces = sorted(bundle.swipe_traces, key=lambda t: t.timestamp_s)
        split_index = int(round(len(traces) * (1.0 - test_fraction)))
        train_traces = traces[:split_index]
        test_traces = traces[split_index:]
    else:
        if rng is None:
            raise ValueError(
                "train_test_split(by='user') requires an explicit rng; "
                "derive one from the repro.sim.rng registry (e.g. "
                "legacy_stream(0) for the historical default)"
            )
        user_ids = sorted({user.user_id for user in bundle.users})
        num_test = max(int(round(len(user_ids) * test_fraction)), 1)
        test_users = set(rng.choice(user_ids, size=num_test, replace=False).tolist())
        train_traces = [t for t in bundle.swipe_traces if t.user_id not in test_users]
        test_traces = [t for t in bundle.swipe_traces if t.user_id in test_users]

    train = DatasetBundle(
        videos=bundle.videos,
        users=bundle.users,
        swipe_traces=train_traces,
        metadata=dict(bundle.metadata),
    )
    test = DatasetBundle(
        videos=bundle.videos,
        users=bundle.users,
        swipe_traces=test_traces,
        metadata=dict(bundle.metadata),
    )
    return train, test
