"""Video catalog: the set of short videos available at the edge.

The catalog generator produces a population of short videos with realistic
durations, category assignments, representation ladders and per-segment VBR
traces.  It is the stand-in for the content side of the public
short-video-streaming-challenge dataset the paper uses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.video.categories import DEFAULT_CATEGORIES, validate_category
from repro.video.popularity import ZipfPopularity
from repro.video.representations import DEFAULT_LADDER, Representation, RepresentationLadder
from repro.video.segments import Segment, segment_sizes_bits


@dataclass
class Video:
    """A single short video and its per-segment bitrate traces.

    ``segment_sizes`` maps representation name to an array of per-segment
    sizes in bits (all representations share the same segment count).
    """

    video_id: int
    category: str
    duration_s: float
    segment_duration_s: float
    ladder: RepresentationLadder
    segment_sizes: Dict[str, np.ndarray] = field(default_factory=dict)
    #: Memoized (representation name, segment count) -> prefix size in bits.
    _prefix_bits_cache: Dict = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.segment_duration_s <= 0:
            raise ValueError("segment_duration_s must be positive")

    @property
    def num_segments(self) -> int:
        return int(np.ceil(self.duration_s / self.segment_duration_s))

    def segments(self, representation: Representation) -> List[Segment]:
        """Materialise :class:`Segment` objects for one representation."""
        sizes = self.sizes_for(representation)
        return [
            Segment(
                video_id=self.video_id,
                index=i,
                duration_s=self.segment_duration_s,
                size_bits=float(size),
            )
            for i, size in enumerate(sizes)
        ]

    def sizes_for(self, representation: Representation) -> np.ndarray:
        """Per-segment sizes (bits) for ``representation``."""
        if representation.name not in self.segment_sizes:
            raise KeyError(
                f"video {self.video_id} has no trace for representation {representation.name!r}"
            )
        return self.segment_sizes[representation.name]

    def bits_watched(self, representation: Representation, watch_duration_s: float) -> float:
        """Total bits transmitted when a viewer watches ``watch_duration_s`` seconds.

        Segments are only counted while the viewer is still watching; the
        final partially-watched segment is still fully transmitted because
        segments are the delivery unit.
        """
        if watch_duration_s < 0:
            raise ValueError("watch_duration_s must be non-negative")
        watch_duration_s = min(watch_duration_s, self.duration_s)
        segments_needed = math.ceil(watch_duration_s / self.segment_duration_s)
        key = (representation.name, segments_needed)
        cached = self._prefix_bits_cache.get(key)
        if cached is None:
            sizes = self.sizes_for(representation)
            cached = float(sizes[:segments_needed].sum())
            self._prefix_bits_cache[key] = cached
        return cached


@dataclass
class CatalogConfig:
    """Configuration of the synthetic catalog generator."""

    num_videos: int = 200
    categories: Sequence[str] = DEFAULT_CATEGORIES
    min_duration_s: float = 10.0
    max_duration_s: float = 60.0
    segment_duration_s: float = 1.0
    zipf_exponent: float = 1.0
    vbr_std_fraction: float = 0.15
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_videos <= 0:
            raise ValueError("num_videos must be positive")
        if self.min_duration_s <= 0 or self.max_duration_s < self.min_duration_s:
            raise ValueError("invalid duration range")
        if self.segment_duration_s <= 0:
            raise ValueError("segment_duration_s must be positive")
        if not self.categories:
            raise ValueError("categories must not be empty")


class VideoCatalog:
    """Collection of videos plus the popularity model over them."""

    def __init__(
        self,
        videos: Sequence[Video],
        popularity: Optional[ZipfPopularity] = None,
        zipf_exponent: float = 1.0,
    ) -> None:
        if not videos:
            raise ValueError("a catalog needs at least one video")
        self._videos: Dict[int, Video] = {}
        for video in videos:
            if video.video_id in self._videos:
                raise ValueError(f"duplicate video id {video.video_id}")
            self._videos[video.video_id] = video
        self.popularity = (
            popularity
            if popularity is not None
            else ZipfPopularity(list(self._videos.keys()), exponent=zipf_exponent)
        )
        self._sampling_cache: Optional[tuple] = None
        self._reference_ladder: Optional[RepresentationLadder] = None

    # ------------------------------------------------------------- sampling
    def sampling_arrays(self) -> tuple:
        """Cached per-video arrays for popularity/preference sampling.

        Returns ``(video_ids, normalized_popularity, category_indices,
        categories)`` where the first three are aligned per-video arrays and
        ``categories`` is the tuple the index array points into.  Rebuilding
        these from the Python-dict popularity model is only done when the
        model actually changed (tracked via its ``version`` counter), so the
        simulator and the recommender share one cache instead of rebuilding
        per group per interval.
        """
        version = getattr(self.popularity, "version", None)
        cache = self._sampling_cache
        if cache is not None and version is not None and cache[0] == version:
            return cache[1]
        video_id_list = self.video_ids()
        popularity = self.popularity.probabilities()
        pop = np.array([popularity.get(vid, 0.0) for vid in video_id_list])
        if pop.sum() > 0:
            pop = pop / pop.sum()
        categories: List[str] = []
        category_index: Dict[str, int] = {}
        indices = np.empty(len(video_id_list), dtype=np.intp)
        for row, vid in enumerate(video_id_list):
            category = self._videos[vid].category
            if category not in category_index:
                category_index[category] = len(categories)
                categories.append(category)
            indices[row] = category_index[category]
        arrays = (np.array(video_id_list), pop, indices, tuple(categories))
        self._sampling_cache = (version, arrays)
        return arrays

    # ------------------------------------------------------------ accessors
    def __len__(self) -> int:
        return len(self._videos)

    def __iter__(self) -> Iterator[Video]:
        return iter(self._videos.values())

    def __contains__(self, video_id: int) -> bool:
        return video_id in self._videos

    def get(self, video_id: int) -> Video:
        if video_id not in self._videos:
            raise KeyError(f"unknown video id {video_id}")
        return self._videos[video_id]

    def video_ids(self) -> List[int]:
        return list(self._videos.keys())

    def reference_ladder(self) -> RepresentationLadder:
        """The single representation ladder shared by every catalog video.

        Callers that need "the" bitrate ladder (group link adaptation, demand
        prediction) must use this instead of peeking at an arbitrary video's
        ladder: on a heterogeneous catalog that lookup would silently pick
        whichever video happens to come first.  Raises :class:`ValueError`
        when the catalog's videos carry different ladders, because no single
        reference ladder exists then.
        """
        if self._reference_ladder is not None:
            return self._reference_ladder
        videos = iter(self._videos.values())
        ladder = next(videos).ladder
        for video in videos:
            other = video.ladder
            if other is ladder:
                continue
            if list(other) != list(ladder):
                raise ValueError(
                    "catalog is heterogeneous: video "
                    f"{video.video_id} uses ladder {other.names()} instead of "
                    f"{ladder.names()}; there is no single reference ladder"
                )
        self._reference_ladder = ladder
        return ladder

    def categories(self) -> List[str]:
        seen: List[str] = []
        for video in self._videos.values():
            if video.category not in seen:
                seen.append(video.category)
        return seen

    def by_category(self, category: str) -> List[Video]:
        validate_category(category, self.categories() or DEFAULT_CATEGORIES)
        return [video for video in self._videos.values() if video.category == category]

    def video_categories(self) -> Dict[int, str]:
        """Mapping ``video_id -> category``."""
        return {vid: video.category for vid, video in self._videos.items()}

    def most_popular(self, count: int) -> List[Video]:
        return [self.get(video_id) for video_id in self.popularity.top(count)]

    # ------------------------------------------------------------ generation
    @classmethod
    def generate(cls, config: Optional[CatalogConfig] = None) -> "VideoCatalog":
        """Generate a synthetic catalog according to ``config``."""
        config = config if config is not None else CatalogConfig()
        # Imported lazily: repro.sim imports the video package at load time.
        from repro.sim.rng import legacy_stream

        rng = legacy_stream(config.seed)
        ladder = DEFAULT_LADDER
        videos: List[Video] = []
        for video_id in range(config.num_videos):
            category = str(rng.choice(list(config.categories)))
            duration = float(rng.uniform(config.min_duration_s, config.max_duration_s))
            num_segments = int(np.ceil(duration / config.segment_duration_s))
            traces: Dict[str, np.ndarray] = {}
            for representation in ladder:
                traces[representation.name] = segment_sizes_bits(
                    representation,
                    num_segments,
                    segment_duration_s=config.segment_duration_s,
                    vbr_std_fraction=config.vbr_std_fraction,
                    rng=rng,
                )
            videos.append(
                Video(
                    video_id=video_id,
                    category=category,
                    duration_s=duration,
                    segment_duration_s=config.segment_duration_s,
                    ladder=ladder,
                    segment_sizes=traces,
                )
            )
        # Popularity rank is a random permutation so rank is independent of id.
        ranked_ids = [int(i) for i in rng.permutation(config.num_videos)]
        popularity = ZipfPopularity(ranked_ids, exponent=config.zipf_exponent)
        return cls(videos, popularity=popularity)
