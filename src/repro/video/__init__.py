"""Short-video content substrate: categories, representations, catalog, popularity.

The edge server in the paper stores popular short videos at their highest
representation and transcodes them down on demand; the prediction scheme
consumes per-segment bitrates and per-category popularity.  This subpackage
provides those content models:

* :mod:`repro.video.categories` -- the video-category taxonomy (News,
  Sports, ... Game) used throughout preferences and swiping distributions.
* :mod:`repro.video.representations` -- the bitrate/resolution ladder a
  video can be transcoded into.
* :mod:`repro.video.segments` -- per-segment variable-bitrate traces.
* :mod:`repro.video.catalog` -- the video catalog generator.
* :mod:`repro.video.popularity` -- Zipf popularity and engagement-driven
  popularity updates.
"""

from repro.video.categories import (
    DEFAULT_CATEGORIES,
    VideoCategory,
    category_index,
    validate_category,
)
from repro.video.representations import (
    DEFAULT_LADDER,
    Representation,
    RepresentationLadder,
)
from repro.video.segments import Segment, segment_sizes_bits
from repro.video.catalog import CatalogConfig, Video, VideoCatalog
from repro.video.popularity import PopularityModel, ZipfPopularity, zipf_weights

__all__ = [
    "CatalogConfig",
    "DEFAULT_CATEGORIES",
    "DEFAULT_LADDER",
    "PopularityModel",
    "Representation",
    "RepresentationLadder",
    "Segment",
    "Video",
    "VideoCatalog",
    "VideoCategory",
    "ZipfPopularity",
    "category_index",
    "segment_sizes_bits",
    "validate_category",
    "zipf_weights",
]
