"""Video popularity models.

The edge server caches "popular short videos with the highest
representation", and the per-group video recommendation combines *video
popularity* with *user preferences*.  Popularity on short-video platforms is
famously heavy-tailed, so the base model is a Zipf distribution over the
catalog ranking; the model can additionally be updated online from observed
engagement so popularity drifts with what users actually watch.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence

import numpy as np


def sampling_cdf(probabilities: np.ndarray) -> np.ndarray:
    """Normalised cumulative distribution for inverse-CDF sampling.

    Mirrors ``Generator.choice(p=...)``'s internal cdf (cumsum then divide by
    the last entry), so drawing with :func:`sample_index` consumes exactly
    one uniform and selects the same item ``choice`` would.
    """
    cdf = np.cumsum(np.asarray(probabilities, dtype=np.float64))
    if cdf.shape[0] == 0 or cdf[-1] <= 0:
        raise ValueError("probabilities must be non-empty with a positive sum")
    cdf /= cdf[-1]
    return cdf


def sample_index(cdf: np.ndarray, rng: "np.random.Generator") -> int:
    """Draw one index from a cdf built by :func:`sampling_cdf`."""
    return min(int(cdf.searchsorted(rng.random(), side="right")), cdf.shape[0] - 1)


def zipf_weights(num_items: int, exponent: float = 1.0) -> np.ndarray:
    """Normalised Zipf weights for ranks ``1..num_items``.

    ``weight(rank) ∝ rank ** -exponent``; the returned array sums to one.
    """
    if num_items <= 0:
        raise ValueError("num_items must be positive")
    if exponent < 0:
        raise ValueError("exponent must be non-negative")
    ranks = np.arange(1, num_items + 1, dtype=np.float64)
    weights = ranks**-exponent
    return weights / weights.sum()


class PopularityModel:
    """Interface of popularity models: a probability per video id."""

    def probabilities(self) -> Dict[int, float]:
        """Mapping ``video_id -> probability`` summing to one."""
        raise NotImplementedError

    def probability(self, video_id: int) -> float:
        return self.probabilities().get(video_id, 0.0)

    def top(self, count: int) -> list:
        """The ``count`` most popular video ids, most popular first."""
        if count <= 0:
            raise ValueError("count must be positive")
        probs = self.probabilities()
        ordered = sorted(probs.items(), key=lambda item: (-item[1], item[0]))
        return [video_id for video_id, _ in ordered[:count]]


class ZipfPopularity(PopularityModel):
    """Zipf popularity over a fixed ranking with optional engagement updates.

    Parameters
    ----------
    video_ids:
        Catalog video ids in popularity-rank order (most popular first).
    exponent:
        Zipf exponent; larger values concentrate probability on the head.
    engagement_learning_rate:
        Weight of observed engagement when :meth:`update_from_engagement`
        is called.  ``0`` freezes the prior ranking.
    """

    def __init__(
        self,
        video_ids: Sequence[int],
        exponent: float = 1.0,
        engagement_learning_rate: float = 0.1,
    ) -> None:
        if not len(video_ids):
            raise ValueError("video_ids must not be empty")
        if len(set(video_ids)) != len(video_ids):
            raise ValueError("video_ids must be unique")
        if not 0.0 <= engagement_learning_rate <= 1.0:
            raise ValueError("engagement_learning_rate must be in [0, 1]")
        self._video_ids = list(video_ids)
        self.exponent = exponent
        self.engagement_learning_rate = engagement_learning_rate
        self._weights = zipf_weights(len(video_ids), exponent)
        self._version = 0

    @property
    def version(self) -> int:
        """Monotone counter bumped whenever the distribution changes.

        Callers cache derived arrays (e.g. per-video probability vectors)
        keyed on this counter instead of rebuilding them per query.
        """
        return self._version

    def probabilities(self) -> Dict[int, float]:
        return {vid: float(w) for vid, w in zip(self._video_ids, self._weights)}

    def update_from_engagement(self, engagement_seconds: Mapping[int, float]) -> None:
        """Blend the current distribution with observed engagement time.

        ``engagement_seconds`` maps video ids to total watch time observed
        in the last reservation interval; unknown ids are ignored.
        """
        total = float(sum(max(v, 0.0) for v in engagement_seconds.values()))
        if total <= 0:
            return
        observed = np.array(
            [max(engagement_seconds.get(vid, 0.0), 0.0) / total for vid in self._video_ids]
        )
        lr = self.engagement_learning_rate
        blended = (1.0 - lr) * self._weights + lr * observed
        self._weights = blended / blended.sum()
        self._version += 1

    def resample_ranking(self, rng: Optional[np.random.Generator] = None) -> None:
        """Shuffle which video occupies which popularity rank (keeps weights)."""
        if rng is None:
            raise ValueError(
                "resample_ranking requires an explicit rng; derive one from "
                "the repro.sim.rng registry (e.g. legacy_stream(0) for the "
                "historical default)"
            )
        order = rng.permutation(len(self._video_ids))
        self._video_ids = [self._video_ids[i] for i in order]
        self._version += 1


def category_popularity(
    probabilities: Mapping[int, float],
    video_categories: Mapping[int, str],
    categories: Iterable[str],
) -> Dict[str, float]:
    """Aggregate per-video popularity into per-category popularity."""
    totals = {category: 0.0 for category in categories}
    for video_id, prob in probabilities.items():
        category = video_categories.get(video_id)
        if category in totals:
            totals[category] += prob
    total = sum(totals.values())
    if total > 0:
        totals = {category: value / total for category, value in totals.items()}
    return totals
