"""Video-category taxonomy.

The paper reports per-category cumulative swiping probabilities for a
multicast group whose users "watch News videos most while Game videos
least" (Fig. 3a).  We therefore model categories explicitly; the default
taxonomy below covers the categories a short-video platform typically
exposes, with *News* first and *Game* last so the headline ordering is easy
to reproduce and check.
"""

from __future__ import annotations

from typing import Sequence, Tuple


class VideoCategory:
    """Namespace of the canonical category names."""

    NEWS = "News"
    SPORTS = "Sports"
    MUSIC = "Music"
    COMEDY = "Comedy"
    EDUCATION = "Education"
    TRAVEL = "Travel"
    FOOD = "Food"
    GAME = "Game"


#: Default category taxonomy used by the catalog, behaviour models and the
#: Fig. 3(a) reproduction.
DEFAULT_CATEGORIES: Tuple[str, ...] = (
    VideoCategory.NEWS,
    VideoCategory.SPORTS,
    VideoCategory.MUSIC,
    VideoCategory.COMEDY,
    VideoCategory.EDUCATION,
    VideoCategory.TRAVEL,
    VideoCategory.FOOD,
    VideoCategory.GAME,
)


def validate_category(category: str, categories: Sequence[str] = DEFAULT_CATEGORIES) -> str:
    """Return ``category`` if it belongs to ``categories``; raise otherwise."""
    if category not in categories:
        raise ValueError(f"unknown video category {category!r}; expected one of {list(categories)}")
    return category


def category_index(category: str, categories: Sequence[str] = DEFAULT_CATEGORIES) -> int:
    """Index of ``category`` within ``categories`` (raises on unknown category)."""
    validate_category(category, categories)
    return list(categories).index(category)
