"""Video representations (bitrate ladder).

Short videos are stored at the edge server at their *highest* representation
and transcoded to lower representations to match each multicast group's
achievable rate.  A representation bundles resolution, frame rate and a
nominal bitrate; the ladder orders representations from highest to lowest
quality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence


@dataclass(frozen=True, order=True)
class Representation:
    """A single encoding of a video.

    The ordering is by ``bitrate_kbps`` so representations sort naturally
    from lowest to highest quality.
    """

    bitrate_kbps: float
    name: str = ""
    width: int = 0
    height: int = 0
    fps: float = 30.0

    def __post_init__(self) -> None:
        if self.bitrate_kbps <= 0:
            raise ValueError("bitrate_kbps must be positive")
        if self.fps <= 0:
            raise ValueError("fps must be positive")

    @property
    def pixels_per_frame(self) -> int:
        return self.width * self.height

    @property
    def pixel_rate(self) -> float:
        """Pixels processed per second (drives transcoding cost)."""
        return self.pixels_per_frame * self.fps

    def bits_for_duration(self, duration_s: float) -> float:
        """Nominal number of bits needed to stream ``duration_s`` seconds."""
        if duration_s < 0:
            raise ValueError("duration_s must be non-negative")
        return self.bitrate_kbps * 1e3 * duration_s


#: Default five-rung ladder (names follow common ABR practice).
DEFAULT_LADDER_SPECS = (
    ("240p", 426, 240, 400.0),
    ("360p", 640, 360, 800.0),
    ("480p", 854, 480, 1400.0),
    ("720p", 1280, 720, 2800.0),
    ("1080p", 1920, 1080, 5000.0),
)


class RepresentationLadder:
    """Ordered collection of representations (lowest to highest quality)."""

    def __init__(self, representations: Sequence[Representation]) -> None:
        if not representations:
            raise ValueError("a ladder needs at least one representation")
        self._reps: List[Representation] = sorted(representations)

    def __len__(self) -> int:
        return len(self._reps)

    def __iter__(self) -> Iterator[Representation]:
        return iter(self._reps)

    def __getitem__(self, index: int) -> Representation:
        return self._reps[index]

    @property
    def lowest(self) -> Representation:
        return self._reps[0]

    @property
    def highest(self) -> Representation:
        return self._reps[-1]

    def names(self) -> List[str]:
        return [rep.name for rep in self._reps]

    def by_name(self, name: str) -> Representation:
        for rep in self._reps:
            if rep.name == name:
                return rep
        raise KeyError(f"no representation named {name!r}")

    def best_fitting(self, available_rate_bps: float) -> Representation:
        """Highest representation whose nominal bitrate fits ``available_rate_bps``.

        Falls back to the lowest representation when even that one does not
        fit (the stream is then simply throttled).
        """
        if available_rate_bps < 0:
            raise ValueError("available_rate_bps must be non-negative")
        fitting = [rep for rep in self._reps if rep.bitrate_kbps * 1e3 <= available_rate_bps]
        if not fitting:
            return self.lowest
        return fitting[-1]

    def lower_than(self, representation: Representation) -> List[Representation]:
        """All representations strictly below ``representation``."""
        return [rep for rep in self._reps if rep.bitrate_kbps < representation.bitrate_kbps]

    @classmethod
    def default(cls) -> "RepresentationLadder":
        """The standard 240p..1080p ladder used across the reproduction."""
        reps = [
            Representation(bitrate_kbps=kbps, name=name, width=w, height=h)
            for name, w, h, kbps in DEFAULT_LADDER_SPECS
        ]
        return cls(reps)


#: Module-level singleton of the default ladder (immutable representations).
DEFAULT_LADDER = RepresentationLadder.default()
