"""Per-segment variable-bitrate traces.

Short videos are delivered as a sequence of fixed-duration segments (1 s by
default).  Because encoders are variable-bitrate, each segment's size
fluctuates around the representation's nominal bitrate; the swiping
behaviour then determines *how many* of those segments are actually
transmitted, which is exactly what the resource-demand prediction needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.video.representations import Representation


@dataclass(frozen=True)
class Segment:
    """One media segment of a specific video and representation."""

    video_id: int
    index: int
    duration_s: float
    size_bits: float

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError("segment index must be non-negative")
        if self.duration_s <= 0:
            raise ValueError("segment duration must be positive")
        if self.size_bits < 0:
            raise ValueError("segment size must be non-negative")

    @property
    def bitrate_bps(self) -> float:
        return self.size_bits / self.duration_s


def segment_sizes_bits(
    representation: Representation,
    num_segments: int,
    segment_duration_s: float = 1.0,
    vbr_std_fraction: float = 0.15,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Sample per-segment sizes (bits) around the representation's nominal bitrate.

    Sizes are drawn from a truncated normal distribution whose standard
    deviation is ``vbr_std_fraction`` of the nominal segment size, which is a
    reasonable stand-in for the VBR traces of the short-video-streaming
    challenge dataset.
    """
    if num_segments <= 0:
        raise ValueError("num_segments must be positive")
    if segment_duration_s <= 0:
        raise ValueError("segment_duration_s must be positive")
    if not 0.0 <= vbr_std_fraction < 1.0:
        raise ValueError("vbr_std_fraction must be in [0, 1)")
    if rng is None:
        raise ValueError(
            "segment_sizes_bits requires an explicit rng; derive one from "
            "the repro.sim.rng registry (e.g. legacy_stream(0) for the "
            "historical default)"
        )
    nominal = representation.bitrate_kbps * 1e3 * segment_duration_s
    sizes = rng.normal(nominal, vbr_std_fraction * nominal, size=num_segments)
    # A segment can never be smaller than a small fraction of the nominal size.
    return np.clip(sizes, 0.1 * nominal, None)


def scale_segment_sizes(
    sizes_bits: Sequence[float],
    source: Representation,
    target: Representation,
) -> np.ndarray:
    """Rescale a VBR trace from one representation to another.

    The relative per-segment complexity is preserved; only the nominal
    bitrate changes.  This mirrors how transcoded renditions inherit the
    scene complexity of the source encoding.
    """
    sizes = np.asarray(sizes_bits, dtype=np.float64)
    if np.any(sizes < 0):
        raise ValueError("segment sizes must be non-negative")
    ratio = target.bitrate_kbps / source.bitrate_kbps
    return sizes * ratio
