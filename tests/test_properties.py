"""Property-based tests (hypothesis) for core data structures and invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.behavior import PreferenceVector, WatchRecord, SwipeProbabilityEstimator
from repro.behavior.swiping import expected_transmitted_fraction
from repro.cluster import KMeansPlusPlus, silhouette_score
from repro.core.accuracy import prediction_accuracy
from repro.net import ResourceBlockBudget, resource_blocks_for_traffic, spectral_efficiency
from repro.rl import ReplayBuffer
from repro.twin import TimeSeriesStore
from repro.video import DEFAULT_CATEGORIES, zipf_weights


# ----------------------------------------------------------------- strategies
finite_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)
positive_floats = st.floats(min_value=1e-3, max_value=1e6, allow_nan=False, allow_infinity=False)
small_counts = st.integers(min_value=1, max_value=50)


class TestZipfProperties:
    @given(n=st.integers(min_value=1, max_value=500), exponent=st.floats(min_value=0.0, max_value=3.0))
    def test_weights_normalised_and_decreasing(self, n, exponent):
        weights = zipf_weights(n, exponent)
        assert weights.shape == (n,)
        assert weights.sum() == pytest.approx(1.0)
        assert np.all(np.diff(weights) <= 1e-12)
        assert np.all(weights > 0)


class TestPreferenceProperties:
    @given(
        values=st.dictionaries(
            st.sampled_from(list(DEFAULT_CATEGORIES)),
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=1,
        )
    )
    def test_vector_always_normalised(self, values):
        vector = PreferenceVector(values)
        weights = vector.as_array()
        assert weights.sum() == pytest.approx(1.0)
        assert np.all(weights >= 0.0)
        assert vector.favourite() in vector.categories


class TestAccuracyProperties:
    @given(predicted=finite_floats, actual=finite_floats)
    def test_accuracy_always_in_unit_interval(self, predicted, actual):
        value = prediction_accuracy(predicted, actual)
        assert 0.0 <= value <= 1.0

    @given(actual=st.floats(min_value=1e-3, max_value=1e6, allow_nan=False))
    def test_exact_prediction_is_perfect(self, actual):
        assert prediction_accuracy(actual, actual) == 1.0

    @given(actual=positive_floats, error=st.floats(min_value=0.0, max_value=10.0))
    def test_accuracy_decreases_with_relative_error(self, actual, error):
        closer = prediction_accuracy(actual * (1.0 + error / 2.0), actual)
        farther = prediction_accuracy(actual * (1.0 + error), actual)
        assert closer >= farther - 1e-12


class TestRadioProperties:
    @given(
        traffic=st.floats(min_value=0.0, max_value=1e12, allow_nan=False),
        extra=st.floats(min_value=0.0, max_value=1e12, allow_nan=False),
        efficiency=st.floats(min_value=0.1, max_value=6.0),
    )
    def test_resource_blocks_monotone_in_traffic(self, traffic, extra, efficiency):
        low = resource_blocks_for_traffic(traffic, efficiency)
        high = resource_blocks_for_traffic(traffic + extra, efficiency)
        assert high >= low >= 0.0

    @given(
        traffic=st.floats(min_value=1.0, max_value=1e12, allow_nan=False),
        efficiency=st.floats(min_value=0.1, max_value=5.0),
        boost=st.floats(min_value=0.0, max_value=2.0),
    )
    def test_resource_blocks_antitone_in_efficiency(self, traffic, efficiency, boost):
        worse = resource_blocks_for_traffic(traffic, efficiency)
        better = resource_blocks_for_traffic(traffic, efficiency + boost)
        assert better <= worse + 1e-9

    @given(snr_a=st.floats(min_value=-30.0, max_value=40.0), delta=st.floats(min_value=0.0, max_value=40.0))
    def test_spectral_efficiency_monotone_in_snr(self, snr_a, delta):
        assert spectral_efficiency(snr_a + delta) >= spectral_efficiency(snr_a)

    @given(snr=st.floats(min_value=-50.0, max_value=60.0))
    def test_spectral_efficiency_bounded(self, snr):
        value = spectral_efficiency(snr)
        assert 0.0 <= value <= 5.5547


class TestSwipingProperties:
    @given(
        p=st.floats(min_value=0.0, max_value=1.0),
        m=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_expected_transmitted_fraction_bounds(self, p, m):
        value = expected_transmitted_fraction(p, m)
        assert min(m, 1.0) - 1e-12 <= value <= 1.0 + 1e-12

    @given(
        records=st.lists(
            st.tuples(
                st.sampled_from(list(DEFAULT_CATEGORIES)),
                st.floats(min_value=0.0, max_value=1.0),
            ),
            min_size=0,
            max_size=60,
        )
    )
    def test_estimator_outputs_are_probabilities(self, records):
        estimator = SwipeProbabilityEstimator(DEFAULT_CATEGORIES)
        for category, fraction in records:
            watch = fraction * 10.0
            estimator.observe(
                WatchRecord(0, 0, category, watch, 10.0, swiped=watch < 10.0 - 1e-9)
            )
        for value in estimator.swipe_distribution().values():
            assert 0.0 <= value <= 1.0
        share = estimator.category_watch_share()
        assert sum(share.values()) == pytest.approx(1.0)
        cumulative = list(estimator.cumulative_distribution().values())
        assert all(b >= a - 1e-12 for a, b in zip(cumulative, cumulative[1:]))
        assert cumulative[-1] == pytest.approx(1.0)


class TestTimeSeriesProperties:
    @given(
        values=st.lists(st.floats(min_value=-100.0, max_value=100.0, allow_nan=False), min_size=1, max_size=40)
    )
    def test_resample_values_come_from_appended_samples(self, values):
        store = TimeSeriesStore(dimension=1)
        for index, value in enumerate(values):
            store.append(float(index), [value])
        query = np.linspace(0.0, len(values) + 5.0, 17)
        resampled = store.resample(query)[:, 0]
        assert set(np.round(resampled, 9)).issubset(set(np.round(values, 9)))

    @given(
        values=st.lists(st.floats(min_value=-10.0, max_value=10.0, allow_nan=False), min_size=1, max_size=30),
        now=st.floats(min_value=0.0, max_value=1000.0),
    )
    def test_staleness_consistent_with_latest_timestamp(self, values, now):
        store = TimeSeriesStore(dimension=1)
        for index, value in enumerate(values):
            store.append(float(index), [value])
        latest = float(len(values) - 1)
        if now >= latest:
            assert store.staleness_s(now) == pytest.approx(now - latest)


class TestClusteringProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        points=arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(min_value=4, max_value=30), st.integers(min_value=2, max_value=5)),
            elements=st.floats(min_value=-50.0, max_value=50.0, allow_nan=False),
        ),
        k=st.integers(min_value=1, max_value=4),
    )
    def test_kmeans_partition_invariants(self, points, k):
        k = min(k, points.shape[0])
        result = KMeansPlusPlus(k, restarts=1).fit(points, rng=np.random.default_rng(0))
        assert result.labels.shape == (points.shape[0],)
        assert np.all(result.labels >= 0) and np.all(result.labels < k)
        assert result.inertia >= 0.0
        assert result.cluster_sizes().sum() == points.shape[0]
        score = silhouette_score(points, result.labels)
        assert -1.0 <= score <= 1.0


class TestReplayAndBudgetProperties:
    @given(capacity=st.integers(min_value=1, max_value=50), pushes=st.integers(min_value=0, max_value=200))
    def test_replay_buffer_never_exceeds_capacity(self, capacity, pushes):
        buffer = ReplayBuffer(capacity)
        for i in range(pushes):
            buffer.push(np.array([float(i)]), 0, 0.0, np.array([0.0]), False)
        assert len(buffer) == min(capacity, pushes)

    @given(
        total=st.floats(min_value=1.0, max_value=1000.0),
        requests=st.lists(st.floats(min_value=0.0, max_value=500.0), max_size=20),
    )
    def test_budget_never_over_reserves(self, total, requests):
        budget = ResourceBlockBudget(total)
        for group_id, blocks in enumerate(requests):
            budget.reserve(group_id, blocks)
        assert budget.reserved_blocks <= budget.total_blocks + 1e-6
        assert budget.available_blocks >= -1e-6
        assert 0.0 <= budget.utilization() <= 1.0 + 1e-9
