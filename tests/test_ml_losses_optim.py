"""Unit tests for losses, optimizers and initializers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml import (
    Adam,
    CrossEntropyLoss,
    Dense,
    HuberLoss,
    MSELoss,
    MomentumSGD,
    SGD,
    glorot_uniform,
    he_uniform,
    normal_init,
    zeros_init,
)
from repro.ml.layers import Parameter
from repro.ml.optim import build_optimizer


@pytest.fixture
def rng():
    return np.random.default_rng(1)


class TestLosses:
    def test_mse_zero_for_identical(self):
        pred = np.array([[1.0, 2.0]])
        assert MSELoss().value(pred, pred) == 0.0

    def test_mse_known_value(self):
        pred = np.array([[1.0, 2.0]])
        target = np.array([[0.0, 0.0]])
        assert MSELoss().value(pred, target) == pytest.approx(2.5)

    def test_mse_gradient_matches_finite_difference(self, rng):
        loss = MSELoss()
        pred = rng.normal(size=(3, 4))
        target = rng.normal(size=(3, 4))
        grad = loss.gradient(pred, target)
        eps = 1e-6
        for index in np.ndindex(pred.shape):
            perturbed = pred.copy()
            perturbed[index] += eps
            numeric = (loss.value(perturbed, target) - loss.value(pred, target)) / eps
            assert grad[index] == pytest.approx(numeric, rel=1e-3, abs=1e-6)

    def test_huber_equals_mse_like_for_small_errors(self):
        pred = np.array([[0.1]])
        target = np.array([[0.0]])
        assert HuberLoss(delta=1.0).value(pred, target) == pytest.approx(0.005)

    def test_huber_linear_for_large_errors(self):
        pred = np.array([[10.0]])
        target = np.array([[0.0]])
        value = HuberLoss(delta=1.0).value(pred, target)
        assert value == pytest.approx(1.0 * (10.0 - 0.5))

    def test_huber_gradient_bounded(self, rng):
        loss = HuberLoss(delta=1.0)
        pred = rng.normal(size=(4, 4)) * 100
        target = np.zeros((4, 4))
        grad = loss.gradient(pred, target)
        assert np.all(np.abs(grad) <= 1.0 / pred.size + 1e-9) or np.all(np.isfinite(grad))

    def test_cross_entropy_prefers_correct_class(self):
        loss = CrossEntropyLoss()
        logits_good = np.array([[5.0, -5.0]])
        logits_bad = np.array([[-5.0, 5.0]])
        target = np.array([[1.0, 0.0]])
        assert loss.value(logits_good, target) < loss.value(logits_bad, target)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            MSELoss().value(np.zeros((2, 2)), np.zeros((3, 2)))


class TestOptimizers:
    def _quadratic_step(self, optimizer_factory, steps=200):
        rng = np.random.default_rng(0)
        param = Parameter(rng.normal(size=(4,)), name="w")
        optimizer = optimizer_factory([param])
        for _ in range(steps):
            optimizer.zero_grad()
            param.grad += 2.0 * param.value  # d/dw ||w||^2
            optimizer.step()
        return np.linalg.norm(param.value)

    def test_sgd_minimises_quadratic(self):
        assert self._quadratic_step(lambda p: SGD(p, learning_rate=0.05)) < 1e-3

    def test_momentum_minimises_quadratic(self):
        assert self._quadratic_step(lambda p: MomentumSGD(p, learning_rate=0.05)) < 1e-3

    def test_adam_minimises_quadratic(self):
        assert self._quadratic_step(lambda p: Adam(p, learning_rate=0.05)) < 1e-2

    def test_gradient_clipping_limits_norm(self, rng):
        param = Parameter(np.zeros(3), name="w")
        optimizer = SGD([param], learning_rate=0.1)
        param.grad += np.array([30.0, 40.0, 0.0])
        norm = optimizer.clip_gradients(max_norm=5.0)
        assert norm == pytest.approx(50.0)
        assert np.linalg.norm(param.grad) == pytest.approx(5.0)

    def test_zero_grad_resets(self, rng):
        param = Parameter(np.zeros(3), name="w")
        optimizer = SGD([param], learning_rate=0.1)
        param.grad += 1.0
        optimizer.zero_grad()
        np.testing.assert_allclose(param.grad, 0.0)

    def test_build_optimizer_by_name(self, rng):
        layer = Dense(2, 2, rng)
        for name, cls in (("sgd", SGD), ("momentum", MomentumSGD), ("adam", Adam)):
            optimizer = build_optimizer(name, layer.parameters(), learning_rate=0.01)
            assert isinstance(optimizer, cls)

    def test_build_optimizer_unknown_name(self, rng):
        layer = Dense(2, 2, rng)
        with pytest.raises((ValueError, KeyError)):
            build_optimizer("nadamax", layer.parameters(), learning_rate=0.01)


class TestInitializers:
    def test_zeros_init(self):
        np.testing.assert_allclose(zeros_init((3, 2)), 0.0)

    def test_normal_init_statistics(self, rng):
        values = normal_init((200, 200), rng, scale=0.05)
        assert abs(values.mean()) < 0.01
        assert values.std() == pytest.approx(0.05, abs=0.02)

    def test_glorot_bounds(self, rng):
        values = glorot_uniform((50, 50), rng)
        limit = np.sqrt(6.0 / 100)
        assert np.all(np.abs(values) <= limit + 1e-12)

    def test_he_bounds(self, rng):
        values = he_uniform((50, 50), rng)
        limit = np.sqrt(6.0 / 50)
        assert np.all(np.abs(values) <= limit + 1e-12)
