"""Tests for parameter sweeps and evaluation-result export."""

from __future__ import annotations

import json

import pytest

from repro.analysis import SweepResult, sweep_population_sizes, sweep_scenarios
from repro.core import DTResourcePredictionScheme, SchemeConfig
from repro.sim import SimulationConfig, StreamingSimulator


class TestSweeps:
    def test_sweep_scenarios_produces_one_point_per_label(self):
        result = sweep_scenarios(
            {
                "small": {"num_users": 6, "num_videos": 20, "interval_s": 60.0},
                "short interval": {"num_users": 6, "num_videos": 20, "interval_s": 45.0},
            },
            scheme_overrides={"small": {"cnn_epochs": 2}},
            num_eval_intervals=1,
        )
        assert len(result) == 2
        labels = [point.label for point in result.points]
        assert labels == ["small", "short interval"]
        for point in result.points:
            assert 0.0 <= point.mean_radio_accuracy <= 1.0
            assert point.mean_actual_blocks > 0.0
        assert result.best().mean_radio_accuracy == max(
            point.mean_radio_accuracy for point in result.points
        )

    def test_sweep_population_sizes(self):
        result = sweep_population_sizes([5, 8], num_eval_intervals=1)
        assert [point.label for point in result.points] == ["5 users", "8 users"]
        rows = result.as_rows()
        assert len(rows) == 2 and len(rows[0]) == 5

    def test_invalid_sweep_arguments(self):
        with pytest.raises(ValueError):
            sweep_scenarios({})
        with pytest.raises(ValueError):
            sweep_population_sizes([])
        with pytest.raises(ValueError):
            SweepResult().best()


class TestEvaluationExport:
    def test_to_dict_is_json_serialisable_and_consistent(self, tmp_path):
        scheme = DTResourcePredictionScheme(
            StreamingSimulator(
                SimulationConfig(
                    num_users=6, num_videos=20, num_intervals=3, interval_s=60.0, seed=2
                )
            ),
            SchemeConfig(
                warmup_intervals=1, cnn_epochs=2, ddqn_episodes=2, mc_rollouts=4, max_groups=3
            ),
        )
        result = scheme.run(num_intervals=2)
        exported = result.to_dict()
        # Round-trips through JSON without loss of structure.
        path = tmp_path / "result.json"
        path.write_text(json.dumps(exported))
        loaded = json.loads(path.read_text())
        assert len(loaded["intervals"]) == 2
        assert loaded["summary"]["mean_radio_accuracy"] == pytest.approx(
            result.mean_radio_accuracy()
        )
        first = loaded["intervals"][0]
        assert first["predicted_radio_blocks"] > 0.0
        assert 0.0 <= first["radio_accuracy"] <= 1.0
        assert sum(first["group_sizes"].values()) == 6
