"""Unit tests for digital-twin persistence (serialisation round-trips)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.behavior import WatchRecord
from repro.twin import (
    DigitalTwinManager,
    TimeSeriesStore,
    UserDigitalTwin,
    load_manager,
    manager_from_dict,
    manager_to_dict,
    save_manager,
    standard_attributes,
    twin_from_dict,
    twin_to_dict,
)
from repro.twin.attributes import CHANNEL_CONDITION, LOCATION, PREFERENCE
from repro.twin.persistence import store_from_dict, store_to_dict


def make_twin(user_id: int = 3) -> UserDigitalTwin:
    twin = UserDigitalTwin(user_id, attributes=standard_attributes(num_categories=4))
    twin.record(CHANNEL_CONDITION, 0.0, [11.5])
    twin.record(CHANNEL_CONDITION, 1.0, [12.5])
    twin.record(LOCATION, 0.0, [100.0, 200.0])
    twin.record(PREFERENCE, 0.0, [0.4, 0.3, 0.2, 0.1])
    twin.record_watch(
        WatchRecord(user_id, 7, "News", 4.0, 10.0, swiped=True, timestamp_s=2.0)
    )
    return twin


class TestStoreRoundTrip:
    def test_values_and_timestamps_preserved(self):
        store = TimeSeriesStore(dimension=2, max_samples=10)
        store.append(0.0, [1.0, 2.0])
        store.append(1.5, [3.0, 4.0])
        restored = store_from_dict(store_to_dict(store))
        np.testing.assert_allclose(restored.timestamps(), store.timestamps())
        np.testing.assert_allclose(restored.values(), store.values())
        assert restored.dimension == 2
        assert restored.max_samples == 10

    def test_empty_store_roundtrip(self):
        store = TimeSeriesStore(dimension=3)
        restored = store_from_dict(store_to_dict(store))
        assert len(restored) == 0
        assert restored.dimension == 3


class TestTwinRoundTrip:
    def test_twin_roundtrip_preserves_everything(self):
        twin = make_twin()
        restored = twin_from_dict(twin_to_dict(twin))
        assert restored.user_id == twin.user_id
        assert set(restored.attributes) == set(twin.attributes)
        np.testing.assert_allclose(
            restored.store(CHANNEL_CONDITION).values(),
            twin.store(CHANNEL_CONDITION).values(),
        )
        assert restored.watch_records() == twin.watch_records()

    def test_feature_matrix_identical_after_roundtrip(self):
        twin = make_twin()
        restored = twin_from_dict(twin_to_dict(twin))
        original = twin.feature_matrix(0.0, 10.0, num_steps=8)
        rebuilt = restored.feature_matrix(0.0, 10.0, num_steps=8)
        np.testing.assert_allclose(rebuilt, original)


class TestManagerRoundTrip:
    def make_manager(self) -> DigitalTwinManager:
        manager = DigitalTwinManager(attributes=standard_attributes(num_categories=4))
        for uid in range(3):
            twin = manager.register_user(uid)
            twin.record(CHANNEL_CONDITION, 0.0, [float(uid)])
            twin.record_watch(
                WatchRecord(uid, uid + 10, "Music", 2.0, 8.0, swiped=True, timestamp_s=1.0)
            )
        return manager

    def test_dict_roundtrip(self):
        manager = self.make_manager()
        restored = manager_from_dict(manager_to_dict(manager))
        assert restored.user_ids() == manager.user_ids()
        for uid in manager.user_ids():
            np.testing.assert_allclose(
                restored.twin(uid).store(CHANNEL_CONDITION).values(),
                manager.twin(uid).store(CHANNEL_CONDITION).values(),
            )
        assert len(restored.watch_records()) == len(manager.watch_records())

    def test_file_roundtrip(self, tmp_path):
        manager = self.make_manager()
        path = save_manager(manager, tmp_path / "twins.json")
        restored = load_manager(path)
        assert restored.user_ids() == manager.user_ids()

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_manager(tmp_path / "missing.json")

    def test_roundtrip_from_simulation(self, populated_simulator, tmp_path):
        """Twins filled by the simulator survive a save/load cycle."""
        manager = populated_simulator.twins
        path = save_manager(manager, tmp_path / "sim_twins.json")
        restored = load_manager(path)
        assert restored.user_ids() == manager.user_ids()
        uid = manager.user_ids()[0]
        assert len(restored.twin(uid).watch_records()) == len(
            manager.twin(uid).watch_records()
        )
