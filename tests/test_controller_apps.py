"""Tests for the controller-app framework (:mod:`repro.net.apps`).

Covers the app registry and stack construction, per-app behaviour (A3
param inheritance, mid-interval re-scoping, weak-member demotion, greedy
vs pro-rata rebalancing), the spec/config/CLI wiring of scenario-selected
stacks, the ``controller_events`` export — and the headline determinism
contract: the default app stack reproduces the pre-refactor monolithic
controller bit-for-bit (golden-pinned digests).
"""

from __future__ import annotations

import hashlib
import json

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.net.apps import (
    DEFAULT_APP_STACK,
    app_names,
    build_app_stack,
    create_app,
    normalize_app_entry,
)
from repro.net.basestation import BaseStation, BaseStationConfig
from repro.net.controller import ControllerConfig, HandoverEvent, RanController
from repro.scenario import ControllerAppSpec, ControllerSpec, ScenarioSpec, get_scenario, run_scenario
from repro.sim.config import SimulationConfig

ALL_APPS = [
    "a3_handover",
    "cell_scoping",
    "greedy_rebalance",
    "prorata_rebalance",
    "weak_member_demotion",
]


def _controller(num_cells=2, apps=None, **config_kwargs) -> RanController:
    stations = [
        BaseStation(
            bs_id=index,
            position=np.array([800.0 * index, 0.0]),
            config=BaseStationConfig(num_resource_blocks=100),
        )
        for index in range(num_cells)
    ]
    return RanController(stations, ControllerConfig(**config_kwargs), apps=apps)


# ---------------------------------------------------------------- registry
class TestAppRegistry:
    def test_registry_lists_all_builtins(self):
        assert app_names() == ALL_APPS

    def test_default_stack_builds_in_order(self):
        stack = build_app_stack(None)
        assert [app.name for app in stack] == list(DEFAULT_APP_STACK)

    def test_entry_forms_normalize(self):
        assert normalize_app_entry("a3_handover") == ("a3_handover", {})
        assert normalize_app_entry(("cell_scoping", {"rescope_on_handover": True})) == (
            "cell_scoping",
            {"rescope_on_handover": True},
        )
        assert normalize_app_entry(
            {"name": "weak_member_demotion", "params": {"rssi_threshold_db": 9.0}}
        ) == ("weak_member_demotion", {"rssi_threshold_db": 9.0})
        with pytest.raises(ValueError):
            normalize_app_entry({"params": {}})
        with pytest.raises(TypeError):
            normalize_app_entry(42)

    def test_unknown_app_name_raises_with_known_list(self):
        with pytest.raises(KeyError, match="a3_handover"):
            create_app("not_an_app")

    def test_unknown_params_rejected(self):
        with pytest.raises(ValueError, match="bogus"):
            create_app("cell_scoping", {"bogus": 1})

    def test_live_instances_pass_through_build(self):
        app = create_app("prorata_rebalance")
        stack = build_app_stack(["a3_handover", app])
        assert stack[1] is app


# ----------------------------------------------------------- golden parity
#: Keys added by later PRs on top of the pinned export shape; the digest
#: excludes them so the *pre-existing* payload stays byte-identical.
_ADDITIVE_INTERVAL_KEYS = {"controller_events"}
_ADDITIVE_SUMMARY_KEYS = {"edge", "placement", "reservation"}


def _run_digest(name: str, num_intervals: int) -> tuple:
    result = run_scenario(name, {"num_intervals": num_intervals})
    data = result.to_dict()
    payload = {
        "intervals": [
            {
                key: value
                for key, value in record.items()
                if key not in _ADDITIVE_INTERVAL_KEYS
            }
            for record in data["intervals"]
        ],
        "summary": {
            key: value
            for key, value in data["summary"].items()
            if key not in _ADDITIVE_SUMMARY_KEYS
        },
        "per_cell": data.get("per_cell"),
    }
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()
    return digest, data["summary"]


class TestGoldenParity:
    """The default stack reproduces the pre-refactor monolith bit-for-bit.

    The pinned digests were captured on the monolithic ``RanController``
    immediately before the app-framework split; everything the runner
    exports (except the new ``controller_events`` key) must hash
    identically.
    """

    def test_multicell_campus_matches_pre_refactor_golden(self):
        digest, summary = _run_digest("multicell_campus", num_intervals=3)
        assert digest == (
            "b03bc4b32c96079a19cafd5edbbefb20bac85206a47e602fb3c4f8e345a10e1c"
        )
        assert summary["total_handovers"] == 79
        assert summary["mean_actual_radio_blocks"] == pytest.approx(90.39752878154441)

    def test_cell_outage_storm_matches_pre_refactor_golden(self):
        digest, summary = _run_digest("cell_outage_storm", num_intervals=5)
        assert digest == (
            "f1c4c48d2a753c1e311be7d62022e4a910947eaf975174071945098005029067"
        )
        assert summary["total_handovers"] == 64
        assert summary["mean_actual_radio_blocks"] == pytest.approx(76.97058092226261)

    def test_explicit_default_stack_equals_implicit(self):
        implicit = run_scenario("cell_outage_storm", {"num_intervals": 2})
        explicit = run_scenario(
            "cell_outage_storm",
            {"num_intervals": 2, "controller.apps": ",".join(DEFAULT_APP_STACK)},
        )
        assert implicit.to_dict()["intervals"] == explicit.to_dict()["intervals"]


# ------------------------------------------------------------ a3_handover
class TestA3HandoverApp:
    def test_params_inherit_runtime_config_by_default(self):
        controller = _controller()
        assert controller.policy.config == controller.config.handover

    def test_param_overrides_replace_config_fields(self):
        controller = _controller(
            apps=[
                ("a3_handover", {"hysteresis_db": 7.0, "time_to_trigger_s": 0.0}),
                "cell_scoping",
                "prorata_rebalance",
            ]
        )
        assert controller.policy.config.hysteresis_db == 7.0
        assert controller.policy.config.time_to_trigger_s == 0.0
        # Unspecified knobs still inherit.
        assert (
            controller.policy.config.sample_period_s
            == controller.config.handover.sample_period_s
        )

    def test_stack_without_a3_has_no_measurements_or_policy(self):
        controller = _controller(apps=["cell_scoping", "prorata_rebalance"])
        assert controller.policy is None
        assert controller.measurement_times(0.0, 300.0).size == 0
        fired = controller.observe_interval(
            np.zeros(0), np.zeros((0, 0, 2)), [], end_s=300.0
        )
        assert fired == []


# ------------------------------------------------- mid-interval re-scoping
class TestMidIntervalRescope:
    def _prepared(self, rescope: bool) -> RanController:
        controller = _controller(
            apps=[
                "a3_handover",
                ("cell_scoping", {"rescope_on_handover": rescope}),
                "prorata_rebalance",
            ]
        )
        for uid in (0, 1):
            controller.attach_user(uid, 0)
        controller.scope_grouping({0: [0, 1]}, time_s=0.0)
        return controller

    def test_handover_rescopes_at_event_time(self):
        controller = self._prepared(rescope=True)
        controller.schedule_handover(
            HandoverEvent(
                time_s=100.0, user_id=1, source_cell=0, target_cell=1, margin_db=4.0
            )
        )
        controller.events.run_until(150.0)
        fired = controller.drain_scope_events()
        assert [event.kind for event in fired] == ["split"]
        assert fired[0].time_s == 100.0
        assert fired[0].cells == (0, 1) and fired[0].previous_cells == (0,)
        # The next interval-start scope sees the same footprint: the event
        # must not fire twice.
        _, _, events = controller.scope_grouping({0: [0, 1]}, time_s=300.0)
        assert events == []

    def test_rescope_disabled_keeps_boundary_only_behaviour(self):
        controller = self._prepared(rescope=False)
        controller.schedule_handover(
            HandoverEvent(
                time_s=100.0, user_id=1, source_cell=0, target_cell=1, margin_db=4.0
            )
        )
        controller.events.run_until(150.0)
        assert controller.drain_scope_events() == []
        # The footprint change surfaces only at the next interval start.
        _, _, events = controller.scope_grouping({0: [0, 1]}, time_s=300.0)
        assert [event.kind for event in events] == ["split"]
        assert events[0].time_s == 300.0


# ------------------------------------------------- weak-member demotion
def _demotion_controller(threshold=10.0, **params) -> RanController:
    return _controller(
        apps=[
            ("weak_member_demotion", {"rssi_threshold_db": threshold, **params}),
            "cell_scoping",
            "prorata_rebalance",
        ]
    )


class TestWeakMemberDemotion:
    def test_weak_members_become_singleton_groups(self):
        controller = _demotion_controller()
        for uid in range(4):
            controller.attach_user(uid, 0)
        snr = {0: 30.0, 1: 2.0, 2: 25.0, 3: 1.0}
        scoped, cell_of_group, _ = controller.scope_grouping(
            {0: [0, 1, 2, 3]}, time_s=0.0, mean_snr_db=lambda uids: snr
        )
        groups = sorted(scoped.values(), key=len, reverse=True)
        assert groups[0] == [0, 2]
        assert sorted(sum(groups[1:], [])) == [1, 3]
        assert all(len(group) == 1 for group in groups[1:])
        # Demoted singletons stay in the members' serving cell.
        assert set(cell_of_group.values()) == {0}
        events = controller.drain_app_events()
        assert [event.name for event in events] == ["demote", "demote"]
        assert {event.payload["user"] for event in events} == {1, 3}
        assert all(event.payload["mean_snr_db"] < 10.0 for event in events)

    def test_synthetic_ids_never_collide_with_real_groups(self):
        controller = _demotion_controller()
        for uid in range(4):
            controller.attach_user(uid, uid % 2)
        snr = {uid: (2.0 if uid == 0 else 30.0) for uid in range(4)}
        scoped, _, _ = controller.scope_grouping(
            {0: [0, 2], 1: [1, 3]}, time_s=0.0, mean_snr_db=lambda uids: snr
        )
        assert len(scoped) == len(set(scoped))
        assert sorted(uid for group in scoped.values() for uid in group) == [0, 1, 2, 3]

    def test_all_weak_group_keeps_its_strongest_member(self):
        controller = _demotion_controller(threshold=50.0)
        for uid in range(3):
            controller.attach_user(uid, 0)
        snr = {0: 5.0, 1: 9.0, 2: 7.0}
        scoped, _, _ = controller.scope_grouping(
            {0: [0, 1, 2]}, time_s=0.0, mean_snr_db=lambda uids: snr
        )
        assert scoped[0] == [1]  # strongest member keeps the multicast channel
        assert sum(len(group) for group in scoped.values()) == 3

    def test_min_group_size_protects_small_groups(self):
        controller = _demotion_controller(min_group_size=3)
        for uid in range(2):
            controller.attach_user(uid, 0)
        scoped, _, _ = controller.scope_grouping(
            {0: [0, 1]}, time_s=0.0, mean_snr_db=lambda uids: {0: 1.0, 1: 1.0}
        )
        assert scoped == {0: [0, 1]}
        assert controller.drain_app_events() == []

    def test_preview_matches_playback_and_stays_pure(self):
        snr = {0: 30.0, 1: 2.0, 2: 25.0}

        def build():
            controller = _demotion_controller()
            for uid in range(3):
                controller.attach_user(uid, 0)
            return controller

        preview_ctrl = build()
        previewed = preview_ctrl.preview_scope(
            {0: [0, 1, 2]}, time_s=0.0, mean_snr_db=lambda uids: snr
        )
        # Preview emits nothing and leaves no trace: running it twice gives
        # the same answer, and no app events ever fire.
        assert preview_ctrl.preview_scope(
            {0: [0, 1, 2]}, time_s=0.0, mean_snr_db=lambda uids: snr
        ) == previewed
        preview_ctrl.events.run_until(10.0)
        assert preview_ctrl.drain_app_events() == []
        assert preview_ctrl.app_event_log == []

        playback_ctrl = build()
        scoped, cell_of_group, _ = playback_ctrl.scope_grouping(
            {0: [0, 1, 2]}, time_s=0.0, mean_snr_db=lambda uids: snr
        )
        assert previewed == (scoped, cell_of_group)

    def test_no_measurement_callable_is_a_noop(self):
        controller = _demotion_controller()
        for uid in range(2):
            controller.attach_user(uid, 0)
        scoped, _, _ = controller.scope_grouping({0: [0, 1]}, time_s=0.0)
        assert scoped == {0: [0, 1]}


# ------------------------------------------------------- rebalance A/B
def _four_cell_load():
    # Cells 0 and 1 overloaded (deficits 100 and ~33.3), cells 2 and 3 each
    # donate 25 blocks: total surplus 50 < total deficit, so pro-rata and
    # greedy must allocate it differently.
    return {0: 180.0, 1: 120.0, 2: 10.0, 3: 10.0}


class TestRebalanceAB:
    def test_policies_diverge_with_competing_recipients(self):
        prorata = _controller(num_cells=4)
        prorata.finish_interval(_four_cell_load(), {}, time_s=300.0)
        greedy = _controller(
            num_cells=4, apps=["a3_handover", "cell_scoping", "greedy_rebalance"]
        )
        greedy.finish_interval(_four_cell_load(), {}, time_s=300.0)

        pro_budgets = prorata.rb_budget_by_cell()
        greedy_budgets = greedy.rb_budget_by_cell()
        # Pro-rata splits the 50 donated blocks 3:1 across the deficits;
        # greedy makes the worst cell whole first, starving the other.
        assert pro_budgets[0] == pytest.approx(137.5)
        assert pro_budgets[1] == pytest.approx(112.5)
        assert greedy_budgets[0] == pytest.approx(150.0)
        assert greedy_budgets[1] == pytest.approx(100.0)
        # Both conserve the total budget.
        assert sum(pro_budgets.values()) == pytest.approx(400.0)
        assert sum(greedy_budgets.values()) == pytest.approx(400.0)

    def test_greedy_emits_budget_transfer_events(self):
        greedy = _controller(
            num_cells=4, apps=["a3_handover", "cell_scoping", "greedy_rebalance"]
        )
        greedy.finish_interval(_four_cell_load(), {}, time_s=300.0)
        events = greedy.drain_app_events()
        assert [event.name for event in events] == ["budget_transfer"] * 2
        assert [(e.payload["from_cell"], e.payload["to_cell"]) for e in events] == [
            (2, 0),
            (3, 0),
        ]
        assert sum(event.payload["blocks"] for event in events) == pytest.approx(50.0)

    def test_single_pair_policies_coincide(self):
        load = {0: 95.0, 1: 10.0}
        prorata = _controller()
        prorata.finish_interval(load, {}, time_s=300.0)
        greedy = _controller(apps=["a3_handover", "cell_scoping", "greedy_rebalance"])
        greedy.finish_interval(load, {}, time_s=300.0)
        assert prorata.rb_budget_by_cell() == pytest.approx(greedy.rb_budget_by_cell())


# ------------------------------------------------------ spec/config wiring
class TestSpecAndConfigWiring:
    def test_controller_spec_coerces_entry_forms(self):
        spec = ControllerSpec(
            mode="handover",
            apps=(
                "a3_handover",
                {"name": "cell_scoping", "params": {"rescope_on_handover": True}},
                ControllerAppSpec(name="prorata_rebalance"),
            ),
        )
        assert all(isinstance(app, ControllerAppSpec) for app in spec.apps)
        assert [app.name for app in spec.apps] == [
            "a3_handover",
            "cell_scoping",
            "prorata_rebalance",
        ]
        assert spec.apps[1].params == {"rescope_on_handover": True}

    def test_apps_require_handover_mode(self):
        with pytest.raises(ValueError, match="handover"):
            ScenarioSpec(
                name="x", controller=ControllerSpec(mode="boundary", apps=("a3_handover",))
            )
        with pytest.raises(ValueError, match="handover"):
            SimulationConfig(controller_mode="boundary", controller_apps=("a3_handover",))

    def test_unknown_app_and_params_rejected_at_spec_time(self):
        with pytest.raises(ValueError, match="unknown controller app"):
            ScenarioSpec(
                name="x", controller=ControllerSpec(mode="handover", apps=("nope",))
            )
        with pytest.raises(ValueError, match="unknown params"):
            ScenarioSpec(
                name="x",
                controller=ControllerSpec(
                    mode="handover",
                    apps=({"name": "cell_scoping", "params": {"bogus": 1}},),
                ),
            )
        with pytest.raises(ValueError, match="unknown controller app"):
            SimulationConfig(controller_mode="handover", controller_apps=("nope",))

    def test_override_accepts_comma_separated_names(self):
        spec = get_scenario(
            "cell_outage_storm",
            {"controller.apps": "a3_handover,cell_scoping,greedy_rebalance"},
        )
        assert [app.name for app in spec.controller.apps] == [
            "a3_handover",
            "cell_scoping",
            "greedy_rebalance",
        ]

    def test_override_accepts_json_list_with_params(self):
        spec = get_scenario(
            "multicell_campus",
            {
                "controller.apps": [
                    "a3_handover",
                    {"name": "weak_member_demotion", "params": {"rssi_threshold_db": 9.0}},
                ]
            },
        )
        assert spec.controller.apps[1].params == {"rssi_threshold_db": 9.0}

    def test_scalar_tuple_overrides_coerce_element_type(self):
        spec = get_scenario("campus_fig3", {"catalog.categories": "News,Sports"})
        assert spec.catalog.categories == ("News", "Sports")

    def test_structured_tuples_stay_replace_only(self):
        spec = get_scenario("multicell_campus")
        with pytest.raises(KeyError, match="structured"):
            spec.with_overrides({"timeline": "x"})
        with pytest.raises(KeyError, match="structured"):
            spec.with_overrides({"population.churn_phases": "x"})

    def test_compile_lowers_apps_to_config(self):
        from repro.scenario import compile_spec

        spec = get_scenario(
            "cell_outage_storm", {"controller.apps": "a3_handover,cell_scoping"}
        )
        compiled = compile_spec(spec)
        assert compiled.sim_config.controller_apps == (
            ("a3_handover", {}),
            ("cell_scoping", {}),
        )
        # No apps -> None (the bit-identical default stack).
        default = compile_spec(get_scenario("cell_outage_storm"))
        assert default.sim_config.controller_apps is None

    def test_spec_to_dict_is_json_canonical(self):
        spec = get_scenario("weak_signal_demotion")
        data = spec.to_dict()
        assert data["controller"]["apps"][1] == {
            "name": "weak_member_demotion",
            "params": {"rssi_threshold_db": 30.0},
        }
        assert json.loads(json.dumps(data)) == data


# -------------------------------------------------------- runner export
class TestControllerEventExport:
    def test_records_are_json_canonical_and_time_sorted(self):
        result = run_scenario("cell_outage_storm", {"num_intervals": 2})
        for record in result.to_dict()["intervals"]:
            events = record["controller_events"]
            assert events, "handover-mode intervals must export controller events"
            times = [event["time_s"] for event in events]
            assert times == sorted(times)
            assert {event["type"] for event in events} <= {
                "handover",
                "group_scope",
                "cell_load",
                "app",
            }
            assert json.loads(json.dumps(record)) == record
            # Counts agree with the aggregate fields exported alongside.
            assert (
                sum(1 for event in events if event["type"] == "handover")
                == record["num_handovers"]
            )

    def test_demotion_scenario_exports_app_events(self):
        result = run_scenario("weak_signal_demotion", {"num_intervals": 2})
        data = result.to_dict()
        demotes = [
            event
            for record in data["intervals"]
            for event in record["controller_events"]
            if event["type"] == "app" and event["name"] == "demote"
        ]
        assert demotes, "the calibrated threshold must actually demote members"
        for event in demotes:
            assert event["app"] == "weak_member_demotion"
            assert event["payload"]["mean_snr_db"] < event["payload"]["threshold_db"]

    def test_boundary_mode_has_no_controller_events_key(self):
        result = run_scenario("campus_fig3", {"num_intervals": 1})
        for record in result.to_dict()["intervals"]:
            assert "controller_events" not in record


# ------------------------------------------------------------------- CLI
class TestCli:
    def test_apps_json_lists_all_registered_apps(self, capsys):
        assert cli_main(["apps", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [entry["name"] for entry in payload["apps"]] == ALL_APPS
        assert payload["default_stack"] == list(DEFAULT_APP_STACK)

    def test_apps_table_mentions_default_stack(self, capsys):
        assert cli_main(["apps"]) == 0
        out = capsys.readouterr().out
        assert "default stack: a3_handover, cell_scoping, prorata_rebalance" in out
        for name in ALL_APPS:
            assert name in out

    def test_run_rejects_unknown_app_gracefully(self, capsys):
        code = cli_main(
            ["run", "cell_outage_storm", "--override", "controller.apps=nope"]
        )
        assert code == 2
        assert "unknown controller app" in capsys.readouterr().err
