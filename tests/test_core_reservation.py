"""Unit and integration tests for reservation planning (the paper's future work)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    AdmissionController,
    DTResourcePredictionScheme,
    ReservationPlanner,
    ReservationPolicy,
    SchemeConfig,
)
from repro.core.demand import GroupDemandPrediction
from repro.sim import SimulationConfig, StreamingSimulator


def make_prediction(blocks: float, cycles: float = 1e9) -> GroupDemandPrediction:
    return GroupDemandPrediction(
        group_id=0,
        member_ids=[0, 1],
        expected_traffic_bits=1e8,
        expected_engagement_s=100.0,
        expected_videos=10.0,
        radio_resource_blocks=blocks,
        computing_cycles=cycles,
        efficiency_bps_hz=2.0,
        representation_name="480p",
    )


class TestReservationPolicy:
    def test_margin_and_quantisation(self):
        policy = ReservationPolicy(margin=1.2, quantise=True)
        assert policy.radio_request(make_prediction(10.0)) == pytest.approx(12.0)
        assert policy.radio_request(make_prediction(10.1)) == pytest.approx(13.0)

    def test_floor_applies_to_tiny_predictions(self):
        policy = ReservationPolicy(margin=1.0, floor_blocks=2.0, quantise=False)
        assert policy.radio_request(make_prediction(0.1)) == pytest.approx(2.0)

    def test_outage_prediction_gets_floor(self):
        policy = ReservationPolicy(margin=1.5, floor_blocks=3.0, quantise=False)
        assert policy.radio_request(make_prediction(float("inf"))) == pytest.approx(4.5)

    def test_compute_request_scales_by_margin(self):
        policy = ReservationPolicy(margin=1.25)
        assert policy.compute_request(make_prediction(5.0, cycles=8e9)) == pytest.approx(1e10)

    def test_requests_for_all_groups(self):
        policy = ReservationPolicy(margin=1.0, quantise=False)
        predictions = {0: make_prediction(4.0), 1: make_prediction(6.0)}
        requests = policy.radio_requests(predictions)
        assert requests == {0: pytest.approx(4.0), 1: pytest.approx(6.0)}

    def test_invalid_margin(self):
        with pytest.raises(ValueError):
            ReservationPolicy(margin=0.9)

    def test_radio_request_delegates_to_blocks_request(self):
        policy = ReservationPolicy(margin=1.3, floor_blocks=2.0, quantise=True)
        for blocks in (0.1, 7.0, 49.5, float("inf")):
            assert policy.radio_request(make_prediction(blocks)) == (
                policy.blocks_request(blocks)
            )

    def test_blocks_request_on_raw_demand(self):
        policy = ReservationPolicy(margin=1.1, floor_blocks=1.0, quantise=True)
        assert policy.blocks_request(10.0) == pytest.approx(11.0)
        assert policy.blocks_request(0.0) == pytest.approx(1.0)
        assert policy.blocks_request(float("nan")) == pytest.approx(2.0)


class TestAdmissionController:
    def test_requests_within_budget_granted(self):
        controller = AdmissionController(100.0)
        result = controller.admit({0: 40.0, 1: 50.0})
        assert not result.scaled_down
        assert result.total_granted == pytest.approx(90.0)

    def test_oversubscription_scales_proportionally(self):
        controller = AdmissionController(100.0)
        result = controller.admit({0: 150.0, 1: 50.0})
        assert result.scaled_down
        assert result.total_granted == pytest.approx(100.0)
        assert result.granted[0] == pytest.approx(75.0)
        assert result.granted[1] == pytest.approx(25.0)

    def test_zero_requests(self):
        controller = AdmissionController(10.0)
        result = controller.admit({0: 0.0})
        assert result.total_granted == 0.0
        assert not result.scaled_down

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            AdmissionController(0.0)

    def test_conservation_over_random_request_sets(self):
        """Admission never grants more than requested, nor above the budget,
        and proportional scale-down keeps every group's share ratio equal."""
        rng = np.random.default_rng(99)
        for _ in range(50):
            budget = float(rng.uniform(10.0, 200.0))
            controller = AdmissionController(budget)
            requests = {
                gid: float(rng.uniform(0.0, 80.0)) for gid in range(rng.integers(1, 8))
            }
            result = controller.admit(requests)
            assert result.total_granted <= budget + 1e-9
            for gid, granted in result.granted.items():
                assert 0.0 <= granted <= requests[gid] + 1e-9
            if result.scaled_down:
                assert result.total_granted == pytest.approx(budget)
                ratios = {
                    granted / requests[gid]
                    for gid, granted in result.granted.items()
                    if requests[gid] > 1e-9
                }
                assert max(ratios) - min(ratios) < 1e-9
            else:
                assert result.granted == pytest.approx(requests)

    def test_negative_requests_clamped_to_zero(self):
        controller = AdmissionController(10.0)
        result = controller.admit({0: -5.0, 1: 4.0})
        assert result.granted[0] == 0.0
        assert result.granted[1] == pytest.approx(4.0)


class TestReservationPlanner:
    def make_scheme(self):
        sim_config = SimulationConfig(
            num_users=10,
            num_videos=30,
            num_intervals=6,
            interval_s=90.0,
            seed=13,
        )
        scheme_config = SchemeConfig(
            warmup_intervals=1,
            cnn_epochs=3,
            ddqn_episodes=3,
            mc_rollouts=6,
            max_groups=4,
            seed=0,
        )
        return DTResourcePredictionScheme(StreamingSimulator(sim_config), scheme_config)

    def test_planner_produces_per_interval_audit(self):
        planner = ReservationPlanner(self.make_scheme(), ReservationPolicy(margin=1.15))
        report = planner.run(num_intervals=3)
        assert report.num_intervals == 3
        assert report.mean_over_provisioning() >= 0.0
        assert report.mean_under_provisioning() >= 0.0
        assert 0.0 <= report.under_provisioned_fraction() <= 1.0

    def test_accurate_predictions_keep_overprovisioning_small(self):
        planner = ReservationPlanner(self.make_scheme(), ReservationPolicy(margin=1.15))
        report = planner.run(num_intervals=3)
        actual_mean = np.mean(
            [sum(usage.used.values()) for usage in report.intervals]
        )
        # The wasted head-room should be a modest fraction of the actual usage.
        assert report.mean_over_provisioning() < 0.6 * actual_mean

    def test_larger_margin_reduces_underprovisioning(self):
        tight = ReservationPlanner(self.make_scheme(), ReservationPolicy(margin=1.0, quantise=False))
        generous = ReservationPlanner(self.make_scheme(), ReservationPolicy(margin=1.5, quantise=False))
        tight_report = tight.run(num_intervals=3)
        generous_report = generous.run(num_intervals=3)
        assert (
            generous_report.mean_under_provisioning()
            <= tight_report.mean_under_provisioning() + 1e-9
        )

    def test_invalid_interval_count(self):
        planner = ReservationPlanner(self.make_scheme())
        with pytest.raises(ValueError):
            planner.run(num_intervals=0)
