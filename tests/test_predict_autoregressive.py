"""Unit tests for the autoregressive and seasonal baseline predictors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.predict import ARPredictor, SeasonalNaivePredictor


class TestARPredictor:
    def test_learns_linear_trend(self):
        series = np.arange(1.0, 20.0)
        prediction = ARPredictor(order=2).predict_next(series)
        assert prediction == pytest.approx(20.0, rel=0.05)

    def test_learns_alternating_series(self):
        series = np.array([1.0, 3.0] * 10)
        prediction = ARPredictor(order=2).predict_next(series)
        assert prediction == pytest.approx(1.0, abs=0.3)

    def test_constant_series(self):
        prediction = ARPredictor(order=3).predict_next([5.0] * 12)
        assert prediction == pytest.approx(5.0, rel=1e-3)

    def test_short_history_falls_back_to_last_value(self):
        assert ARPredictor(order=4).predict_next([2.0, 3.0]) == 3.0

    def test_never_negative(self):
        series = [10.0, 6.0, 2.0, 0.5]
        assert ARPredictor(order=2).predict_next(series) >= 0.0

    def test_outperforms_last_value_on_trended_series(self):
        rng = np.random.default_rng(0)
        series = np.arange(30, dtype=float) * 2.0 + rng.normal(0, 0.5, size=30)
        ar = ARPredictor(order=2).predict_series(series, warmup=6)
        last = np.asarray(series[5:-1])
        ar_error = np.abs(ar - series[6:]).mean()
        last_error = np.abs(last - series[6:]).mean()
        assert ar_error < last_error

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ARPredictor(order=0)
        with pytest.raises(ValueError):
            ARPredictor(order=2, ridge=-1.0)

    def test_empty_history_rejected(self):
        with pytest.raises(ValueError):
            ARPredictor().predict_next([])


class TestSeasonalNaive:
    def test_repeats_one_period_ago(self):
        predictor = SeasonalNaivePredictor(period=3)
        assert predictor.predict_next([1.0, 2.0, 3.0, 4.0, 5.0]) == 3.0

    def test_short_history_falls_back_to_last(self):
        predictor = SeasonalNaivePredictor(period=5)
        assert predictor.predict_next([7.0, 8.0]) == 8.0

    def test_perfect_on_periodic_series(self):
        series = [1.0, 2.0, 3.0] * 5
        predictor = SeasonalNaivePredictor(period=3)
        predictions = predictor.predict_series(series, warmup=3)
        np.testing.assert_allclose(predictions, series[3:])

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            SeasonalNaivePredictor(period=0)
