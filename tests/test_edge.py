"""Unit tests for the edge-server substrate."""

from __future__ import annotations

import pytest

from repro.edge import (
    EdgeServer,
    EdgeServerConfig,
    TranscodingCostModel,
    TranscodingJob,
    VideoCache,
)
from repro.edge.cache import video_size_bytes
from repro.video import DEFAULT_LADDER


class TestVideoCache:
    def test_insert_and_hit(self, small_catalog):
        cache = VideoCache(capacity_bytes=1e12)
        video = next(iter(small_catalog))
        assert not cache.access(video.video_id)
        assert cache.insert(video)
        assert cache.access(video.video_id)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_capacity_evicts_lru(self, small_catalog):
        videos = list(small_catalog)[:3]
        sizes = [video_size_bytes(v) for v in videos]
        capacity = sizes[0] + sizes[1] + 1.0
        cache = VideoCache(capacity_bytes=capacity)
        cache.insert(videos[0], time_s=0.0)
        cache.insert(videos[1], time_s=1.0)
        cache.access(videos[0].video_id, time_s=2.0)  # make video[1] the LRU entry
        cache.insert(videos[2], time_s=3.0)
        assert videos[0].video_id in cache or videos[2].video_id in cache
        assert cache.stats.evictions >= 1
        assert cache.used_bytes <= capacity

    def test_video_larger_than_cache_rejected(self, small_catalog):
        video = next(iter(small_catalog))
        cache = VideoCache(capacity_bytes=10.0)
        assert not cache.insert(video)

    def test_warm_with_popular(self, small_catalog):
        cache = VideoCache(capacity_bytes=1e12)
        cached = cache.warm_with_popular(small_catalog.most_popular(10))
        assert cached == 10
        assert len(cache) == 10

    def test_hit_ratio(self, small_catalog):
        cache = VideoCache(capacity_bytes=1e12)
        video = next(iter(small_catalog))
        cache.insert(video)
        cache.access(video.video_id)
        cache.access(12345)
        assert cache.stats.hit_ratio == pytest.approx(0.5)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            VideoCache(capacity_bytes=0.0)

    def test_eviction_follows_strict_lru_order(self, small_catalog):
        # Two large videos fill the cache; the small third one displaces
        # exactly the least-recently-used of the two.
        videos = sorted(small_catalog, key=video_size_bytes, reverse=True)
        big_a, big_b, small = videos[0], videos[1], videos[-1]
        capacity = video_size_bytes(big_a) + video_size_bytes(big_b) + 1.0
        cache = VideoCache(capacity_bytes=capacity)
        cache.insert(big_a, time_s=0.0)
        cache.insert(big_b, time_s=1.0)
        cache.access(big_a.video_id, time_s=2.0)  # big_b is now the LRU entry
        cache.insert(small, time_s=3.0)
        assert big_a.video_id in cache
        assert big_b.video_id not in cache
        assert small.video_id in cache
        assert cache.stats.evictions == 1

    def test_reinsert_refreshes_recency(self, small_catalog):
        videos = sorted(small_catalog, key=video_size_bytes, reverse=True)
        big_a, big_b, small = videos[0], videos[1], videos[-1]
        capacity = video_size_bytes(big_a) + video_size_bytes(big_b) + 1.0
        cache = VideoCache(capacity_bytes=capacity)
        cache.insert(big_a, time_s=0.0)
        cache.insert(big_b, time_s=1.0)
        cache.insert(big_a, time_s=2.0)  # reinsert must refresh, not duplicate
        assert len(cache) == 2
        cache.insert(small, time_s=3.0)
        assert big_a.video_id in cache, "reinserted entry must be most recent"
        assert big_b.video_id not in cache

    def test_warm_skips_videos_larger_than_free_space(self, small_catalog):
        videos = sorted(small_catalog, key=video_size_bytes, reverse=True)
        # Room for the smallest video only: warming the popularity list must
        # skip the over-sized ones without evicting what is already cached.
        cache = VideoCache(capacity_bytes=video_size_bytes(videos[-1]) + 1.0)
        cached = cache.warm_with_popular(videos)
        assert cached == 1
        assert videos[-1].video_id in cache
        assert cache.stats.evictions == 0


class TestTranscoding:
    def test_job_cycles_scale_with_duration(self, small_catalog):
        model = TranscodingCostModel()
        video = next(iter(small_catalog))
        target = DEFAULT_LADDER.by_name("480p")
        short = model.video_cycles(video, target, watched_duration_s=2.0)
        long = model.video_cycles(video, target, watched_duration_s=video.duration_s)
        assert long > short > 0

    def test_higher_target_costs_more(self, small_catalog):
        model = TranscodingCostModel()
        video = next(iter(small_catalog))
        low = model.video_cycles(video, DEFAULT_LADDER.by_name("240p"))
        high = model.video_cycles(video, DEFAULT_LADDER.by_name("720p"))
        assert high > low

    def test_pass_through_costs_only_overhead(self, small_catalog):
        model = TranscodingCostModel(per_job_overhead_cycles=123.0)
        video = next(iter(small_catalog))
        cycles = model.video_cycles(video, DEFAULT_LADDER.highest)
        assert cycles == pytest.approx(123.0)

    def test_upscaling_rejected(self):
        low = DEFAULT_LADDER.by_name("240p")
        high = DEFAULT_LADDER.by_name("1080p")
        with pytest.raises(ValueError):
            TranscodingJob(video_id=0, source=low, target=high, duration_s=5.0)

    def test_zero_duration_costs_nothing(self):
        model = TranscodingCostModel()
        job = TranscodingJob(
            video_id=0,
            source=DEFAULT_LADDER.highest,
            target=DEFAULT_LADDER.lowest,
            duration_s=0.0,
        )
        assert model.job_cycles(job) == 0.0

    def test_total_cycles_sums_jobs(self):
        model = TranscodingCostModel()
        jobs = [
            TranscodingJob(0, DEFAULT_LADDER.highest, DEFAULT_LADDER.lowest, 5.0),
            TranscodingJob(1, DEFAULT_LADDER.highest, DEFAULT_LADDER.lowest, 5.0),
        ]
        assert model.total_cycles(jobs) == pytest.approx(2 * model.job_cycles(jobs[0]))

    def test_invalid_cost_model(self):
        with pytest.raises(ValueError):
            TranscodingCostModel(cycles_per_pixel=0.0)


class TestEdgeServer:
    def test_warm_cache_inserts_videos(self, small_catalog):
        server = EdgeServer(small_catalog, EdgeServerConfig(cache_capacity_gbytes=50.0))
        cached = server.warm_cache(top_videos=10)
        assert cached == 10

    def test_process_interval_accounts_cycles_per_group(self, small_catalog):
        server = EdgeServer(small_catalog)
        server.warm_cache()
        videos = list(small_catalog)[:4]
        target = DEFAULT_LADDER.by_name("360p")
        usage = server.process_interval(
            0,
            {
                0: [(videos[0], target, 5.0), (videos[1], target, 10.0)],
                1: [(videos[2], target, 5.0)],
            },
        )
        assert usage.cycles_by_group[0] > usage.cycles_by_group[1] > 0.0
        assert usage.total_cycles == pytest.approx(sum(usage.cycles_by_group.values()))
        assert server.total_cycles_history().shape == (1,)

    def test_cache_miss_counted_and_filled(self, small_catalog):
        config = EdgeServerConfig(cache_capacity_gbytes=50.0)
        server = EdgeServer(small_catalog, config)
        video = next(iter(small_catalog))
        target = DEFAULT_LADDER.by_name("360p")
        usage = server.process_interval(0, {0: [(video, target, 5.0)]})
        assert usage.cache_misses == 1
        usage_second = server.process_interval(1, {0: [(video, target, 5.0)]})
        assert usage_second.cache_misses == 0

    def test_utilization_fraction(self, small_catalog):
        server = EdgeServer(small_catalog)
        video = next(iter(small_catalog))
        target = DEFAULT_LADDER.by_name("480p")
        usage = server.process_interval(0, {0: [(video, target, video.duration_s)]})
        fraction = usage.utilization(server.config.cpu_capacity_cycles_per_s, 300.0)
        assert 0.0 < fraction < 1.0
        assert server.mean_utilization(300.0) == pytest.approx(fraction)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            EdgeServerConfig(cache_capacity_gbytes=0.0)
        with pytest.raises(ValueError):
            EdgeServerConfig(cpu_capacity_cycles_per_s=-1.0)
