"""Unit tests for the simulation substrate (clock, events, metrics, simulator)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim import (
    EventQueue,
    MetricRecorder,
    SimulationClock,
    SimulationConfig,
    StreamingSimulator,
    singleton_grouping,
)
from repro.twin.attributes import CHANNEL_CONDITION


class TestClock:
    def test_interval_bounds(self):
        clock = SimulationClock(interval_s=300.0)
        assert clock.interval_bounds(2) == (600.0, 900.0)

    def test_advance_and_current_interval(self):
        clock = SimulationClock(interval_s=100.0)
        clock.advance(250.0)
        assert clock.current_interval == 2
        clock.advance_interval()
        assert clock.now_s == pytest.approx(300.0)

    def test_cannot_move_backwards(self):
        clock = SimulationClock()
        clock.advance(10.0)
        with pytest.raises(ValueError):
            clock.advance_to(5.0)
        with pytest.raises(ValueError):
            clock.advance(-1.0)

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            SimulationClock(interval_s=0.0)


class TestEventQueue:
    def test_events_fire_in_time_order(self):
        queue = EventQueue()
        fired = []
        queue.schedule(5.0, name="b", callback=lambda: fired.append("b"))
        queue.schedule(1.0, name="a", callback=lambda: fired.append("a"))
        queue.schedule(9.0, name="c", callback=lambda: fired.append("c"))
        queue.run_until(6.0)
        assert fired == ["a", "b"]
        assert queue.now_s == pytest.approx(6.0)
        assert len(queue) == 1

    def test_ties_fire_in_insertion_order(self):
        queue = EventQueue()
        fired = []
        queue.schedule(1.0, callback=lambda: fired.append("first"))
        queue.schedule(1.0, callback=lambda: fired.append("second"))
        queue.run_until(1.0)
        assert fired == ["first", "second"]

    def test_cancelled_events_do_not_fire(self):
        queue = EventQueue()
        fired = []
        event = queue.schedule(1.0, callback=lambda: fired.append("x"))
        queue.cancel(event)
        queue.run_until(2.0)
        assert fired == []
        assert queue.is_empty

    def test_cannot_schedule_in_the_past(self):
        queue = EventQueue()
        queue.run_until(10.0)
        with pytest.raises(ValueError):
            queue.schedule(5.0)

    def test_schedule_in_relative(self):
        queue = EventQueue()
        queue.run_until(10.0)
        event = queue.schedule_in(5.0, name="later")
        assert event.time_s == pytest.approx(15.0)

    def test_pop_advances_clock(self):
        queue = EventQueue()
        queue.schedule(3.0, name="x")
        event = queue.pop()
        assert event is not None and event.time_s == 3.0
        assert queue.now_s == pytest.approx(3.0)
        assert queue.pop() is None


class TestMetricRecorder:
    def test_record_and_summary(self):
        recorder = MetricRecorder()
        for value in (1.0, 2.0, 3.0):
            recorder.record("demand", value)
        summary = recorder.summary("demand")
        assert summary.count == 3
        assert summary.mean == pytest.approx(2.0)
        assert summary.total == pytest.approx(6.0)
        assert "demand" in recorder.as_table()

    def test_unknown_metric_raises(self):
        with pytest.raises(KeyError):
            MetricRecorder().series("nope")

    def test_non_finite_rejected(self):
        recorder = MetricRecorder()
        with pytest.raises(ValueError):
            recorder.record("x", float("inf"))

    def test_record_many_and_last(self):
        recorder = MetricRecorder()
        recorder.record_many({"a": 1.0, "b": 2.0})
        recorder.record("a", 5.0)
        assert recorder.last("a") == 5.0
        assert recorder.names() == ["a", "b"]


class TestSingletonGrouping:
    def test_one_group_per_user(self):
        grouping = singleton_grouping([4, 7, 9])
        assert len(grouping) == 3
        assert sorted(uid for members in grouping.values() for uid in members) == [4, 7, 9]
        assert all(len(members) == 1 for members in grouping.values())


class TestStreamingSimulator:
    def test_construction_builds_population(self, tiny_simulator, tiny_sim_config):
        assert len(tiny_simulator.user_ids()) == tiny_sim_config.num_users
        assert len(tiny_simulator.catalog) == tiny_sim_config.num_videos
        assert len(tiny_simulator.twins) == tiny_sim_config.num_users

    def test_run_interval_records_usage(self, tiny_simulator):
        user_ids = tiny_simulator.user_ids()
        grouping = {0: user_ids[:4], 1: user_ids[4:]}
        result = tiny_simulator.run_interval(grouping)
        assert set(result.usage_by_group) == {0, 1}
        for usage in result.usage_by_group.values():
            assert usage.traffic_bits > 0.0
            assert usage.videos_played > 0
            assert usage.computing_cycles >= 0.0
            assert np.isfinite(usage.resource_blocks)
        assert result.total_resource_blocks > 0.0
        assert result.total_computing_cycles > 0.0

    def test_run_interval_advances_clock(self, tiny_simulator, tiny_sim_config):
        grouping = singleton_grouping(tiny_simulator.user_ids())
        before = tiny_simulator.clock.current_interval
        tiny_simulator.run_interval(grouping)
        assert tiny_simulator.clock.current_interval == before + 1

    def test_twins_populated_after_interval(self, populated_simulator, tiny_sim_config):
        for uid in populated_simulator.user_ids():
            twin = populated_simulator.twins.twin(uid)
            assert len(twin.store(CHANNEL_CONDITION)) > 0
            assert twin.watch_records(), "every user should have watch records"

    def test_grouping_must_cover_all_users(self, tiny_simulator):
        user_ids = tiny_simulator.user_ids()
        with pytest.raises(ValueError):
            tiny_simulator.run_interval({0: user_ids[:3]})

    def test_grouping_must_not_duplicate_users(self, tiny_simulator):
        user_ids = tiny_simulator.user_ids()
        grouping = {0: user_ids, 1: [user_ids[0]]}
        with pytest.raises(ValueError):
            tiny_simulator.run_interval(grouping)

    def test_grouping_unknown_user_rejected(self, tiny_simulator):
        grouping = {0: tiny_simulator.user_ids() + [999]}
        with pytest.raises(ValueError):
            tiny_simulator.run_interval(grouping)

    def test_empty_group_rejected(self, tiny_simulator):
        grouping = {0: tiny_simulator.user_ids(), 1: []}
        with pytest.raises(ValueError):
            tiny_simulator.run_interval(grouping)

    def test_watch_records_respect_video_durations(self, populated_simulator):
        for events in populated_simulator.history[0].events_by_user.values():
            for event in events:
                assert event.record.watch_duration_s <= event.record.video_duration_s + 1e-9

    def test_fewer_groups_use_fewer_or_equal_radio_blocks_than_unicast(self, tiny_sim_config):
        """Multicast sharing should not need more resource blocks than unicast."""
        multicast_sim = StreamingSimulator(tiny_sim_config)
        unicast_sim = StreamingSimulator(tiny_sim_config)
        user_ids = multicast_sim.user_ids()
        multicast = multicast_sim.run_interval({0: user_ids[:4], 1: user_ids[4:]})
        unicast = unicast_sim.run_interval(singleton_grouping(user_ids))
        assert multicast.total_traffic_bits <= unicast.total_traffic_bits * 1.2

    def test_run_with_grouping_function(self, tiny_sim_config):
        simulator = StreamingSimulator(tiny_sim_config)
        results = simulator.run(
            lambda interval, sim: singleton_grouping(sim.user_ids()), num_intervals=2
        )
        assert len(results) == 2
        assert simulator.metrics.series("radio.total_resource_blocks").shape == (2,)

    def test_group_link_state_worst_member_rule(self, tiny_simulator):
        user_ids = tiny_simulator.user_ids()
        efficiency, representation, snrs = tiny_simulator.group_link_state(user_ids, 0.0, 30.0)
        assert efficiency >= 0.0
        assert representation.name in {"240p", "360p", "480p", "720p", "1080p"}
        assert set(snrs) == set(user_ids)

    def test_invalid_simulation_config(self):
        with pytest.raises(ValueError):
            SimulationConfig(num_users=0)
        with pytest.raises(ValueError):
            SimulationConfig(favourite_category="Opera")
        with pytest.raises(ValueError):
            SimulationConfig(favourite_user_fraction=1.5)
